"""Exception hierarchy for the GemStone reproduction.

Every error raised by the library derives from :class:`GemStoneError`, so
applications can catch one type at the session boundary.  Subsystems raise
the most specific subclass that applies; the Executor maps these onto error
frames returned to the host (see :mod:`repro.executor.protocol`).
"""

from __future__ import annotations


class GemStoneError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# Retryability taxonomy
# --------------------------------------------------------------------------
#
# Robustness errors carry one of two operational verdicts, so callers can
# write one policy instead of enumerating failure modes:
#
# * :class:`RetryableError` — transient.  The same request may succeed if
#   simply retried, possibly after backing off (``retry_after`` simulated
#   units, when the raiser knows a good delay).
# * :class:`FatalError` — non-transient.  Retrying the identical request
#   cannot succeed without some intervention first: an operator repairing
#   a volume, a session aborting its transaction, a query being rewritten.
#
# The two are disjoint by construction; tests assert no error class ever
# inherits both.


class RetryableError(GemStoneError):
    """Transient: the same request may succeed on retry (after backoff)."""

    #: suggested wait before retrying, in simulated time units (None when
    #: the raiser has no estimate)
    retry_after: float | None = None


class FatalError(GemStoneError):
    """Non-transient: retrying cannot succeed without intervention."""


# --------------------------------------------------------------------------
# Object model (repro.core)
# --------------------------------------------------------------------------

class ObjectModelError(GemStoneError):
    """Base class for errors in the GSDM object layer."""


class NoSuchObject(ObjectModelError):
    """An oid does not name any object in the store."""

    def __init__(self, oid: int) -> None:
        super().__init__(f"no object with oid {oid}")
        self.oid = oid


class ElementNotFound(ObjectModelError):
    """An object has no binding for an element name at the requested time."""

    def __init__(self, name: object, time: object = None) -> None:
        at = "" if time is None else f" at time {time}"
        super().__init__(f"no element {name!r}{at}")
        self.name = name
        self.time = time


class TimeTravelError(ObjectModelError):
    """A write was attempted at, or before, an already-recorded time."""


class PathError(ObjectModelError):
    """A path expression is syntactically invalid or cannot be resolved."""


class ClassProtocolError(ObjectModelError):
    """A message was sent that the receiver's class does not implement."""


class DoesNotUnderstand(ClassProtocolError):
    """Smalltalk's doesNotUnderstand: no method found for a selector."""

    def __init__(self, class_name: str, selector: str) -> None:
        super().__init__(f"{class_name} does not understand #{selector}")
        self.class_name = class_name
        self.selector = selector


class ViewError(ObjectModelError):
    """A view definition is invalid or an unsupported view update was made."""


# --------------------------------------------------------------------------
# STDM calculus / algebra (repro.stdm)
# --------------------------------------------------------------------------

class QueryError(GemStoneError):
    """Base class for set-calculus and set-algebra errors."""


class CalculusError(QueryError):
    """A set-calculus expression is malformed or cannot be evaluated."""


class AlgebraError(QueryError):
    """A set-algebra plan is malformed or cannot be executed."""


class TranslationError(QueryError):
    """A calculus expression cannot be translated to algebra."""


# --------------------------------------------------------------------------
# OPAL language (repro.opal)
# --------------------------------------------------------------------------

class OpalError(GemStoneError):
    """Base class for OPAL language errors."""


class LexError(OpalError):
    """A character sequence cannot be tokenized."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(OpalError):
    """A token sequence is not a valid OPAL program."""


class CompileError(OpalError):
    """A parsed OPAL program cannot be compiled to bytecodes."""


class OpalRuntimeError(OpalError):
    """An error raised while the Interpreter executes bytecodes."""


# --------------------------------------------------------------------------
# Storage (repro.storage)
# --------------------------------------------------------------------------

class StorageError(GemStoneError):
    """Base class for secondary-storage errors."""


class DiskError(StorageError):
    """A simulated disk rejected an operation."""


class DiskCrashed(DiskError):
    """The simulated disk hit its injected crash point; writes are lost."""


class TransientDiskError(DiskError, RetryableError):
    """A retryable I/O failure (injected by a fault plan); retry may succeed."""


class DegradedError(StorageError, FatalError):
    """A resilient volume exhausted its retry budget and went read-only."""


class StaleReplicaError(StorageError, RetryableError):
    """Every live replica holds only a superseded copy of the track.

    Retryable: a down replica holding the current copy may come back, and
    read-repair heals stale copies the moment a good one is served.
    """


class ChecksumError(StorageError):
    """A track's stored checksum does not match its contents."""


class TrackOverflow(StorageError):
    """A record fragment was larger than a track's payload capacity."""


class CodecError(StorageError):
    """A byte sequence is not a valid encoding of an object or value."""


class RecoveryError(StorageError):
    """No valid root record could be found while opening a database."""


class ArchiveError(StorageError):
    """An archived (off-line) object was accessed, or archival failed."""


class ReplicationError(StorageError):
    """Base class for replication-log shipping and recovery errors."""


class ReplicaNotAcknowledged(ReplicationError, RetryableError):
    """A shipped log record was never acknowledged within the retry budget.

    Retryable: the link may heal, and :meth:`LogShipper.catch_up` resends
    everything the replica is missing from its acknowledged epoch.
    """


class ReplicationGapError(ReplicationError, RetryableError):
    """A replica's log is missing epochs; a catch-up resync is required."""


class TornLogRecord(ReplicationError):
    """A replication log record failed its framing or checksum.

    Raised when validating a record before appending it — a torn record
    is *rejected*, never stored, so the log itself stays replayable.
    """


# --------------------------------------------------------------------------
# Sharding (repro.shard)
# --------------------------------------------------------------------------

class ShardError(GemStoneError):
    """Base class for sharded-object-space and cross-shard-commit errors."""


class ShardRoutingError(ShardError, FatalError):
    """A statement could not be routed to exactly one shard.

    Fatal for the statement: one statement may touch keys owned by a
    single shard only — a transaction spans shards by issuing several
    statements, each routable on its own.
    """


class ShardUnavailable(ShardError, RetryableError):
    """A shard worker stopped answering within the retry/deadline budget."""


class CoordinatorUnavailable(ShardError, RetryableError):
    """The commit coordinator stopped answering; undecided work presumes abort."""


class TransactionInDoubt(ShardError, RetryableError):
    """A cross-shard commit lost its coordinator mid-protocol.

    The outcome is unknown to the *client* (the decision log knows): a
    prepared participant neither committed nor aborted yet.  Retryable in
    the operational sense — once the coordinator restarts, in-doubt
    participants RESOLVE against its durable decision log and the
    transaction lands on exactly one side.
    """


# --------------------------------------------------------------------------
# Concurrency (repro.concurrency)
# --------------------------------------------------------------------------

class ConcurrencyError(GemStoneError):
    """Base class for transaction and session errors."""


class TransactionConflict(ConcurrencyError, RetryableError):
    """Optimistic validation failed: a concurrent commit invalidated reads.

    Retryable in the OCC sense: the workspace is discarded, but replaying
    the transaction body against the fresh state may well succeed.
    """

    def __init__(self, message: str, conflicts: tuple = ()) -> None:
        super().__init__(message)
        self.conflicts = conflicts


class TransactionStateError(ConcurrencyError):
    """An operation was issued outside an active transaction."""


class SessionClosed(ConcurrencyError):
    """An operation was issued on a closed session."""


class AuthorizationError(ConcurrencyError):
    """The session's user lacks the privilege for an operation."""


# --------------------------------------------------------------------------
# Directories (repro.directories)
# --------------------------------------------------------------------------

class DirectoryError(GemStoneError):
    """Base class for directory (index) errors."""


# --------------------------------------------------------------------------
# Executor (repro.executor)
# --------------------------------------------------------------------------

class ProtocolError(GemStoneError):
    """A malformed frame was received on the host link."""


class LinkCorruption(ProtocolError):
    """A sequenced frame failed its checksum: damaged in transit, not malformed."""


class LinkTimeout(ProtocolError, RetryableError):
    """No response arrived on the host link within the retry budget."""


# --------------------------------------------------------------------------
# Resource governance (repro.govern)
# --------------------------------------------------------------------------

class GovernanceError(GemStoneError):
    """Base class for resource-governance errors (budgets, quotas, load)."""


class QueryBudgetExceeded(GovernanceError, FatalError):
    """A query exhausted its fuel (steps, send depth, or allocations).

    Fatal for the query: re-running the identical block spends the same
    fuel.  The session survives — only the offending execution dies.
    """

    def __init__(self, limit: str, spent: int, cap: int) -> None:
        super().__init__(f"query budget exceeded: {limit} {spent} > cap {cap}")
        self.limit = limit
        self.spent = spent
        self.cap = cap


class SessionQuotaExceeded(GovernanceError, FatalError):
    """A session's workspace grew past its quota (staged writes/objects).

    Fatal for the transaction: the same staged work cannot fit.  Aborting
    (discarding the workspace) frees the quota and the session lives on.
    """

    def __init__(self, resource: str, used: int, cap: int) -> None:
        super().__init__(f"session quota exceeded: {resource} {used} >= cap {cap}")
        self.resource = resource
        self.used = used
        self.cap = cap


class OverloadedError(GovernanceError, RetryableError):
    """The system shed this request under load; retry after backing off."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceeded(GovernanceError, RetryableError):
    """A request's deadline passed before it could be served."""
