"""The GemStone database facade: everything assembled.

``GemStone.create()`` formats a simulated disk (optionally replicated),
installs the kernel, the world root, users and segments; ``login`` opens
a session with its own OPAL Compiler + Interpreter; commits run the full
pipeline (validate → Linker → Directory Manager → Boxer → Commit
Manager's safe writes); ``GemStone.open`` recovers a database from disk,
restores directories and recompiles stored OPAL methods.

This is the public entry point a downstream user adopts::

    from repro import GemStone

    db = GemStone.create()
    session = db.login()
    session.execute("World!greeting := 'hello'")
    session.commit()
"""

from __future__ import annotations

import json
from typing import Any, Optional

from .concurrency.authorization import Authorizer, Privilege, User
from .concurrency.sessions import SessionObjectManager
from .concurrency.transactions import TransactionManager
from .core.objects import GemObject
from .core.paths import assign as path_assign
from .core.paths import resolve as path_resolve
from .directories.manager import DirectoryManager
from .errors import AuthorizationError
from .govern.budget import BudgetSpec, QueryBudget
from .govern.quota import QuotaSpec, SessionQuota
from .obs import Observability
from .perf import reset_stats as perf_reset_stats
from .opal.interpreter import OpalEngine
from .opal.kernel import print_string
from .storage.archive import ArchiveMedia
from .storage.disk import DiskGeometry, SimulatedDisk
from .storage.replication import ReplicatedDisk
from .storage.stable import StableStore

#: catalog keys for system metadata
_WORLD_KEY = "world"
_SYSTEM_KEY = "system"


class GemSession:
    """A logged-in session: private workspace + its own OPAL engine."""

    def __init__(self, database: "GemStone", user: Optional[User]) -> None:
        self.database = database
        self.budget = (
            QueryBudget(database.budget_spec)
            if database.budget_spec is not None
            else None
        )
        self.quota = (
            SessionQuota(database.quota_spec)
            if database.quota_spec is not None
            else None
        )
        self.session = SessionObjectManager(
            database.store,
            database.transaction_manager,
            user=user,
            authorizer=database.authorizer if user is not None else None,
            quota=self.quota,
        )
        self.engine = OpalEngine(
            self.session,
            directory_manager=database.directory_manager,
            budget=self.budget,
        )
        self.engine.system.database = database  # enable DBA system messages
        self.engine.obs = database.obs
        self.session.time_dial.on_clamp = (
            lambda: database.obs.registry.inc("safetime.clamps")
        )
        database.obs.register_session(self)

    # -- language interface ---------------------------------------------------

    def execute(self, source: str, bindings: Optional[dict[str, Any]] = None) -> Any:
        """Compile and run a block of OPAL source in this session."""
        return self.engine.execute(source, bindings)

    def display(self, value: Any) -> str:
        """The OPAL printString of any value."""
        return print_string(self.session, value)

    # -- transactions -------------------------------------------------------------

    def commit(self) -> int:
        """Commit; returns the transaction time (raises on conflict)."""
        return self.session.commit()

    def abort(self) -> None:
        """Discard the workspace; begin a fresh transaction."""
        self.session.abort()

    def close(self) -> None:
        """End the session; the workspace is discarded wholesale."""
        self.database.obs.retire_session(self)
        self.session.close()

    def __enter__(self) -> "GemSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- python-level data interface --------------------------------------------------

    @property
    def world(self) -> GemObject:
        """The persistent root object."""
        return self.engine.world

    @property
    def time_dial(self):
        """This session's time dial."""
        return self.session.time_dial

    def new(self, class_name: str = "Object", **elements: Any) -> GemObject:
        """Create an object (committed with the transaction)."""
        return self.session.instantiate(class_name, **elements)

    def define_class(self, name, superclass="Object", instvars=()):
        """Define a class within this transaction."""
        return self.session.define_class(name, superclass, instvars)

    def resolve(self, path: str, root: Optional[GemObject] = None,
                default: Any = None) -> Any:
        """Evaluate a path expression from the world (or *root*)."""
        return path_resolve(
            self.session, root if root is not None else self.world,
            path, dial=self.session.time_dial, default=default,
        )

    def assign(self, path: str, value: Any,
               root: Optional[GemObject] = None) -> None:
        """Assign through a path expression from the world (or *root*)."""
        path_assign(
            self.session, root if root is not None else self.world,
            path, value, dial=self.session.time_dial,
        )

    def safe_time(self) -> int:
        """SafeTime: the latest state immune to running transactions."""
        return self.session.safe_time()

    def perf_stats(self) -> dict[str, Any]:
        """Unified cache/health report for this session's hot paths."""
        from .perf import stats

        return stats(self)


class GemStone:
    """One database: disk(s), stable store, managers, sessions."""

    def __init__(
        self,
        store: StableStore,
        budget_spec: Optional[BudgetSpec] = None,
        quota_spec: Optional[QuotaSpec] = None,
        tracing: bool = False,
    ) -> None:
        self.store = store
        #: governance applied to every session opened by :meth:`login`;
        #: ``None`` leaves that axis unlimited (embedded/trusted use)
        self.budget_spec = budget_spec
        self.quota_spec = quota_spec
        #: the instance-scoped observability hub (metrics, spans, slow
        #: queries); see docs/observability.md
        self.obs = Observability(tracing=tracing)
        self.transaction_manager = TransactionManager(store)
        self.transaction_manager.obs = self.obs
        self.store.obs = self.obs
        self.directory_manager = DirectoryManager(store)
        self.transaction_manager.add_commit_listener(
            self.directory_manager.on_commit
        )
        self.authorizer = Authorizer()
        #: a database-level engine over the stable store (DBA tooling,
        #: method recompilation at open)
        self.dba_engine = OpalEngine(
            self.store, directory_manager=self.directory_manager
        )
        self.dba_engine.obs = self.obs
        #: the continuous-replication shipper (see :meth:`enable_replication`)
        self.log_shipper = None
        #: the replica's log store, when replication is enabled in-process
        self.replica_log = None
        # the process-global perf counters leaked across instances; a
        # fresh database starts its report from zero
        perf_reset_stats()

    # ------------------------------------------------------------------
    # creation and recovery
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        track_count: int = 4096,
        track_size: int = 4096,
        replicas: int = 1,
        cache_capacity: Optional[int] = None,
        disk=None,
        tracing: bool = False,
    ) -> "GemStone":
        """Format a fresh database on a new (or given) simulated disk."""
        if disk is None:
            geometry = DiskGeometry(track_count=track_count, track_size=track_size)
            if replicas > 1:
                disk = ReplicatedDisk(
                    [SimulatedDisk(geometry) for _ in range(replicas)]
                )
            else:
                disk = SimulatedDisk(geometry)
        def prepare(store: StableStore) -> None:
            # the world root and system dictionary share transaction
            # time 1 with the kernel classes: user commits start at 2
            world = store.instantiate("Object")
            system = store.instantiate("Object")
            store.catalog[_WORLD_KEY] = world.oid
            store.catalog[_SYSTEM_KEY] = system.oid
            store.bind(system, "security", "{}")
            store.bind(system, "directories", "[]")

        store = StableStore.format(disk, cache_capacity, prepare=prepare)
        return cls(store, tracing=tracing)

    @classmethod
    def open(
        cls, disk, cache_capacity: Optional[int] = None, tracing: bool = False
    ) -> "GemStone":
        """Recover a database from disk: roots, directories, methods."""
        store = StableStore.open(disk, cache_capacity)
        database = cls(store, tracing=tracing)
        database.transaction_manager.clock.advance_to(store.last_tx_time)
        database._recompile_stored_methods()
        database._load_system_state()
        return database

    @property
    def disk(self):
        """The underlying simulated disk (or replicated volume)."""
        return self.store.disk

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------

    def login(self, user: str | None = None, password: str | None = None) -> GemSession:
        """Open a session.

        With credentials, the user is authenticated and authorization is
        enforced; without, the session runs in embedded (trusted) mode.
        """
        account = None
        if user is not None:
            account = self.authorizer.authenticate(user, password or "")
        return GemSession(self, account)

    # ------------------------------------------------------------------
    # DBA operations
    # ------------------------------------------------------------------

    def _dba(self, name: str, password: str) -> User:
        account = self.authorizer.authenticate(name, password)
        if not account.is_dba:
            raise AuthorizationError(f"{name} is not a DBA")
        return account

    def create_user(self, dba: tuple[str, str], name: str, password: str,
                    is_dba: bool = False) -> User:
        """DBA: register a user; durable immediately."""
        actor = self._dba(*dba)
        user = self.authorizer.create_user(actor, name, password, is_dba)
        self._persist_system_state()
        return user

    def create_segment(self, dba: tuple[str, str], name: str,
                       default_privilege: Privilege = Privilege.NONE):
        """DBA: create an authorization segment; durable immediately."""
        actor = self._dba(*dba)
        segment = self.authorizer.create_segment(actor, name, default_privilege)
        self._persist_system_state()
        return segment

    def grant(self, dba: tuple[str, str], segment_id: int, user: str,
              privilege: Privilege) -> None:
        """DBA: grant a privilege; durable immediately."""
        actor = self._dba(*dba)
        self.authorizer.grant(actor, segment_id, user, privilege)
        self._persist_system_state()

    def create_directory(self, owner, path: str, name: str = ""):
        """Create (and persist the definition of) a directory."""
        directory = self.directory_manager.create_directory(owner, path, name)
        self._persist_system_state()
        return directory

    def archive_object(self, oid: int, media: ArchiveMedia) -> int:
        """DBA: move an object's record to archival media."""
        key = self.store.archive_object(oid, media)
        tx_time = self.transaction_manager.clock.assign()
        self.store.persist([], tx_time)
        return key

    def archive_history(self, media: ArchiveMedia) -> list[int]:
        """DBA: move every *historical-only* object to archival media.

        An object is historical-only when no current element of any
        on-disk object (starting from the catalog roots) references it —
        it exists solely in past states.  Section 6: "A database
        administrator can explicitly move objects to other media ...
        while conceptually the entire history of the database exists,
        some objects in it may become temporarily or permanently
        inaccessible."  Mount the volume to read them again.

        Returns the archived oids.
        """
        reachable: set[int] = set()
        stack = [oid for oid in self.store.catalog.values()]
        stack.extend(self.store.classes.values())
        while stack:
            oid = stack.pop()
            if oid in reachable:
                continue
            location = self.store.table.get(oid)
            if location is None or location.archived:
                continue
            reachable.add(oid)
            stack.extend(self.store.object(oid).referenced_oids())
        archived = []
        for oid in sorted(set(self.store.table.oids()) - reachable):
            if not self.store.table.get(oid).archived:
                self.store.archive_object(oid, media)
                archived.append(oid)
        if archived:
            tx_time = self.transaction_manager.clock.assign()
            self.store.persist([], tx_time)
        return archived

    def compact(self) -> int:
        """DBA: re-box every object into fresh clustered tracks.

        Reclaims tracks fragmented by shadow-paging churn and restores
        parent-first clustering from the world root outward.  Returns
        the number of tracks reclaimed.
        """
        tx_time = self.transaction_manager.clock.assign()
        world_first = [
            self.store.catalog[_WORLD_KEY],
            self.store.catalog[_SYSTEM_KEY],
        ] + sorted(self.store.classes.values())
        return self.store.compact(tx_time, world_first)

    # ------------------------------------------------------------------
    # disaster recovery (repro.dr)
    # ------------------------------------------------------------------

    def enable_replication(
        self,
        plan=None,
        sync: bool = True,
        link_wrapper=None,
        replica_store=None,
        clock=None,
        frame_deadline=None,
    ):
        """Start continuous log shipping to an in-process replica.

        Builds the link pair, a :class:`~repro.dr.store.ReplicaLogStore`
        (or adopts *replica_store*), the receiver pump and the
        :class:`~repro.dr.ship.LogShipper`; ships a bootstrap snapshot
        of the current platter; then hooks
        :attr:`CommitManager.log_sink` so every later commit streams a
        delta record before it is acknowledged (*sync*; ``sync=False``
        buffers for :meth:`~repro.dr.ship.LogShipper.catch_up`).  *plan*
        wraps the primary's link end in
        :class:`~repro.faults.link.FaultyLink`; *link_wrapper* stacks an
        arbitrary wrapper over it (the soak's kill switch).  Returns the
        shipper; the surviving store is :attr:`replica_log`.
        """
        from .dr.ship import LogReceiver, LogShipper
        from .dr.store import ReplicaLogStore
        from .executor.link import make_link

        primary_end, replica_end = make_link()
        link = primary_end
        if plan is not None:
            from .faults.link import FaultyLink

            link = FaultyLink(link, plan)
        if link_wrapper is not None:
            link = link_wrapper(link)
        store = replica_store if replica_store is not None else ReplicaLogStore()
        receiver = LogReceiver(store, obs=self.obs)
        shipper = LogShipper(
            link,
            pump=lambda: receiver.serve(replica_end),
            obs=self.obs,
            sync=sync,
            clock=clock,
            frame_deadline=frame_deadline,
        )
        shipper.bootstrap(self.disk, self.store.commit_manager.current_epoch)
        self.store.commit_manager.log_sink = shipper.on_commit
        self.log_shipper = shipper
        self.replica_log = store
        return shipper

    def checkpoint_replication(self) -> int:
        """Ship a fresh snapshot segment (lets old segments archive)."""
        if self.log_shipper is None:
            return 0
        return self.log_shipper.checkpoint(
            self.disk, self.store.commit_manager.current_epoch
        )

    def replication_report(self) -> dict[str, Any]:
        """Shipping and replica-log counters (empty when not enabled)."""
        report: dict[str, Any] = {"enabled": self.log_shipper is not None}
        if self.log_shipper is not None:
            report.update(self.log_shipper.report())
        if self.replica_log is not None:
            report["replica"] = self.replica_log.report()
        return report

    def storage_report(self) -> dict[str, Any]:
        """Storage occupancy and transaction statistics."""
        report = self.store.storage_report()
        report["transactions"] = self.transaction_manager.stats
        return report

    def perf_stats(self) -> dict[str, Any]:
        """Unified cache/health report across the whole database."""
        from .perf import stats

        return stats(self)

    def observability(self, slow: int = 10, spans: int = 20) -> dict[str, Any]:
        """The full observability snapshot, as one JSON-ready dict.

        Sections: ``transactions`` (commit/abort/retry counts),
        ``caches`` (hit rates, store- and session-level), ``storage``
        (occupancy + disk health), ``governance`` (admission, budgets,
        quotas, SafeTime clamps), ``counters`` (the metrics registry),
        ``slow_queries`` (the *slow* slowest, with captured plans) and
        ``tracing`` (the *spans* most recent spans).  The shape is
        pinned by ``docs/observability_schema.json``; see
        ``docs/observability.md`` for the catalogue.
        """
        return self.obs.snapshot(self, slow=slow, spans=spans)

    # ------------------------------------------------------------------
    # system metadata persistence
    # ------------------------------------------------------------------

    def _system_object(self) -> GemObject:
        return self.store.object(self.store.catalog[_SYSTEM_KEY])

    def _persist_system_state(self) -> None:
        system = self._system_object()
        tx_time = self.transaction_manager.clock.assign()
        system.bind("security", json.dumps(self.authorizer.export_state()), tx_time)
        system.bind(
            "directories",
            json.dumps(self.directory_manager.export_definitions()),
            tx_time,
        )
        self.store.persist([system], tx_time)

    def _load_system_state(self) -> None:
        system = self._system_object()
        security = system.value_at("security")
        if isinstance(security, str):
            state = json.loads(security)
            if "users" in state:  # "{}" is the fresh-database placeholder
                self.authorizer.import_state(state)
        definitions = system.value_at("directories")
        if isinstance(definitions, str):
            self.directory_manager.import_definitions(
                tuple(d) for d in json.loads(definitions)
            )

    def _recompile_stored_methods(self) -> None:
        """Recompile OPAL method sources decoded from class records."""
        for name in list(self.store.classes):
            cls = self.store.class_named(name)  # forces the load
            sources = self.store.pending_method_sources.pop(cls.oid, ())
            for side, _selector, source in sources:
                if side == "class":
                    self.dba_engine.compile_class_method_into(cls, source)
                else:
                    self.dba_engine.compile_method_into(cls, source)
