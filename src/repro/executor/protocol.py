"""Frame encoding for the Executor protocol.

Section 6: "The Executor handles communications between GemStone and
host software: receiving blocks of code, returning results and error
messages."

Frame layout (inside the link's length framing): one type byte, then a
type-specific payload using the storage codec's primitives.  Results
carry both the value — when it is an immediate or an object reference —
and its display string, so hosts without an object memory can still show
something; structured objects travel as (oid, display) pairs, never by
value.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any

from ..core.objects import GemObject
from ..errors import ProtocolError
from ..storage.codec import Reader, Writer, decode_value, encode_value


class FrameType(IntEnum):
    """Protocol frame types."""

    LOGIN = 1
    LOGIN_OK = 2
    EXECUTE = 3
    RESULT = 4
    ERROR = 5
    COMMIT = 6
    COMMITTED = 7
    CONFLICT = 8
    ABORT = 9
    ABORTED = 10
    LOGOUT = 11
    BYE = 12


@dataclass(frozen=True)
class Frame:
    """A decoded protocol frame."""

    type: FrameType
    fields: dict[str, Any]


def encode_login(user: str, password: str) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.LOGIN]))
    writer.string(user)
    writer.string(password)
    return writer.getvalue()


def encode_login_ok(session_id: int) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.LOGIN_OK]))
    writer.uvarint(session_id)
    return writer.getvalue()


def encode_execute(source: str) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.EXECUTE]))
    writer.string(source)
    return writer.getvalue()


def encode_result(value: Any, display: str) -> bytes:
    """Encode an execution result: wire value (if expressible) + display."""
    writer = Writer()
    writer.raw(bytes([FrameType.RESULT]))
    if isinstance(value, GemObject):
        value = value.ref
    try:
        encode_value(writer, value)
        wire_ok = True
    except Exception:
        writer = Writer()
        writer.raw(bytes([FrameType.RESULT]))
        encode_value(writer, None)
        wire_ok = False
    writer.string(display)
    writer.raw(bytes([1 if wire_ok else 0]))
    return writer.getvalue()


def encode_error(error_class: str, message: str) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.ERROR]))
    writer.string(error_class)
    writer.string(message)
    return writer.getvalue()


def encode_simple(frame_type: FrameType) -> bytes:
    return bytes([frame_type])


def encode_committed(tx_time: int) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.COMMITTED]))
    writer.uvarint(tx_time)
    return writer.getvalue()


def decode_frame(data: bytes) -> Frame:
    """Decode any protocol frame."""
    if not data:
        raise ProtocolError("empty frame")
    reader = Reader(data)
    try:
        frame_type = FrameType(reader.byte())
    except ValueError as error:
        raise ProtocolError(f"unknown frame type {data[0]}") from error
    fields: dict[str, Any] = {}
    if frame_type is FrameType.LOGIN:
        fields["user"] = reader.string()
        fields["password"] = reader.string()
    elif frame_type is FrameType.LOGIN_OK:
        fields["session_id"] = reader.uvarint()
    elif frame_type is FrameType.EXECUTE:
        fields["source"] = reader.string()
    elif frame_type is FrameType.RESULT:
        fields["value"] = decode_value(reader)
        fields["display"] = reader.string()
        fields["wire_value"] = reader.byte() == 1
    elif frame_type is FrameType.ERROR:
        fields["error_class"] = reader.string()
        fields["message"] = reader.string()
    elif frame_type is FrameType.COMMITTED:
        fields["tx_time"] = reader.uvarint()
    return Frame(frame_type, fields)
