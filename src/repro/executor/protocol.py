"""Frame encoding for the Executor protocol.

Section 6: "The Executor handles communications between GemStone and
host software: receiving blocks of code, returning results and error
messages."

Frame layout (inside the link's length framing): one type byte, then a
type-specific payload using the storage codec's primitives.  Results
carry both the value — when it is an immediate or an object reference —
and its display string, so hosts without an object memory can still show
something; structured objects travel as (oid, display) pairs, never by
value.

Reliability: any frame may be wrapped in a SEQ envelope —

    SEQ  uvarint(sequence number)  flags  [f64 deadline]
         u32 crc32(inner frame)  inner frame

— which gives the host ↔ Gem conversation exactly-once semantics over a
lossy link.  Bit 0 of the flags byte marks an attached *deadline*: the
simulated-clock instant after which the sender no longer wants the
request served (the Executor answers a typed ``DeadlineExceeded`` error
instead of doing stale work).  The sequence number lets the Executor recognise a resend of
the last in-flight request and replay its cached response instead of
applying the request twice; the checksum distinguishes a frame damaged
in transit (:class:`~repro.errors.LinkCorruption`, silently droppable —
the sender will retry) from one that was malformed at the source (a
:class:`~repro.errors.ProtocolError` worth answering).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Any
from zlib import crc32

from ..core.objects import GemObject
from ..errors import CodecError, LinkCorruption, ProtocolError
from ..storage.codec import Reader, Writer, decode_value, encode_value


class FrameType(IntEnum):
    """Protocol frame types."""

    LOGIN = 1
    LOGIN_OK = 2
    EXECUTE = 3
    RESULT = 4
    ERROR = 5
    COMMIT = 6
    COMMITTED = 7
    CONFLICT = 8
    ABORT = 9
    ABORTED = 10
    LOGOUT = 11
    BYE = 12
    SEQ = 13
    OVERLOADED = 14
    SHIP = 15
    SHIP_ACK = 16
    SNAPSHOT = 17
    SHIP_STATUS = 18
    # -- sharded object space (repro.shard) --------------------------------
    PREPARE = 19
    VOTE = 20
    DECIDE = 21
    DECIDE_ACK = 22
    RESOLVE = 23
    RESOLVED = 24
    SHARD_EXEC = 25
    SHARD_COMMIT = 26
    # -- repro.net: TCP session resume + process status
    HELLO = 27
    HELLO_OK = 28
    STATUS = 29
    STATUS_REPORT = 30


@dataclass(frozen=True)
class Frame:
    """A decoded protocol frame (``seq``/``deadline``/``request_id``
    set when enveloped)."""

    type: FrameType
    fields: dict[str, Any]
    seq: int | None = None
    deadline: float | None = None
    request_id: int | None = None
    channel: int | None = None


def encode_login(user: str, password: str) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.LOGIN]))
    writer.string(user)
    writer.string(password)
    return writer.getvalue()


def encode_login_ok(session_id: int) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.LOGIN_OK]))
    writer.uvarint(session_id)
    return writer.getvalue()


def encode_execute(source: str) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.EXECUTE]))
    writer.string(source)
    return writer.getvalue()


def encode_result(value: Any, display: str) -> bytes:
    """Encode an execution result: wire value (if expressible) + display."""
    writer = Writer()
    writer.raw(bytes([FrameType.RESULT]))
    if isinstance(value, GemObject):
        value = value.ref
    try:
        encode_value(writer, value)
        wire_ok = True
    except Exception:
        writer = Writer()
        writer.raw(bytes([FrameType.RESULT]))
        encode_value(writer, None)
        wire_ok = False
    writer.string(display)
    writer.raw(bytes([1 if wire_ok else 0]))
    return writer.getvalue()


def encode_error(error_class: str, message: str) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.ERROR]))
    writer.string(error_class)
    writer.string(message)
    return writer.getvalue()


def encode_simple(frame_type: FrameType) -> bytes:
    return bytes([frame_type])


def encode_committed(tx_time: int) -> bytes:
    writer = Writer()
    writer.raw(bytes([FrameType.COMMITTED]))
    writer.uvarint(tx_time)
    return writer.getvalue()


def encode_overloaded(retry_after: float) -> bytes:
    """The load-shedding answer: come back in *retry_after* clock units."""
    writer = Writer()
    writer.raw(bytes([FrameType.OVERLOADED]))
    writer.raw(struct.pack("<d", float(retry_after)))
    return writer.getvalue()


# -- replication log shipping (repro.dr) -----------------------------------
#
# The disaster-recovery shipper reuses this protocol wholesale: SHIP and
# SNAPSHOT frames carry self-delimiting CRC-framed log records (built by
# repro.dr.log) as opaque payloads, wrapped in the same SEQ envelope the
# host link uses, so they inherit exactly-once delivery, checksums, and
# the repro.faults.link fault wrappers without any new machinery.


def encode_ship(record: bytes) -> bytes:
    """A delta log record bound for the replica's log store."""
    writer = Writer()
    writer.raw(bytes([FrameType.SHIP]))
    writer.raw(record)
    return writer.getvalue()


def encode_snapshot(record: bytes) -> bytes:
    """A snapshot log record (full-state bootstrap segment member)."""
    writer = Writer()
    writer.raw(bytes([FrameType.SNAPSHOT]))
    writer.raw(record)
    return writer.getvalue()


def encode_ship_ack(epoch: int) -> bytes:
    """The replica's durable-acknowledgement: log applied through *epoch*."""
    writer = Writer()
    writer.raw(bytes([FrameType.SHIP_ACK]))
    writer.uvarint(epoch)
    return writer.getvalue()


def encode_ship_status() -> bytes:
    """Ask the replica which epoch it has durably acknowledged."""
    return bytes([FrameType.SHIP_STATUS])


# -- sharded object space (repro.shard) -------------------------------------
#
# Cross-shard commit speaks presumed-abort two-phase commit over the same
# SEQ envelope: the coordinator PREPAREs every touched shard, collects
# VOTEs, durably logs a commit decision, and DECIDEs; a restarted shard
# re-acquires its prepared locks and asks the coordinator to RESOLVE each
# in-doubt transaction against the decision log.  SHARD_EXEC routes one
# statement into a shard-side transaction; SHARD_COMMIT is the one-shard
# fast path that skips the protocol entirely.


def encode_prepare(gtid: str) -> bytes:
    """Phase one: validate *gtid* and durably persist its prepared state."""
    writer = Writer()
    writer.raw(bytes([FrameType.PREPARE]))
    writer.string(gtid)
    return writer.getvalue()


def encode_vote(gtid: str, commit: bool, read_only: bool = False) -> bytes:
    """The participant's phase-one answer (NO is final; YES is a promise)."""
    writer = Writer()
    writer.raw(bytes([FrameType.VOTE]))
    writer.string(gtid)
    writer.raw(bytes([1 if commit else 0, 1 if read_only else 0]))
    return writer.getvalue()


def encode_decide(gtid: str, commit: bool) -> bytes:
    """Phase two: apply (or discard) the prepared transaction."""
    writer = Writer()
    writer.raw(bytes([FrameType.DECIDE]))
    writer.string(gtid)
    writer.raw(bytes([1 if commit else 0]))
    return writer.getvalue()


def encode_decide_ack(gtid: str, epoch: int) -> bytes:
    """The participant applied the decision; *epoch* is its local epoch."""
    writer = Writer()
    writer.raw(bytes([FrameType.DECIDE_ACK]))
    writer.string(gtid)
    writer.uvarint(epoch)
    return writer.getvalue()


def encode_resolve(gtid: str) -> bytes:
    """A restarted participant asks the coordinator for *gtid*'s outcome."""
    writer = Writer()
    writer.raw(bytes([FrameType.RESOLVE]))
    writer.string(gtid)
    return writer.getvalue()


def encode_resolved(gtid: str, commit: bool) -> bytes:
    """The coordinator's answer: logged == commit, unlogged == presumed abort."""
    writer = Writer()
    writer.raw(bytes([FrameType.RESOLVED]))
    writer.string(gtid)
    writer.raw(bytes([1 if commit else 0]))
    return writer.getvalue()


def encode_shard_exec(gtid: str, source: str) -> bytes:
    """Route one OPAL statement into shard-side transaction *gtid*."""
    writer = Writer()
    writer.raw(bytes([FrameType.SHARD_EXEC]))
    writer.string(gtid)
    writer.string(source)
    return writer.getvalue()


# -- real-socket session layer (repro.net) ----------------------------------
#
# A TCP connection can drop and be redialed, so the socket client opens
# every connection with HELLO carrying a session-resume token.  The server
# answers HELLO_OK (unsequenced) and binds the connection to the token's
# executor — same session, same replay window — which is what makes
# post-reconnect resends of unacked seqs land as replays instead of
# double-applies.  STATUS/STATUS_REPORT is the worker-process health and
# recovery probe (in-doubt gtids, window census) used by repro.shard.procs.


def encode_hello(token: str) -> bytes:
    """Open (or resume) the socket session identified by *token*."""
    writer = Writer()
    writer.raw(bytes([FrameType.HELLO]))
    writer.string(token)
    return writer.getvalue()


def encode_hello_ok(token: str) -> bytes:
    """The server bound this connection to *token*'s session."""
    writer = Writer()
    writer.raw(bytes([FrameType.HELLO_OK]))
    writer.string(token)
    return writer.getvalue()


def encode_status() -> bytes:
    """Ask a worker process for its recovery/health report."""
    return bytes([FrameType.STATUS])


def encode_status_report(payload: str) -> bytes:
    """The worker's answer: a JSON document (in-doubt gtids, windows…)."""
    writer = Writer()
    writer.raw(bytes([FrameType.STATUS_REPORT]))
    writer.string(payload)
    return writer.getvalue()


def encode_shard_commit(gtid: str) -> bytes:
    """Single-shard fast path: commit *gtid* locally, no 2PC."""
    writer = Writer()
    writer.raw(bytes([FrameType.SHARD_COMMIT]))
    writer.string(gtid)
    return writer.getvalue()


def rehydrate_error(error_class: str, message: str) -> Exception:
    """Reconstruct a typed library error from its wire (class, message) pair.

    Unknown or unregistered classes degrade to a typed
    :class:`~repro.errors.FatalError` with the original class name
    preserved in the message (and on ``original_class``), so a newer peer
    never crashes an older one — and so retry policy treats an error it
    cannot classify as non-retryable rather than guessing.  Shared by the
    host connection, the replication shipper, and the shard links.
    """
    from .. import errors as errors_module
    from ..errors import FatalError, GemStoneError

    cls = getattr(errors_module, error_class, None)
    if isinstance(cls, type) and issubclass(cls, GemStoneError):
        try:
            return cls(message)
        except TypeError:
            # structured constructor (caps, meters) the bare message
            # cannot satisfy: the *type* must still survive the trip
            error = cls.__new__(cls)
            Exception.__init__(error, message)
            return error
    error = FatalError(f"{error_class}: {message}")
    error.original_class = error_class
    return error


#: SEQ flags-byte bits
_SEQ_HAS_DEADLINE = 0x01
_SEQ_HAS_REQUEST_ID = 0x02
_SEQ_HAS_CHANNEL = 0x04


def encode_seq(
    seq: int,
    inner: bytes,
    deadline: float | None = None,
    request_id: int | None = None,
    channel: int | None = None,
) -> bytes:
    """Wrap any encoded frame in a checksummed sequence envelope.

    *request_id* (flags bit 1) carries the observability request ID the
    Executor minted for this exchange, so host-side and Gem-side trace
    spans of one request correlate; old peers ignore the bit.

    *channel* (flags bit 2) names the logical stream the sequence number
    belongs to, so several conversations with independent counters can
    multiplex one link — a shard worker receives session-exec traffic and
    2PC control traffic on the same wire, and its replay cache must never
    answer stream A's resend with stream B's cached response.  Absent
    means channel 0 (the single-stream conversations of older peers).
    """
    writer = Writer()
    writer.raw(bytes([FrameType.SEQ]))
    writer.uvarint(seq)
    flags = 0
    if deadline is not None:
        flags |= _SEQ_HAS_DEADLINE
    if request_id is not None:
        flags |= _SEQ_HAS_REQUEST_ID
    if channel is not None:
        flags |= _SEQ_HAS_CHANNEL
    writer.raw(bytes([flags]))
    if deadline is not None:
        writer.raw(struct.pack("<d", float(deadline)))
    if request_id is not None:
        writer.uvarint(request_id)
    if channel is not None:
        writer.uvarint(channel)
    writer.raw(struct.pack("<I", crc32(inner)))
    writer.raw(inner)
    return writer.getvalue()


def decode_frame(data: bytes) -> Frame:
    """Decode any protocol frame."""
    if not data:
        raise ProtocolError("empty frame")
    reader = Reader(data)
    try:
        frame_type = FrameType(reader.byte())
    except ValueError as error:
        raise ProtocolError(f"unknown frame type {data[0]}") from error
    if frame_type is FrameType.SEQ:
        try:
            seq = reader.uvarint()
            flags = reader.byte()
            deadline = None
            if flags & _SEQ_HAS_DEADLINE:
                (deadline,) = struct.unpack("<d", reader.raw(8))
            request_id = None
            if flags & _SEQ_HAS_REQUEST_ID:
                request_id = reader.uvarint()
            channel = None
            if flags & _SEQ_HAS_CHANNEL:
                channel = reader.uvarint()
            (stored_crc,) = struct.unpack("<I", reader.raw(4))
            inner = reader.raw(reader.remaining())
        except CodecError as error:
            raise LinkCorruption("sequence envelope truncated in transit") from error
        if crc32(inner) != stored_crc:
            raise LinkCorruption(f"frame seq {seq} failed its checksum")
        if inner and inner[0] == FrameType.SEQ:
            raise ProtocolError("nested sequence envelopes are not allowed")
        decoded = decode_frame(inner)
        return Frame(
            decoded.type, decoded.fields,
            seq=seq, deadline=deadline, request_id=request_id, channel=channel,
        )
    fields: dict[str, Any] = {}
    if frame_type is FrameType.LOGIN:
        fields["user"] = reader.string()
        fields["password"] = reader.string()
    elif frame_type is FrameType.LOGIN_OK:
        fields["session_id"] = reader.uvarint()
    elif frame_type is FrameType.EXECUTE:
        fields["source"] = reader.string()
    elif frame_type is FrameType.RESULT:
        fields["value"] = decode_value(reader)
        fields["display"] = reader.string()
        fields["wire_value"] = reader.byte() == 1
    elif frame_type is FrameType.ERROR:
        fields["error_class"] = reader.string()
        fields["message"] = reader.string()
    elif frame_type is FrameType.COMMITTED:
        fields["tx_time"] = reader.uvarint()
    elif frame_type is FrameType.OVERLOADED:
        (fields["retry_after"],) = struct.unpack("<d", reader.raw(8))
    elif frame_type in (FrameType.SHIP, FrameType.SNAPSHOT):
        fields["record"] = reader.raw(reader.remaining())
    elif frame_type is FrameType.SHIP_ACK:
        fields["epoch"] = reader.uvarint()
    elif frame_type in (FrameType.PREPARE, FrameType.RESOLVE,
                        FrameType.SHARD_COMMIT):
        fields["gtid"] = reader.string()
    elif frame_type is FrameType.VOTE:
        fields["gtid"] = reader.string()
        fields["commit"] = reader.byte() == 1
        fields["read_only"] = reader.byte() == 1
    elif frame_type in (FrameType.DECIDE, FrameType.RESOLVED):
        fields["gtid"] = reader.string()
        fields["commit"] = reader.byte() == 1
    elif frame_type is FrameType.DECIDE_ACK:
        fields["gtid"] = reader.string()
        fields["epoch"] = reader.uvarint()
    elif frame_type is FrameType.SHARD_EXEC:
        fields["gtid"] = reader.string()
        fields["source"] = reader.string()
    elif frame_type in (FrameType.HELLO, FrameType.HELLO_OK):
        fields["token"] = reader.string()
    elif frame_type is FrameType.STATUS_REPORT:
        fields["payload"] = reader.string()
    return Frame(frame_type, fields)
