"""The host ↔ GemStone network link.

Section 6: "our present implementation has GemStone running on its own
hardware and communicating to user interface programs on host machines
through a network link."  The substitute (DESIGN.md section 2) is an
in-process, byte-framed duplex channel: each direction is a queue of
length-prefixed frames, so framing bugs surface exactly as they would on
a socket.
"""

from __future__ import annotations

import struct

from ..errors import ProtocolError


class _Pipe:
    """One direction of the link: a byte stream with frame boundaries."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._closed = False

    def write(self, data: bytes) -> None:
        if self._closed:
            raise ProtocolError("link is closed")
        self._buffer += data

    def read_frame(self) -> bytes | None:
        """Pop one complete frame, or None if none is buffered.

        A frame whose body has not fully arrived is *not* an error — the
        sender may still be streaming it — so the partial bytes stay
        buffered and None is returned.  Only a closed pipe with leftover
        partial bytes is truly truncated: no more bytes can ever arrive.
        """
        if len(self._buffer) < 4:
            if self._buffer and self._closed:
                raise ProtocolError("truncated frame on closed link")
            return None
        (length,) = struct.unpack_from("<I", self._buffer, 0)
        if len(self._buffer) < 4 + length:
            if self._closed:
                raise ProtocolError("truncated frame on closed link")
            return None
        frame = bytes(self._buffer[4 : 4 + length])
        del self._buffer[: 4 + length]
        return frame

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class LinkEnd:
    """One endpoint of the duplex link."""

    def __init__(self, outgoing: _Pipe, incoming: _Pipe) -> None:
        self._out = outgoing
        self._in = incoming
        self.frames_sent = 0
        self.bytes_sent = 0

    def send(self, frame: bytes) -> None:
        """Send one frame (length-prefixed on the wire)."""
        self._out.write(struct.pack("<I", len(frame)) + frame)
        self.frames_sent += 1
        self.bytes_sent += 4 + len(frame)

    def receive(self) -> bytes | None:
        """Receive the next complete frame, or None if none waiting."""
        return self._in.read_frame()

    def close(self) -> None:
        """Close the outgoing direction."""
        self._out.close()

    @property
    def peer_closed(self) -> bool:
        """True once the peer closed its outgoing direction."""
        return self._in.closed


def make_link() -> tuple[LinkEnd, LinkEnd]:
    """Create a connected (host_end, gem_end) pair."""
    a_to_b = _Pipe()
    b_to_a = _Pipe()
    return LinkEnd(a_to_b, b_to_a), LinkEnd(b_to_a, a_to_b)
