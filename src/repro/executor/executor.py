"""The Executor: sessions on behalf of users on host machines.

Section 6: "The Executor is responsible for controlling sessions in the
GemStone system on behalf of users on host machines ... It maintains a
Compiler and Interpreter for each active user."

:class:`Executor` serves the gem side of a link: LOGIN authenticates and
opens a session with its own OPAL engine (the per-user Compiler +
Interpreter), EXECUTE compiles and runs a block of OPAL source entirely
inside the database system, COMMIT/ABORT drive the Transaction Manager,
and errors return as ERROR frames rather than exceptions.

:class:`HostConnection` is the host-side convenience wrapper used by
examples and tests (the "user interface program on the host machine").
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import GemStoneError, ProtocolError, TransactionConflict
from ..opal.interpreter import OpalEngine
from ..opal.kernel import print_string
from . import protocol
from .link import LinkEnd, make_link
from .protocol import Frame, FrameType


class Executor:
    """Serves one host link against a database."""

    def __init__(self, database) -> None:
        self.database = database
        self._session = None
        self._engine: Optional[OpalEngine] = None

    def serve(self, gem_end: LinkEnd) -> int:
        """Process every buffered frame; returns how many were handled.

        The in-process link is synchronous: hosts write a frame, then
        call :meth:`serve` (or use :class:`HostConnection`, which does).
        """
        handled = 0
        while True:
            raw = gem_end.receive()
            if raw is None:
                return handled
            handled += 1
            try:
                frame = protocol.decode_frame(raw)
                response = self._handle(frame)
            except ProtocolError as error:
                response = protocol.encode_error("ProtocolError", str(error))
            gem_end.send(response)
            if raw and raw[0] == FrameType.LOGOUT:
                return handled

    def _handle(self, frame: Frame) -> bytes:
        if frame.type is FrameType.LOGIN:
            return self._login(frame.fields["user"], frame.fields["password"])
        if self._session is None:
            return protocol.encode_error("ProtocolError", "not logged in")
        if frame.type is FrameType.EXECUTE:
            return self._execute(frame.fields["source"])
        if frame.type is FrameType.COMMIT:
            try:
                tx_time = self._session.commit()
                return protocol.encode_committed(tx_time)
            except TransactionConflict:
                return protocol.encode_simple(FrameType.CONFLICT)
        if frame.type is FrameType.ABORT:
            self._session.abort()
            return protocol.encode_simple(FrameType.ABORTED)
        if frame.type is FrameType.LOGOUT:
            self._session.close()
            self._session = None
            self._engine = None
            return protocol.encode_simple(FrameType.BYE)
        return protocol.encode_error(
            "ProtocolError", f"unexpected frame {frame.type.name}"
        )

    def _login(self, user: str, password: str) -> bytes:
        try:
            self._session = self.database.login(user, password)
        except GemStoneError as error:
            return protocol.encode_error(type(error).__name__, str(error))
        self._engine = self._session.engine
        return protocol.encode_login_ok(self._session.session.session_id)

    def _execute(self, source: str) -> bytes:
        try:
            value = self._session.execute(source)
        except GemStoneError as error:
            return protocol.encode_error(type(error).__name__, str(error))
        display = print_string(self._session.session, value)
        return protocol.encode_result(value, display)


class HostConnection:
    """Host-side client: login, execute blocks of OPAL, commit, logout."""

    def __init__(self, database) -> None:
        self.host_end, gem_end = make_link()
        self._gem_end = gem_end
        self.executor = Executor(database)
        self.session_id: Optional[int] = None

    def _round_trip(self, frame: bytes) -> Frame:
        self.host_end.send(frame)
        self.executor.serve(self._gem_end)
        raw = self.host_end.receive()
        if raw is None:
            raise ProtocolError("no response from executor")
        return protocol.decode_frame(raw)

    def login(self, user: str, password: str) -> int:
        """Authenticate; returns the session id."""
        response = self._round_trip(protocol.encode_login(user, password))
        if response.type is FrameType.ERROR:
            raise GemStoneError(response.fields["message"])
        self.session_id = response.fields["session_id"]
        return self.session_id

    def execute(self, source: str) -> tuple[Any, str]:
        """Run a block of OPAL; returns (wire value, display string).

        The wire value is an immediate or a
        :class:`~repro.core.values.Ref`; hosts dereference through
        further OPAL, as the paper's hosts did.
        """
        response = self._round_trip(protocol.encode_execute(source))
        if response.type is FrameType.ERROR:
            raise GemStoneError(
                f"{response.fields['error_class']}: {response.fields['message']}"
            )
        return response.fields["value"], response.fields["display"]

    def commit(self) -> Optional[int]:
        """Commit; returns the transaction time, or None on conflict."""
        response = self._round_trip(protocol.encode_simple(FrameType.COMMIT))
        if response.type is FrameType.CONFLICT:
            return None
        return response.fields["tx_time"]

    def abort(self) -> None:
        """Abort the current transaction."""
        self._round_trip(protocol.encode_simple(FrameType.ABORT))

    def logout(self) -> None:
        """End the session."""
        self._round_trip(protocol.encode_simple(FrameType.LOGOUT))
        self.session_id = None
