"""The Executor: sessions on behalf of users on host machines.

Section 6: "The Executor is responsible for controlling sessions in the
GemStone system on behalf of users on host machines ... It maintains a
Compiler and Interpreter for each active user."

:class:`Executor` serves the gem side of a link: LOGIN authenticates and
opens a session with its own OPAL engine (the per-user Compiler +
Interpreter), EXECUTE compiles and runs a block of OPAL source entirely
inside the database system, COMMIT/ABORT drive the Transaction Manager,
and errors return as ERROR frames rather than exceptions.  The serve
loop never dies on a bad frame: malformed requests are answered with
ERROR frames, frames damaged in transit (failed envelope checksums) are
dropped for the host to resend, and a duplicate of any sequenced request
still inside the bounded ``(channel, seq)`` replay window
(:class:`~repro.executor.replay.ReplayWindow`) replays the cached
response instead of being applied twice — which is what makes host-side
retry safe for EXECUTE and COMMIT even when retries are pipelined or
arrive reordered.

The request path is split into three stages so the asynchronous front
door (:mod:`repro.frontdoor`) can drive the same machinery with a real
queue between arrival and execution: :meth:`Executor.gate` is
arrival-time admission (deadline + leaky bucket + breaker, a returned
frame means *refused*), :meth:`Executor.apply` executes one admitted
frame (request-ID minting, tracing, the guarded handler), and
:meth:`Executor.seal` wraps a response in its SEQ envelope and records
it in the replay window.  The synchronous :meth:`serve` loop runs the
stages back to back; the front door re-checks the deadline between
dequeue and apply, because work can expire while it waits.

:class:`HostConnection` is the host-side convenience wrapper used by
examples and tests (the "user interface program on the host machine").
Every request carries a sequence number; when a response fails to arrive
(a lossy or partitioned link), the connection retries, reconnects if the
link stays silent, and relies on the Executor's replay cache for
idempotency.  A link that never answers surfaces as the typed
:class:`~repro.errors.LinkTimeout`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import (
    GemStoneError,
    LinkCorruption,
    LinkTimeout,
    OverloadedError,
    ProtocolError,
    StorageError,
    TransactionConflict,
)
from ..opal.interpreter import OpalEngine
from . import protocol
from .link import LinkEnd, make_link
from .protocol import Frame, FrameType
from .replay import DEFAULT_WINDOW, ReplayWindow

#: responses a host connection stashes for other in-flight sequence
#: numbers before the oldest is dropped
_RESPONSE_STASH_LIMIT = 32


class Executor:
    """Serves one host link against a database."""

    def __init__(
        self, database, admission=None, replay_window: int = DEFAULT_WINDOW
    ) -> None:
        self.database = database
        #: shared :class:`~repro.govern.admission.AdmissionController`
        #: (None = no admission control, the embedded/trusted default)
        self.admission = admission
        #: the database's observability hub: request IDs are minted here,
        #: at the edge where work enters the system (section 6's Executor)
        self.obs = getattr(database, "obs", None)
        if self.obs is not None and admission is not None:
            self.obs.register_admission(admission)
        self._session = None
        self._engine: Optional[OpalEngine] = None
        #: bounded ``(channel, seq)``-keyed replay window — every
        #: sequenced response is remembered here, so a delayed duplicate
        #: replays instead of re-applying even after intervening requests
        self.replay = ReplayWindow(replay_window)
        self.corrupt_frames = 0
        self.deadline_rejections = 0

    @property
    def replays(self) -> int:
        """Duplicates answered from the replay window."""
        return self.replay.replays

    def serve(self, gem_end: LinkEnd) -> int:
        """Process every buffered frame; returns how many were handled.

        The in-process link is synchronous: hosts write a frame, then
        call :meth:`serve` (or use :class:`HostConnection`, which does).
        The loop survives anything a frame can throw at it — only LOGOUT
        (or an empty buffer) ends it.
        """
        handled = 0
        while True:
            raw = gem_end.receive()
            if raw is None:
                return handled
            handled += 1
            response, frame_type = self._respond(raw)
            if response is None:
                continue  # damaged in transit: dropped, the host resends
            gem_end.send(response)
            if frame_type is FrameType.LOGOUT:
                return handled

    def _respond(self, raw: bytes) -> tuple[Optional[bytes], Optional[FrameType]]:
        """One request → (response bytes or None-to-drop, decoded type)."""
        try:
            frame = self.decode(raw)
        except LinkCorruption:
            return None, None  # damaged in transit: dropped, host resends
        except Exception as error:  # malformed at the source: worth answering
            return protocol.encode_error(type(error).__name__, str(error)), None
        cached = self.lookup_replay(frame)
        if cached is not None:
            return cached, frame.type
        response = self.gate(frame)
        request_id = None
        if response is None:
            response, request_id = self.apply(frame)
        return self.seal(frame, response, request_id), frame.type

    # -- the three request stages (shared with repro.frontdoor) -------------

    def decode(self, raw: bytes) -> Frame:
        """Decode one wire frame, counting transit damage before raising."""
        try:
            return protocol.decode_frame(raw)
        except LinkCorruption:
            self.corrupt_frames += 1
            if self.obs is not None:
                self.obs.registry.inc("executor.corrupt_frames")
            raise

    def lookup_replay(self, frame: Frame) -> Optional[bytes]:
        """The sealed response a duplicate should get, or None if fresh."""
        cached = self.replay.lookup(frame.channel, frame.seq)
        if cached is not None and self.obs is not None:
            obs = self.obs
            obs.registry.inc("executor.replays")
        return cached

    def apply(self, frame: Frame) -> tuple[bytes, Optional[int]]:
        """Execute one admitted frame → (response bytes, request id)."""
        obs = self.obs
        request_id = None
        if obs is not None:
            # the request ID is born here and rides the thread (and the
            # response envelope) through every layer the request touches
            request_id = obs.tracer.next_request_id()
            obs.tracer.current_request = request_id
            obs.registry.inc("executor.requests")
        try:
            if obs is not None and obs.tracer.enabled:
                with obs.tracer.span("executor.request", frame=frame.type.name):
                    response = self._guarded_handle(frame)
            else:
                response = self._guarded_handle(frame)
        finally:
            if obs is not None:
                obs.tracer.current_request = None
        return response, request_id

    def seal(
        self,
        frame: Frame,
        response: bytes,
        request_id: Optional[int] = None,
    ) -> bytes:
        """Envelope a response for *frame* and record it for replays."""
        if frame.seq is None:
            return response
        sealed = protocol.encode_seq(
            frame.seq, response, request_id=request_id, channel=frame.channel
        )
        self.replay.store(frame.channel, frame.seq, sealed)
        return sealed

    def _guarded_handle(self, frame: Frame) -> bytes:
        try:
            return self._handle(frame)
        except GemStoneError as error:
            return protocol.encode_error(type(error).__name__, str(error))
        except Exception as error:  # never let a request kill the serve loop
            return protocol.encode_error(type(error).__name__, str(error))

    def _handle(self, frame: Frame) -> bytes:
        if frame.type is FrameType.LOGIN:
            return self._login(frame.fields["user"], frame.fields["password"])
        if self._session is None:
            return protocol.encode_error("ProtocolError", "not logged in")
        if frame.type is FrameType.EXECUTE:
            return self._execute(frame.fields["source"])
        if frame.type is FrameType.COMMIT:
            try:
                tx_time = self._session.commit()
                self._note_outcome(failed=False)
                # an empty sharded transaction commits without a tx_time
                return protocol.encode_committed(tx_time if tx_time is not None else 0)
            except TransactionConflict:
                # contention, not system failure: the breaker stays shut
                return protocol.encode_simple(FrameType.CONFLICT)
            except StorageError as error:
                self._note_outcome(failed=True)
                return protocol.encode_error(type(error).__name__, str(error))
        if frame.type is FrameType.ABORT:
            self._session.abort()
            return protocol.encode_simple(FrameType.ABORTED)
        if frame.type is FrameType.LOGOUT:
            self.hangup()
            return protocol.encode_simple(FrameType.BYE)
        return protocol.encode_error(
            "ProtocolError", f"unexpected frame {frame.type.name}"
        )

    # -- admission ----------------------------------------------------------

    def gate(self, frame: Frame) -> Optional[bytes]:
        """Arrival-time load gates for one request; a frame means *refused*.

        Only EXECUTE and COMMIT cost real work, and only once a session
        exists; everything else passes.  The front door calls this when
        a request arrives and :meth:`deadline_frame` again when the
        request is dequeued — a deadline can expire while work queues.
        """
        if self.admission is None or self._session is None:
            return None
        if frame.type not in (FrameType.EXECUTE, FrameType.COMMIT):
            return None
        late = self.deadline_frame(frame)
        if late is not None:
            return late
        try:
            self.admission.admit_request()
        except OverloadedError as error:
            return protocol.encode_overloaded(error.retry_after)
        return None

    def deadline_frame(self, frame: Frame) -> Optional[bytes]:
        """A typed ``DeadlineExceeded`` frame if *frame* expired, else None.

        Never run a query whose client has given up: checked at arrival
        (inside :meth:`gate`) and re-checked by the front door at
        dequeue time, where queueing delay may have consumed the budget.
        """
        if self.admission is None or frame.deadline is None:
            return None
        if self.admission.clock.now <= frame.deadline:
            return None
        self.deadline_rejections += 1
        if self.obs is not None:
            self.obs.registry.inc("executor.deadline_rejections")
        return protocol.encode_error(
            "DeadlineExceeded",
            f"deadline {frame.deadline:.1f} passed at "
            f"{self.admission.clock.now:.1f}; not serving stale work",
        )

    def hangup(self) -> None:
        """Close the session and release its slot (LOGOUT or a dead link)."""
        if self._session is None:
            return
        self._session.close()
        self._session = None
        self._engine = None
        if self.admission is not None:
            self.admission.release_session()

    def _note_outcome(self, failed: bool) -> None:
        """Feed the circuit breaker with system-level outcomes."""
        if self.admission is None:
            return
        if failed:
            self.admission.record_failure()
        else:
            self.admission.record_success()

    def _login(self, user: str, password: str) -> bytes:
        if self.admission is not None:
            try:
                self.admission.admit_session()
            except OverloadedError as error:
                return protocol.encode_overloaded(error.retry_after)
        try:
            self._session = self.database.login(user, password)
        except GemStoneError as error:
            if self.admission is not None:
                self.admission.release_session()  # the slot never opened
            return protocol.encode_error(type(error).__name__, str(error))
        self._engine = self._session.engine
        return protocol.encode_login_ok(self._session.session.session_id)

    def _execute(self, source: str) -> bytes:
        try:
            value = self._session.execute(source)
        except StorageError as error:
            self._note_outcome(failed=True)
            return protocol.encode_error(type(error).__name__, str(error))
        except GemStoneError as error:
            return protocol.encode_error(type(error).__name__, str(error))
        self._note_outcome(failed=False)
        # the session renders its own display: a GemSession printStrings
        # through its object manager, a ShardedSession relays the wire
        # display its shard already produced
        display = self._session.display(value)
        return protocol.encode_result(value, display)


class HostConnection:
    """Host-side client: login, execute blocks of OPAL, commit, logout.

    *link_factory* builds the (host_end, gem_end) pair — pass
    :func:`~repro.faults.link.make_faulty_link` partials to interpose a
    lossy link.  Requests are sequence-numbered; missing responses are
    retried up to *max_attempts* times with a reconnect once the link
    looks dead, and the Executor's replay cache keeps the retries
    idempotent.
    """

    def __init__(
        self,
        database,
        link_factory: Callable[[], tuple] = make_link,
        max_attempts: int = 5,
        admission=None,
        overload_attempts: int = 8,
        request_deadline: Optional[float] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if overload_attempts < 1:
            raise ValueError("overload_attempts must be at least 1")
        self._link_factory = link_factory
        self.executor = Executor(database, admission=admission)
        self.admission = admission
        self.session_id: Optional[int] = None
        self.max_attempts = max_attempts
        #: OVERLOADED answers tolerated (each backed off) per request
        self.overload_attempts = overload_attempts
        #: clock units after "now" each request stays worth serving
        #: (None = no deadline attached)
        self.request_deadline = request_deadline
        self._seq = 0
        #: responses that arrived for *other* sequence numbers, keyed by
        #: seq — reordered delivery must correlate, never discard
        self._responses: dict[int, Frame] = {}
        self.retries = 0
        self.reconnects = 0
        self.overload_backoffs = 0
        self._connect()

    # -- link lifecycle -----------------------------------------------------

    def _connect(self) -> None:
        self.host_end, self._gem_end = self._link_factory()

    def reconnect(self) -> None:
        """Replace the link with a fresh one; the Gem session survives."""
        self.host_end.close()
        self._connect()
        self.reconnects += 1

    # -- request/response ---------------------------------------------------

    def _request(self, frame: bytes) -> Frame:
        """One logical request: round trips + typed overload backoff.

        An OVERLOADED answer is not a failure of the link, so it gets its
        own (bounded) retry loop: back off for the carried retry-after on
        the shared deterministic clock, then try again under a *new*
        sequence number — the shed request was never applied, so replay
        protection is not wanted.  Exhaustion surfaces as the typed,
        retryable :class:`~repro.errors.OverloadedError`.
        """
        retry_after = 0.0
        for _attempt in range(self.overload_attempts):
            response = self._round_trip(frame)
            if response.type is not FrameType.OVERLOADED:
                return response
            retry_after = response.fields["retry_after"]
            self.overload_backoffs += 1
            if self.admission is not None:
                self.admission.clock.advance(max(retry_after, 0.5))
        raise OverloadedError(
            f"still shedding after {self.overload_attempts} backoffs",
            retry_after=retry_after,
        )

    def _deadline(self) -> Optional[float]:
        if self.request_deadline is None or self.admission is None:
            return None
        return self.admission.clock.now + self.request_deadline

    def _round_trip(self, frame: bytes) -> Frame:
        self._seq += 1
        wrapped = protocol.encode_seq(self._seq, frame, deadline=self._deadline())
        for attempt in range(self.max_attempts):
            if attempt:
                self.retries += 1
                # first miss: resend on the same link (a dropped frame);
                # repeated misses or a closed peer: the link is dead
                if attempt > 1 or self.host_end.peer_closed:
                    self.reconnect()
            try:
                self.host_end.send(wrapped)
            except ProtocolError:
                self.reconnect()
                self.host_end.send(wrapped)
            if self._gem_end is not None:
                # in-memory links are half-duplex queues: pump the
                # server side ourselves; socket links (gem_end None)
                # have a live server on the far side of the wire
                self.executor.serve(self._gem_end)
            response = self._receive_matching(self._seq)
            if response is not None:
                return response
        raise LinkTimeout(
            f"no response to frame seq {self._seq} "
            f"after {self.max_attempts} attempts"
        )

    def _receive_matching(self, seq: int) -> Optional[Frame]:
        """The intact response for *seq*, correlating reordered arrivals.

        Responses are matched to requests by sequence number, never by
        arrival order: a response that belongs to a different seq —
        a delayed replay, or (under pipelining) a shed answer overtaking
        queued work — is *stashed* for its own requester instead of
        being discarded, so reordered delivery under
        :class:`~repro.faults.link.FaultyLink` cannot force a spurious
        timeout or reconnect.
        """
        stashed = self._responses.pop(seq, None)
        if stashed is not None:
            return stashed
        while True:
            try:
                raw = self.host_end.receive()
            except ProtocolError:
                return None  # truncated tail on a dying link: retry
            if raw is None:
                return None
            try:
                frame = protocol.decode_frame(raw)
            except ProtocolError:
                continue  # response damaged in transit: keep draining
            if frame.type is FrameType.HELLO_OK:
                continue  # unsequenced resume ack from a socket server
            if frame.seq is None or frame.seq == seq:
                return frame
            # another request's response, delivered out of order:
            # file it under its own seq (bounded; oldest forgotten)
            self._responses.setdefault(frame.seq, frame)
            while len(self._responses) > _RESPONSE_STASH_LIMIT:
                self._responses.pop(next(iter(self._responses)))

    @staticmethod
    def _typed_error(error_class: str, message: str) -> GemStoneError:
        """Rehydrate an ERROR frame into the matching typed exception.

        The class name travels on the wire; when it names a
        :class:`~repro.errors.GemStoneError` subclass constructible from
        a bare message, the host raises exactly that type — so client
        policy can catch :class:`~repro.errors.RetryableError` instead of
        string-matching.  A structured constructor the wire message
        cannot satisfy (budget/quota errors carry caps and meters) still
        yields the right *type*, built around the message alone: the
        taxonomy must survive the trip even when the details cannot.
        Unknown names degrade to the base class with the name folded
        into the message.
        """
        return protocol.rehydrate_error(error_class, message)

    def login(self, user: str, password: str) -> int:
        """Authenticate; returns the session id."""
        response = self._request(protocol.encode_login(user, password))
        if response.type is FrameType.ERROR:
            raise GemStoneError(response.fields["message"])
        self.session_id = response.fields["session_id"]
        return self.session_id

    def execute(self, source: str) -> tuple[Any, str]:
        """Run a block of OPAL; returns (wire value, display string).

        The wire value is an immediate or a
        :class:`~repro.core.values.Ref`; hosts dereference through
        further OPAL, as the paper's hosts did.
        """
        response = self._request(protocol.encode_execute(source))
        if response.type is FrameType.ERROR:
            raise self._typed_error(
                response.fields["error_class"], response.fields["message"]
            )
        return response.fields["value"], response.fields["display"]

    def commit(self) -> Optional[int]:
        """Commit; returns the transaction time, or None on conflict."""
        response = self._request(protocol.encode_simple(FrameType.COMMIT))
        if response.type is FrameType.CONFLICT:
            return None
        if response.type is FrameType.ERROR:
            raise self._typed_error(
                response.fields["error_class"], response.fields["message"]
            )
        return response.fields["tx_time"]

    def abort(self) -> None:
        """Abort the current transaction."""
        self._request(protocol.encode_simple(FrameType.ABORT))

    def logout(self) -> None:
        """End the session."""
        self._request(protocol.encode_simple(FrameType.LOGOUT))
        self.session_id = None
