"""The bounded ``(channel, seq)``-keyed replay window.

Exactly-once over a lossy link rests on one invariant: *a sequenced
request is applied at most once, and every resend of it is answered with
the original response*.  The Executor's first implementation kept only
the **last** sequenced request — enough for a strictly stop-and-wait
host, but wrong the moment frames can be reordered or pipelined: a
delayed duplicate of COMMIT ``n`` arriving after EXECUTE ``n+1`` no
longer matched the cached entry and was **applied a second time**.

:class:`ReplayWindow` is the fix, shared by every serving peer (the
Executor, the async front door, the shard RPC server): responses are
remembered per ``(channel, seq)`` key in a bounded FIFO window, so any
duplicate inside the window replays its cached response no matter how
many requests intervened.  The bound matters — a window must forget —
and it is safe because senders cap their in-flight pipeline: a duplicate
can only be ``window`` requests stale before the sender has already
accepted a response for it and will never resend.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

#: default responses remembered per link; senders must keep their
#: in-flight pipeline window comfortably below this
DEFAULT_WINDOW = 64


class ReplayWindow:
    """A bounded FIFO cache of sealed responses keyed by (channel, seq)."""

    __slots__ = ("capacity", "_responses", "replays")

    def __init__(self, capacity: int = DEFAULT_WINDOW) -> None:
        if capacity < 1:
            raise ValueError("replay window capacity must be at least 1")
        self.capacity = capacity
        self._responses: "OrderedDict[tuple[Optional[int], int], bytes]" = (
            OrderedDict()
        )
        #: duplicates answered from the window (lifetime total)
        self.replays = 0

    def lookup(self, channel: Optional[int], seq: Optional[int]) -> Optional[bytes]:
        """The cached response for a resend, or None for fresh work."""
        if seq is None:
            return None
        response = self._responses.get((channel, seq))
        if response is not None:
            self.replays += 1
        return response

    def store(self, channel: Optional[int], seq: Optional[int], response: bytes) -> None:
        """Remember *response* for duplicates of ``(channel, seq)``."""
        if seq is None:
            return
        self._responses[(channel, seq)] = response
        while len(self._responses) > self.capacity:
            self._responses.popitem(last=False)

    def __len__(self) -> int:
        return len(self._responses)
