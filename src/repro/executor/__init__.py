"""``repro.executor`` — sessions over a host link (section 6's Executor)."""

from .executor import Executor, HostConnection
from .link import LinkEnd, make_link
from .protocol import Frame, FrameType, decode_frame
from .replay import ReplayWindow

__all__ = [
    "Executor",
    "Frame",
    "FrameType",
    "HostConnection",
    "LinkEnd",
    "ReplayWindow",
    "decode_frame",
    "make_link",
]
