"""``repro.executor`` — sessions over a host link (section 6's Executor)."""

from .executor import Executor, HostConnection
from .link import LinkEnd, make_link
from .protocol import Frame, FrameType, decode_frame

__all__ = [
    "Executor",
    "Frame",
    "FrameType",
    "HostConnection",
    "LinkEnd",
    "decode_frame",
    "make_link",
]
