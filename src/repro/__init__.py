"""repro — "Making Smalltalk a Database System", reproduced in Python.

A working GemStone: the GSDM temporal object model, the STDM set
calculus/algebra with translation and directory-aware optimization, the
OPAL language (Smalltalk-80 + paths + time + declarative selects),
optimistic transactions over a track-based simulated disk with safe
writes, replication, authorization and archival — per Copeland & Maier,
SIGMOD 1984.

Quickstart::

    from repro import GemStone

    db = GemStone.create()
    with db.login() as session:
        session.execute("World!greeting := 'hello, GemStone'")
        session.commit()
        print(session.execute("World!greeting"))
"""

from .db import GemSession, GemStone
from .errors import GemStoneError
from .obs import Observability

__version__ = "1.0.0"

__all__ = [
    "GemSession", "GemStone", "GemStoneError", "Observability", "__version__",
]
