"""A multi-user order desk: concurrent clerks over the Executor link.

Three clerks take orders against a shared inventory through their own
host connections.  Optimistic validation picks winners; losers retry with
fresh transactions (the pattern every OCC application uses).  At the end
the books balance exactly, and the auditor replays the day from history.

Run:  python examples/order_desk.py
"""

import random

from repro import GemStone
from repro.executor import HostConnection


def open_shop(db: GemStone) -> None:
    session = db.login()
    session.execute("""
        Object subclass: #Item instVarNames: #(stock sold).
        Item compile: 'stock ^stock'.
        Item compile: 'sold ^sold ifNil: [0]'.
        Item compile: 'sell
            stock <= 0 ifTrue: [^false].
            stock := stock - 1.
            sold := self sold + 1.
            ^true'.
        World!inventory := Dictionary new.
        #('anvil' 'rope' 'tnt') do: [:name | | item |
            item := Item new. item at: 'stock' put: 10.
            World!inventory at: name put: item]
    """)
    session.commit()
    session.close()


def main() -> None:
    db = GemStone.create(track_count=16_384, track_size=2048)
    open_shop(db)

    rng = random.Random(7)
    items = ["anvil", "rope", "tnt"]
    clerks = {
        name: [rng.choice(items) for _ in range(12)]
        for name in ("wile", "road", "runner")
    }

    # interleave the clerks' order streams round-robin so their
    # transactions genuinely race on the same Item objects
    tallies = {name: {"sold": 0, "out_of_stock": 0, "retries": 0}
               for name in clerks}
    connections = {}
    for name in clerks:
        conn = HostConnection(db)
        conn.login("DataCurator", "swordfish")
        connections[name] = conn
    for round_index in range(12):
        for name, orders in clerks.items():
            item_name = orders[round_index]
            conn = connections[name]
            while True:
                sold, _ = conn.execute(
                    f"(World!inventory at: '{item_name}') sell"
                )
                if conn.commit() is not None:
                    key = "sold" if sold else "out_of_stock"
                    tallies[name][key] += 1
                    break
                tallies[name]["retries"] += 1
    for conn in connections.values():
        conn.logout()

    print("clerk tallies:")
    for name, tally in tallies.items():
        print(f"  {name:>7}: {tally}")

    audit = db.login()
    total_sold = audit.execute("""
        | n | n := 0.
        World!inventory keysAndValuesDo: [:k :item | n := n + item sold].
        n
    """)
    total_left = audit.execute("""
        | n | n := 0.
        World!inventory keysAndValuesDo: [:k :item | n := n + item stock].
        n
    """)
    sold_by_clerks = sum(t["sold"] for t in tallies.values())
    print(f"\nbooks: sold={total_sold}, left={total_left}, "
          f"sold+left={total_sold + total_left} (started with 30)")
    assert total_sold == sold_by_clerks, "every committed sale is on the books"
    assert total_sold + total_left == 30, "no phantom stock, no lost updates"

    # replay the day: anvil stock level after every transaction
    anvil = audit.resolve("inventory!anvil")
    print("\nanvil stock history (time: level):")
    history = audit.execute("a historyOf: 'stock'", {"a": anvil})
    print(" ", ", ".join(f"{t}:{v}" for t, v in history))


if __name__ == "__main__":
    main()
