"""A tour of the OPAL language: one language for everything.

Section 2F: the design goal is "a single language for data manipulation,
general computation and system commands" — no impedance mismatch.  This
tour runs schema definition, computation, collections, declarative
queries, paths, time and transaction control, all as blocks of OPAL
source sent over the Executor's host link (how the paper's hosts talked
to GemStone).

Run:  python examples/opal_tour.py
"""

from repro import GemStone
from repro.executor import HostConnection


def show(conn: HostConnection, title: str, source: str) -> None:
    value, display = conn.execute(source)
    print(f"--- {title}")
    for line in source.strip().splitlines():
        print(f"    {line.strip()}")
    print(f"  => {display}\n")


def main() -> None:
    db = GemStone.create()
    conn = HostConnection(db)
    conn.login("DataCurator", "swordfish")

    show(conn, "general computation", "| n | n := 0. 1 to: 100 do: [:i | n := n + i]. n")

    show(conn, "closures capture their context", """
        | makeAdder add5 |
        makeAdder := [:x | [:y | x + y]].
        add5 := makeAdder value: 5.
        add5 value: 37
    """)

    show(conn, "schema definition is just messages", """
        Object subclass: #Account instVarNames: #(owner balance).
        Account compile: 'owner: o owner := o'.
        Account compile: 'balance ^balance ifNil: [0]'.
        Account compile: 'deposit: amount balance := self balance + amount'.
        Account compile: 'withdraw: amount
            amount > self balance ifTrue: [^self error: ''overdrawn''].
            balance := self balance - amount'.
        Account name
    """)

    show(conn, "real-world changes as methods (section 2D)", """
        | a |
        a := Account new.
        a owner: 'Ellen'; deposit: 100; deposit: 50; withdraw: 30.
        World!account := a.
        a balance
    """)

    conn.commit()

    show(conn, "declarative selection over collections", """
        | accounts rich |
        accounts := Bag new.
        1 to: 10 do: [:i |
            accounts add: (Account new deposit: i * 100; yourself)].
        World!accounts := accounts.
        rich := accounts select: [:acc | acc!balance > 700].
        rich size
    """)

    show(conn, "paths read and write structures directly", """
        World!branch := Object new.
        World!branch!city := 'Portland'.
        World!branch!manager := Object new.
        World!branch!manager!name := 'Carter'.
        World!branch!manager!name
    """)

    t = conn.commit()
    print(f"(committed at transaction time {t})\n")

    show(conn, "system commands are messages too", "System time")

    conn.execute("World!branch!city := 'Seattle'")
    conn.commit()
    show(conn, "the past is a message away", f"World!branch!city @ {t}")
    show(conn, "... and the present", "World!branch!city")

    show(conn, "errors are values of the protocol, not crashes",
         "| ok | ok := true. ok")
    try:
        conn.execute("World!account withdraw: 999999")
    except Exception as error:
        print(f"--- an OPAL error crossed the link cleanly:\n  => {error}\n")

    conn.logout()
    print("logged out; the session workspace was discarded wholesale.")


if __name__ == "__main__":
    main()
