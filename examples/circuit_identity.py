"""Entity identity: two equal gates are still two gates (section 4.2).

"Thus, we can distinguish, say, two gates in a circuit that have all the
same characteristics, but are not physically the same gate.  The
distinction is most obvious during update, where if two objects share a
component, updates to that component through one object are visible in
the other object."

This example builds a small circuit where two NAND gates share one power
rail, shows identity vs structural equivalence, and demonstrates shared-
component update visibility — the things logical-pointer models make you
emulate with keys and joins.

Run:  python examples/circuit_identity.py
"""

from repro import GemStone


def main() -> None:
    db = GemStone.create()
    session = db.login()

    session.execute("""
        Object subclass: #PowerRail instVarNames: #(voltage).
        Object subclass: #Gate instVarNames: #(kind delayNs rail).
        Gate compile: 'kind ^kind'.
        Gate compile: 'rail ^rail'.
        Gate compile: 'voltage ^rail!voltage'
    """)

    session.execute("""
        | rail g1 g2 circuit |
        rail := PowerRail new.
        rail!voltage := 5.

        "two gates with ALL the same characteristics"
        g1 := Gate new.  g1!kind := #nand.  g1!delayNs := 12.  g1!rail := rail.
        g2 := Gate new.  g2!kind := #nand.  g2!delayNs := 12.  g2!rail := rail.

        circuit := Set new.
        circuit add: g1; add: g2.
        World!circuit := circuit.
        World!rail := rail
    """)
    session.commit()

    # Structural equivalence vs identity
    print("two gates in the circuit?      ",
          session.execute("World!circuit size"), "(identity keeps both)")
    g1, g2 = session.execute("World!circuit members")
    equivalent = (
        session.session.value_at(g1, "kind") == session.session.value_at(g2, "kind")
        and session.session.value_at(g1, "delayNs")
        == session.session.value_at(g2, "delayNs")
        and session.session.value_at(g1, "rail")
        == session.session.value_at(g2, "rail")
    )
    print("structurally equivalent?       ", equivalent)
    print("identical (same object)?       ",
          session.execute("a == b", {"a": g1, "b": g2}))

    # Shared component: updating the rail through one gate is visible
    # through the other — no logical pointers, no keys, no joins.
    print("\nvoltages before brown-out:     ",
          [session.execute("g voltage", {"g": g}) for g in (g1, g2)])
    session.execute("g rail at: 'voltage' put: 3", {"g": g1})
    print("after updating through gate 1: ",
          [session.execute("g voltage", {"g": g}) for g in (g1, g2)])
    session.commit()

    # The relational alternative (the paper's complaint): gates would
    # carry a rail *key*, and renaming/re-keying the rail breaks them.
    # Here the rail can change every attribute and identity holds:
    session.execute("World!rail at: 'voltage' put: 5. "
                    "World!rail at: 'label' put: 'VCC-main'")
    session.commit()
    print("\nrail gained a label; gates still see it:",
          session.execute("g rail at: 'label'", {"g": g2}))

    # And history composes with identity: the brown-out is in the record.
    print("\nvoltage history of the shared rail:")
    for time, value in session.execute("World!rail historyOf: 'voltage'"):
        print(f"  time {time}: {value}V")


if __name__ == "__main__":
    main()
