"""Section 5.2: set-valued attributes vs relational flattening.

The paper's Robert Peters example: a set of children is one entity in
STDM, but must flatten into three tuples relationally — repeating the
scalar values, losing the set as an object, and making set operations
(like subset) awkward.

This example shows both encodings side by side using the STDM layer,
then the same data living in the database with full entity identity.

Run:  python examples/children_encoding.py
"""

from repro import GemStone
from repro.stdm import (
    LabeledSet,
    flatten_set_valued,
    format_set,
    materialize,
    relation_to_set,
    snapshot,
    unflatten_to_sets,
)


def main() -> None:
    # --- the paper's structures, verbatim --------------------------------
    robert = LabeledSet.from_nested({
        "Name": {"First": "Robert", "Last": "Peters"},
        "Children": ["Olivia", "Dale", "Paul"],
    })
    print("STDM entity (one object, children are a set):")
    print(" ", format_set(robert))

    attrs, rows = flatten_set_valued(
        [robert], ["Name!First", "Name!Last"], "Children", "Child"
    )
    print("\nrelational flattening (the paper's three-tuple table):")
    print(f"  {attrs[0]:<10} {attrs[1]:<10} {attrs[2]}")
    for row in rows:
        print(f"  {row[0]:<10} {row[1]:<10} {row[2]}")
    print("  -> the scalar values repeat; 'the set of children does not"
          " exist anywhere as a single object'")

    rebuilt = unflatten_to_sets(attrs, rows, ["First", "Last"], "Child",
                                "Children")
    print("\nun-flattened back into an entity:", format_set(rebuilt[0]))

    # the relation {A,B,C} example, also from section 5.2
    relation = relation_to_set(["A", "B", "C"], [(1, 3, 4), (1, 5, 4)])
    print("\na relation as an STDM set:", format_set(relation))

    # --- the same data in the database, with identity --------------------
    db = GemStone.create()
    session = db.login()
    # materialize as Bag instances so the collection protocol applies
    person = materialize(session.session, robert, class_name="Bag")
    session.assign("robert", person)
    session.commit()

    print("\nin GemStone: children is one object with identity "
          f"(oid {session.resolve('robert!Children').oid})")

    # subset is one construct, not two relational quantifiers:
    session.execute("""
        | wanted |
        wanted := Set new. wanted add: 'Olivia'; add: 'Dale'.
        World!favorites := wanted
    """)
    subset = session.execute(
        "World!favorites allSatisfy: [:c | World!robert!Children includes: c]"
    )
    print("favorites ⊆ children?", subset)

    # snapshot the database object back to pure STDM form:
    print("\nround trip through the store:",
          format_set(snapshot(session.session, person)))


if __name__ == "__main__":
    main()
