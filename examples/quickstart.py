"""Quickstart: create a database, define a class, query, time-travel.

Run:  python examples/quickstart.py
"""

from repro import GemStone


def main() -> None:
    # Format a fresh database on a simulated track-based disk.
    db = GemStone.create()
    session = db.login()

    # Everything — schema, data, queries, system commands — is one
    # language: blocks of OPAL (Smalltalk-80 + paths + time).
    session.execute("""
        Object subclass: #Employee instVarNames: #(name salary depts).
        Employee compile: 'name ^name'.
        Employee compile: 'name: aName name := aName'.
        Employee compile: 'salary ^salary'.
        Employee compile: 'salary: aSalary salary := aSalary'.
        Employee compile: 'raise: amount salary := salary + amount'
    """)

    session.execute("""
        | emps e |
        emps := Set new.
        #('Burns' 'Peters' 'Carter') do: [:last |
            e := Employee new.
            e name: last.
            e salary: 24000.
            emps add: e].
        World!employees := emps
    """)
    t_hired = session.commit()
    print(f"hired 3 employees at transaction time {t_hired}")

    # Give Burns a raise; each commit is a new database state.
    session.execute("""
        | burns |
        burns := World!employees detect: [:e | e name = 'Burns'].
        burns raise: 5000
    """)
    t_raise = session.commit()
    print(f"raise committed at time {t_raise}")

    # Declarative selection (translated to set calculus internally).
    rich = session.execute(
        "(World!employees select: [:e | e!salary > 24000]) size"
    )
    print(f"employees above 24000 now: {rich}")

    # Time travel: dial the session to the state before the raise.
    session.execute(f"System timeDial: {t_hired}")
    rich_then = session.execute(
        "(World!employees select: [:e | e!salary > 24000]) size"
    )
    print(f"employees above 24000 at time {t_hired}: {rich_then}")
    session.execute("System timeDial: nil")

    # Paths with @time reach past states without moving the dial.
    burns_salary_then = session.execute(f"""
        | burns |
        burns := World!employees detect: [:e | e name = 'Burns'].
        burns!salary @ {t_hired}
    """)
    print(f"Burns' salary at time {t_hired}: {burns_salary_then}")

    # The database survives a crash + reopen: safe writes guarantee it.
    reopened = GemStone.open(db.disk)
    s2 = reopened.login()
    print("after reopen:", s2.execute("(World!employees detect: [:e | e name = 'Burns']) salary"))

    print("storage:", reopened.storage_report())


if __name__ == "__main__":
    main()
