"""Figure 1 of the paper, replayed exactly: "A Database with History".

Acme Corp's presidents, employees and cities change over transaction
times 2..9; the script then runs the paper's three example queries:

    World!'Acme Corp'!'president'
    World!'Acme Corp'!'president'@10
    World!'Acme Corp'!'president'@7!city      -> 'San Diego'

Run:  python examples/acme_history.py
"""

from repro import GemStone


def build_figure1(db: GemStone):
    """Replay the Figure 1 event script, one commit per time step."""
    session = db.login()
    clock = db.transaction_manager.clock

    def commit_at(expected_time: int) -> None:
        # pad the clock so commits land on the figure's exact times
        while clock.latest < expected_time - 1:
            clock.assign()
        actual = session.commit()
        assert actual == expected_time, (actual, expected_time)

    # time 2: Acme exists; Ayn Rand is employee 1821, living in Portland
    session.execute("""
        | acme ayn |
        acme := Object new.
        ayn := Object new.
        World!'Acme Corp' := acme.
        acme!1821 := ayn.
        ayn!name := 'Ayn Rand'.
        ayn!city := 'Portland'
    """)
    commit_at(2)

    # time 5: Ayn becomes president; Milton works in Seattle
    session.execute("""
        | milton |
        milton := Object new.
        milton!name := 'Milton Friedman'.
        milton!city := 'Seattle'.
        World!'Acme Corp'!president := World!'Acme Corp'!1821.
        World!milton := milton
    """)
    commit_at(5)

    # time 8: Milton becomes president and moves to Portland;
    #         Ayn leaves the company (her element becomes nil)
    session.execute("""
        World!'Acme Corp'!president := World!milton.
        World!milton!city := 'Portland'.
        (World!'Acme Corp') removeKey: 1821
    """)
    commit_at(8)

    # time 9: Ayn, no longer an employee, moves to San Diego
    session.execute("""
        (World!'Acme Corp'!president @ 7) at: 'city' put: 'San Diego'
    """)
    commit_at(9)

    return session


def main() -> None:
    db = GemStone.create()
    session = build_figure1(db)

    print("Figure 1 replayed. The paper's queries:")
    current = session.execute("World!'Acme Corp'!president!name")
    print(f"  current president:            {current}")

    at_10 = session.execute("World!'Acme Corp'!president @ 10")
    print(f"  president@10:                 {session.execute('x!name', {'x': at_10})}")

    previous = session.execute("World!'Acme Corp'!president @ 7 !name")
    print(f"  president@7 (previous):       {previous}")

    city = session.execute("World!'Acme Corp'!president @ 7 !city")
    print(f"  president@7's current city:   {city}   (paper: San Diego)")

    # The departed employee reads as nil now, but exists in history.
    now_1821 = session.execute("World!'Acme Corp'!1821")
    then_1821 = session.execute("World!'Acme Corp'!1821 @ 7 !name")
    print(f"  employee 1821 now: {now_1821}, at time 7: {then_1821}")

    # Full element history, the audit view deletion would have destroyed:
    acme = session.resolve("'Acme Corp'")
    print("  history of the president element:")
    for time, value in session.execute("acme historyOf: 'president'",
                                       {"acme": acme}):
        name = session.execute("p!name", {"p": value}) if value else "—"
        print(f"    time {time}: {name}")


if __name__ == "__main__":
    main()
