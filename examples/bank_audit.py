"""History replaces deletion: a bank audit (section 2E).

"Deletion was invented as a means of reusing expensive on-line computer
storage ... A temporal data model replaces deletion by maintaining
object history."  This example runs a small bank: accounts open and
close, balances change, two tellers conflict optimistically — and then
an auditor reads any past state without any log-replay machinery,
including through SafeTime while writers are active.

Run:  python examples/bank_audit.py
"""

from repro import GemStone
from repro.errors import TransactionConflict


def main() -> None:
    db = GemStone.create()
    setup = db.login()
    setup.execute("""
        Object subclass: #Account instVarNames: #(owner balance).
        Account compile: 'owner: o owner := o'.
        Account compile: 'owner ^owner'.
        Account compile: 'balance ^balance ifNil: [0]'.
        Account compile: 'deposit: amount balance := self balance + amount'.
        World!bank := Dictionary new
    """)
    setup.commit()

    # --- business as usual: every commit is a retained state -------------
    timestamps = {}
    setup.execute("""
        | a | a := Account new. a owner: 'Ellen'. a deposit: 1000.
        World!bank at: 'ELN-1' put: a
    """)
    timestamps["ellen opens"] = setup.commit()

    setup.execute("""
        | a | a := Account new. a owner: 'Robert'. a deposit: 500.
        World!bank at: 'ROB-1' put: a
    """)
    timestamps["robert opens"] = setup.commit()

    setup.execute("(World!bank at: 'ELN-1') deposit: 250")
    timestamps["ellen deposits"] = setup.commit()

    # closing an account is a nil binding, not destruction
    setup.execute("World!bank removeKey: 'ROB-1'")
    timestamps["robert closes"] = setup.commit()

    # --- two tellers race; optimistic validation picks one ---------------
    teller_a, teller_b = db.login(), db.login()
    for teller in (teller_a, teller_b):
        teller.execute(
            "| a | a := World!bank at: 'ELN-1'. a deposit: 10"
        )
    teller_a.commit()
    try:
        teller_b.commit()
        outcome = "both committed (unexpected)"
    except TransactionConflict:
        outcome = "teller B aborted and would retry"
    timestamps["tellers race"] = db.store.last_tx_time
    print(f"optimistic concurrency: {outcome}")

    # --- the audit --------------------------------------------------------
    auditor = db.login()
    print("\naudit of ELN-1 balance across the company's history:")
    for label, t in timestamps.items():
        auditor.execute(f"System timeDial: {t}")
        balance = auditor.execute(
            "(World!bank at: 'ELN-1' ifAbsent: [nil]) "
            "ifNil: [0] ifNotNil: [:a | a balance]"
        )
        accounts = auditor.execute("World!bank size")
        print(f"  time {t:>2} ({label:<15}): balance={balance:>5}, "
              f"open accounts={accounts}")
    auditor.execute("System timeDial: nil")

    # Robert's account still exists as an entity; only its membership
    # in the bank ended.  Its whole history is queryable:
    t_open = timestamps["robert opens"]
    robert = auditor.execute("World!bank at: 'ROB-1' ifAbsent: [nil]")
    assert robert is None
    robert_then = auditor.execute(
        f"| b | b := World!bank. b!'ROB-1' @ {t_open}"
    )
    print(f"\nrobert's closed account, recovered from time {t_open}: "
          f"owner={auditor.execute('a owner', {'a': robert_then})}")

    # SafeTime: a consistent read while a writer is mid-transaction
    writer = db.login()
    writer.execute("(World!bank at: 'ELN-1') deposit: 999999")  # uncommitted
    safe = auditor.execute("System dialSafeTime")
    balance = auditor.execute("(World!bank at: 'ELN-1') balance")
    print(f"\nSafeTime={safe}: auditor sees {balance} while a writer has "
          "an uncommitted 999999 deposit")
    writer.abort()


if __name__ == "__main__":
    main()
