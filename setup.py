"""Legacy setup shim: enables `python setup.py develop` on environments
without the `wheel` package (PEP 660 editable installs need it)."""

from setuptools import setup

setup()
