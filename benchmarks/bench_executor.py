"""E14 — the Executor: blocks of OPAL over the host link (section 6).

"Communication with GemStone is done in blocks of OPAL source code.
Compilation and execution of those blocks is done entirely in the
GemStone system."

The harness measures round-trip cost as block size grows, and the win of
batching many statements into one block versus one round trip each —
the design point of shipping source blocks rather than chatty calls.

Run the harness:   python benchmarks/bench_executor.py
Run the timings:   pytest benchmarks/bench_executor.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table, ratio, stopwatch
from repro.executor import HostConnection


@pytest.fixture(scope="module")
def conn():
    db = GemStone.create(track_count=8192, track_size=2048)
    connection = HostConnection(db)
    connection.login("DataCurator", "swordfish")
    return connection


def batched_block(statements: int) -> str:
    lines = ["| t |", "t := 0."]
    lines += [f"t := t + {i}." for i in range(1, statements + 1)]
    lines += ["t"]
    return "\n".join(lines)


def test_round_trip_correctness(conn):
    value, display = conn.execute("6 * 7")
    assert value == 42
    assert display == "42"


def test_batched_block_equals_chatty_result(conn):
    n = 50
    batched, _ = conn.execute(batched_block(n))
    conn.execute("World!t := 0")
    for i in range(1, n + 1):
        conn.execute(f"World!t := World!t + {i}")
    chatty, _ = conn.execute("World!t")
    assert batched == chatty == n * (n + 1) // 2


def test_compilation_happens_inside_gemstone(conn):
    """The host never parses OPAL; a syntax error is a returned frame."""
    from repro import GemStoneError

    with pytest.raises(GemStoneError):
        conn.execute("this is not OPAL ::=")
    value, _ = conn.execute("1 + 1")  # link and session still healthy
    assert value == 2


def test_bench_small_round_trip(conn, benchmark):
    benchmark(conn.execute, "3 + 4")


def test_bench_large_block_round_trip(conn, benchmark):
    block = batched_block(200)
    benchmark(conn.execute, block)


def test_bench_wire_framing_only(benchmark):
    from repro.executor import make_link

    host, gem = make_link()
    payload = b"x" * 1024

    def frame_round_trip():
        host.send(payload)
        data = gem.receive()
        gem.send(data)
        return host.receive()

    assert benchmark(frame_round_trip) == payload


def main() -> None:
    db = GemStone.create(track_count=8192, track_size=2048)
    conn = HostConnection(db)
    conn.login("DataCurator", "swordfish")

    sizes = Table("E14: round-trip cost vs block size",
                  ["statements in block", "block bytes", "round trip (ms)"])
    for statements in (1, 10, 100, 500):
        block = batched_block(statements)
        timing = stopwatch(lambda b=block: conn.execute(b), 3)
        sizes.add(statements, len(block), timing.millis)
    sizes.show()

    n = 100
    batched = stopwatch(lambda: conn.execute(batched_block(n)), 3)

    def chatty():
        conn.execute("World!t := 0")
        for i in range(1, n + 1):
            conn.execute(f"World!t := World!t + {i}")
        return conn.execute("World!t")

    chatty_timing = stopwatch(chatty, 3)
    batch = Table("E14: one block vs one round trip per statement (100 stmts)",
                  ["strategy", "time (ms)", "frames"])
    batch.add("one batched block", batched.millis, 2)
    batch.add("chatty (per statement)", chatty_timing.millis, (n + 2) * 2)
    batch.note(f"batching wins {ratio(chatty_timing.seconds, batched.seconds)} "
               "— why GemStone ships source blocks")
    batch.show()


if __name__ == "__main__":
    main()
