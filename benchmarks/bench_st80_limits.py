"""E6 — ST80's limits removed (section 4.3).

"Only 32K objects are allowed in most implementations, and the maximum
size for an object is 64K bytes."  GemStone's design goal B: "only the
size of secondary storage should impose size limits on data items."

The harness creates more than 32K objects and a single object far beyond
64KB, commits both, and reads them back from disk — the Boxer fragments
the large record across tracks.

Run the harness:   python benchmarks/bench_st80_limits.py
Run the timings:   pytest benchmarks/bench_st80_limits.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table, stopwatch
from repro.core import MemoryObjectManager

ST80_OBJECT_LIMIT = 32 * 1024
ST80_SIZE_LIMIT = 64 * 1024


def test_more_than_32k_objects_in_memory():
    om = MemoryObjectManager()
    base = om.object_count()
    for _ in range(ST80_OBJECT_LIMIT + 100):
        om.instantiate("Object")
    assert om.object_count() - base > ST80_OBJECT_LIMIT


def test_object_larger_than_64kb_survives_commit():
    db = GemStone.create(track_count=8192, track_size=4096)
    session = db.login()
    document = "paragraph " * (ST80_SIZE_LIMIT // 8)  # ~80KB of text
    assert len(document) > ST80_SIZE_LIMIT
    obj = session.new("Object", text=document)
    session.assign("document", obj)
    session.commit()
    # cold read through the Boxer's fragment chain
    db.store.cache.flush()
    assert session.resolve("document!text") == document
    # it genuinely spans tracks
    location = db.store.table.get(obj.oid)
    assert len(location.tracks) > 1


def test_many_objects_through_full_pipeline():
    db = GemStone.create(track_count=8192, track_size=4096)
    session = db.login()
    group = session.new("Bag")
    for index in range(2_000):
        member = session.new("Object", i=index)
        session.session.bind(group, session.session.new_alias(), member)
    session.assign("crowd", group)
    session.commit()
    assert session.execute("World!crowd size") == 2_000


def test_bench_creating_objects(benchmark):
    def create_batch():
        om = MemoryObjectManager()
        for _ in range(5_000):
            om.instantiate("Object")
        return om.object_count()

    assert benchmark(create_batch) >= 5_000


def test_bench_large_object_commit(benchmark):
    # bounded rounds: objects are never garbage-collected (section 6),
    # so every round's 128KB document stays on disk forever
    db = GemStone.create(track_count=65_536, track_size=4096)
    session = db.login()
    document = "x" * (128 * 1024)

    def write_large():
        obj = session.new("Object", text=document)
        session.assign("doc", obj)
        return session.commit()

    benchmark.pedantic(write_large, rounds=15, iterations=1)


def main() -> None:
    table = Table("E6: ST80 limits vs this system",
                  ["limit", "ST80", "measured here"])

    om = MemoryObjectManager()
    timing = stopwatch(lambda: [om.instantiate("Object")
                                for _ in range(ST80_OBJECT_LIMIT + 1000)])
    table.add("objects in one image", f"{ST80_OBJECT_LIMIT:,}",
              f"{om.object_count():,} (in {timing.millis:.0f} ms, unbounded)")

    db = GemStone.create(track_count=8192, track_size=4096)
    session = db.login()
    document = "paragraph " * 32_768  # ~320KB
    obj = session.new("Object", text=document)
    session.assign("document", obj)
    session.commit()
    tracks = len(db.store.table.get(obj.oid).tracks)
    table.add("max object size", f"{ST80_SIZE_LIMIT:,} bytes",
              f"{len(document):,} bytes ({tracks} tracks; disk-limited)")

    db.store.cache.flush()
    cold = stopwatch(lambda: session.resolve("document!text"))
    table.add("cold read of that object", "n/a", f"{cold.millis:.1f} ms")
    table.show()


if __name__ == "__main__":
    main()
