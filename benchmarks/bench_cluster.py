"""The distributed cluster: socket round trips and process scale-out.

Two measurements of what `repro.net` + `repro.shard.procs` cost and
buy (`docs/networking.md`):

1. **Socket RTT** — one synchronous host round trip (a tiny OPAL
   statement) over a real localhost TCP connection to a served front
   door, reported as p50/p99 milliseconds.  This is the per-request
   tax the paper's host↔GemStone channel pays once the link is a
   kernel socket instead of an in-memory pipe.
2. **Multiprocess commit throughput, 1→4 workers** — a preloaded
   catalog is partitioned across N worker *processes* (each on its own
   `FileDisk` platter, every frame crossing TCP), and one driver
   thread per shard commits single-shard transactions against its own
   worker.  Throughput must rise monotonically from one worker to
   four: each worker persists a store 1/N the size, and N workers
   overlap their commit work in separate processes.

Run the experiment:  python benchmarks/bench_cluster.py
CI smoke subset:     python benchmarks/bench_cluster.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import threading
import time

from repro.bench import Table
from repro.db import GemStone
from repro.frontdoor.server import FrontDoor
from repro.net import TcpHostConnection, serve_frontdoor, server_port
from repro.shard.partition import shard_of
from repro.shard.procs import ProcCluster

FULL = dict(rtt_samples=400, preload=600, commits=50,
            shard_counts=(1, 2, 4), repeats=3)
SMOKE = dict(rtt_samples=120, preload=400, commits=30,
             shard_counts=(1, 2, 4), repeats=3)

#: neighbouring worker counts must not regress beyond timer jitter
_TOLERANCE = 0.95


# -- socket round trips ----------------------------------------------------


class _ServedDoor:
    """A front door listening on localhost from its own loop thread."""

    def __init__(self) -> None:
        self.database = GemStone.create(track_count=2_048, track_size=1024)
        self.door = FrontDoor(self.database)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        self._thread.start()
        self.server = asyncio.run_coroutine_threadsafe(
            serve_frontdoor(self.door), self._loop
        ).result(5)
        self.port = server_port(self.server)

    def close(self) -> None:
        async def _shutdown():
            self.server.close()
            await self.server.wait_closed()
            await self.door.close()

        asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(5)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(5)
        self._loop.close()


def measure_rtt(samples: int) -> dict[str, float]:
    """Per-request wall times for a minimal statement over TCP."""
    served = _ServedDoor()
    try:
        connection = TcpHostConnection("127.0.0.1", served.port)
        connection.login("DataCurator", "swordfish")
        connection.execute("1 + 1")  # warm the session and the path
        times = []
        for _ in range(samples):
            start = time.perf_counter()
            connection.execute("1 + 1")
            times.append((time.perf_counter() - start) * 1000.0)
        connection.logout()
        connection.close()
    finally:
        served.close()
    times.sort()
    return {
        "p50": times[len(times) // 2],
        "p99": times[min(len(times) - 1, int(len(times) * 0.99))],
        "mean": sum(times) / len(times),
        "samples": float(samples),
    }


# -- multiprocess commit throughput ----------------------------------------


def _keys_for_shard(shard_id: int, shards: int, count: int,
                    prefix: str) -> list[str]:
    """*count* keys that all route to *shard_id* under *shards* workers."""
    keys, probe = [], 0
    while len(keys) < count:
        key = f"{prefix}{probe}"
        if shard_of(key, shards) == shard_id:
            keys.append(key)
        probe += 1
    return keys


def measure_once(shards: int, preload: int, commits: int) -> float:
    """Single-shard commits/s: one driver thread per worker process."""
    cluster = ProcCluster(shard_count=shards)
    try:
        loader = cluster.login()
        for i in range(preload):
            loader.execute(f"World!p{i} := {i}")
            if i % 20 == 19:
                loader.commit()
        loader.commit()

        sessions = [cluster.login() for _ in range(shards)]
        key_sets = [
            _keys_for_shard(s, shards, commits, f"m{s}x")
            for s in range(shards)
        ]
        errors: list[BaseException] = []

        def drive(shard_id: int) -> None:
            session, keys = sessions[shard_id], key_sets[shard_id]
            try:
                for j, key in enumerate(keys):
                    session.execute(f"World!{key} := {j}")
                    session.commit()
            except BaseException as error:  # surfaced after the join
                errors.append(error)

        threads = [
            threading.Thread(target=drive, args=(s,)) for s in range(shards)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        return shards * commits / elapsed
    finally:
        cluster.close()


def measure(shards: int, preload: int, commits: int, repeats: int) -> float:
    """Best of *repeats* fresh clusters — the least-interfered-with run."""
    return max(
        measure_once(shards, preload, commits) for _ in range(repeats)
    )


def run_scale(preload: int, commits: int, shard_counts,
              repeats: int) -> dict[int, float]:
    return {
        shards: measure(shards, preload, commits, repeats)
        for shards in shard_counts
    }


def check_monotone(throughput: dict[int, float]) -> None:
    counts = sorted(throughput)
    for previous, current in zip(counts, counts[1:]):
        assert throughput[current] >= throughput[previous] * _TOLERANCE, (
            f"throughput regressed {previous}→{current} workers: "
            f"{throughput[previous]:.0f} → {throughput[current]:.0f} commits/s"
        )
    assert throughput[counts[-1]] > throughput[counts[0]], (
        "process scale-out bought nothing: "
        f"{throughput[counts[0]]:.0f} commits/s at {counts[0]} worker(s) vs "
        f"{throughput[counts[-1]]:.0f} at {counts[-1]}"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration")
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)

    rtt = measure_rtt(params.pop("rtt_samples"))
    rtt_table = Table(
        f"socket round trip, localhost TCP "
        f"({int(rtt['samples'])} samples)",
        ["quantile", "ms"],
    )
    rtt_table.add("p50", f"{rtt['p50']:.3f}")
    rtt_table.add("p99", f"{rtt['p99']:.3f}")
    rtt_table.add("mean", f"{rtt['mean']:.3f}")
    rtt_table.note("one SEQ envelope each way through the framer, the "
                   "HELLO-bound session executor, and back")
    rtt_table.show()

    throughput = run_scale(**params)
    counts = sorted(throughput)
    base = throughput[counts[0]]
    table = Table(
        f"commit throughput vs worker processes "
        f"({params['preload']}-binding catalog, "
        f"{params['commits']} commits per worker, TCP + FileDisk)",
        ["workers", "commits/s", "speedup vs 1"],
    )
    for shards in counts:
        table.add(shards, f"{throughput[shards]:.0f}",
                  f"{throughput[shards] / base:.2f}x")
    table.note("each worker process persists a catalog 1/N the size "
               "and commits overlap across processes")
    table.show()
    check_monotone(throughput)
    return {
        "rtt_ms_p50": round(rtt["p50"], 3),
        "rtt_ms_p99": round(rtt["p99"], 3),
        "proc_throughput": {
            str(shards): round(throughput[shards], 1) for shards in counts
        },
        "ablations": [{
            "name": "proc_scale_out",
            "speedup": round(throughput[counts[-1]] / base, 3),
        }],
    }


if __name__ == "__main__":
    main()
