"""Check soak: every oracle in ``repro.check`` over a pinned seed range.

One call to :func:`repro.check.run_soak` per seed runs the differential
oracle (reference vs uncached vs memoized vs optimized vs vectorized
plans), the temporal oracle (random histories vs a brute-force shadow),
and the OCC schedule explorer (sampled interleavings replayed serially).
The smoke configuration alone pushes 1000+ generated queries through all
five evaluation paths; any divergence aborts the run with a
copy-pasteable ``python -m repro.check`` reproducer.

Each seed's soak is then re-run from scratch and must produce an
identical digest — the whole harness is a pure function of its seed.

Run the harness:   python benchmarks/bench_check_soak.py
CI smoke subset:   python benchmarks/bench_check_soak.py --smoke
Extended range:    python benchmarks/bench_check_soak.py --seeds 8
Reseed the soak:   python benchmarks/bench_check_soak.py --seed 7
Run as tests:      pytest benchmarks/bench_check_soak.py
"""

import argparse

from repro.bench import Table
from repro.check import run_soak

#: the full soak widens every oracle and sweeps more seeds by default
FULL = dict(diff_cases=400, queries_per_case=3, temporal_cases=30,
            schedule_cases=12)
#: smoke still clears the 1000-query floor: 350 cases x 3 queries
SMOKE = dict(diff_cases=350, queries_per_case=3, temporal_cases=10,
             schedule_cases=6)


def soak_once(seed, params):
    return run_soak(seed, **params)


def test_smoke_soak_is_clean():
    metrics = soak_once(2026, SMOKE)
    assert metrics["problems"] == 0
    assert metrics["diff_queries"] >= 1000


def test_smoke_soak_is_deterministic():
    params = dict(SMOKE, diff_cases=30, temporal_cases=4, schedule_cases=3)
    assert soak_once(2026, params)["digest"] == soak_once(2026, params)["digest"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration")
    parser.add_argument("--seed", type=int, default=2026,
                        help="first seed of the soak range")
    parser.add_argument("--seeds", type=int, default=None,
                        help="how many consecutive seeds to soak "
                             "(default: 1 smoke, 3 full)")
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)
    n_seeds = args.seeds if args.seeds is not None else (1 if args.smoke else 3)

    table = Table(
        f"check soak: {n_seeds} seed(s) x "
        f"{params['diff_cases']}x{params['queries_per_case']} queries, "
        f"{params['temporal_cases']} histories, "
        f"{params['schedule_cases']} schedules",
        ["seed", "queries", "evaluations", "memo hits", "reads", "clamps",
         "commits", "aborts", "digest"],
    )
    totals = dict(queries=0, evaluations=0, reads=0, commits=0, problems=0)
    for seed in range(args.seed, args.seed + n_seeds):
        metrics = soak_once(seed, params)
        rerun = soak_once(seed, params)
        assert metrics["digest"] == rerun["digest"], (
            f"seed {seed}: soak digest changed between identical runs"
        )
        table.add(
            seed, metrics["diff_queries"], metrics["diff_evaluations"],
            metrics["diff_memo_hits"], metrics["temporal_reads"],
            metrics["temporal_clamps"],
            metrics["temporal_commits"] + metrics["schedule_commits"],
            metrics["schedule_aborts"], metrics["digest"][:12],
        )
        totals["queries"] += metrics["diff_queries"]
        totals["evaluations"] += metrics["diff_evaluations"]
        totals["reads"] += metrics["temporal_reads"]
        totals["commits"] += metrics["temporal_commits"]
        totals["problems"] += metrics["problems"]
    table.note("five evaluation paths per query (reference, uncached, "
               "memoized, optimized, vectorized) must agree exactly; every "
               "seed is re-soaked and must reproduce its digest")
    table.show()

    assert totals["problems"] == 0
    assert totals["queries"] >= 1000, "soak below the 1000-query floor"
    return dict(totals, seeds=n_seeds)


if __name__ == "__main__":
    main()
