"""E9 — directories: associative access, including into past states.

Section 6: "The Directory Manager creates and maintains directories.
Directories use standard techniques modified to handle object
histories."  Sections 4.3/6 claim the declarative language gives the
latitude to exploit them.

The harness compares scan vs directory plans as the set grows, and runs
the same indexed query against a past state after the members were
re-keyed — exercising the interval-stamped entries.

Run the harness:   python benchmarks/bench_directories.py
Run the timings:   pytest benchmarks/bench_directories.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table, employee_database, ratio, stopwatch


def build(count: int, indexed: bool):
    db = GemStone.create(track_count=16_384, track_size=4096)
    emps = employee_database(db, count)
    directory = db.create_directory(emps, "salary") if indexed else None
    session = db.login()
    return db, session, directory


QUERY = "(World!employees select: [:e | e!salary > 90000]) size"


@pytest.fixture(scope="module")
def indexed_db():
    return build(1_000, indexed=True)


@pytest.fixture(scope="module")
def scan_db():
    return build(1_000, indexed=False)


def test_same_answer_with_and_without_directory(indexed_db, scan_db):
    _db, indexed_session, directory = indexed_db
    _db2, scan_session, _ = scan_db
    a = indexed_session.execute(QUERY)
    b = scan_session.execute(QUERY)
    assert a == b > 0
    assert directory.lookups >= 1


def test_directory_answers_past_states(indexed_db):
    db, session, directory = indexed_db
    t_before = db.store.last_tx_time
    # re-key a known employee far upward
    victim = session.execute(
        "World!employees detect: [:e | true]"
    )
    session.session.bind(victim.oid, "salary", 10_000_000)
    session.commit()
    # now: the victim matches; then: it matches only its old key
    assert victim.oid in directory.lookup(10_000_000)
    assert victim.oid not in directory.lookup(10_000_000, time=t_before)
    old_salary = db.store.object(victim.oid).value_at("salary", t_before)
    assert victim.oid in directory.lookup(old_salary, time=t_before)


def test_bench_select_with_directory(indexed_db, benchmark):
    _db, session, _directory = indexed_db
    benchmark(session.execute, QUERY)


def test_bench_select_scan(scan_db, benchmark):
    _db, session, _ = scan_db
    benchmark(session.execute, QUERY)


def test_bench_directory_maintenance_on_commit(indexed_db, benchmark):
    db, session, _directory = indexed_db
    emp = session.execute("World!employees detect: [:e | true]")
    salary = [100]

    def rekey_commit():
        salary[0] += 1
        session.session.bind(emp.oid, "salary", salary[0])
        return session.commit()

    benchmark(rekey_commit)


def main() -> None:
    sweep = Table(
        "E9: selection cost, scan vs directory (ms, best of 3)",
        ["employees", "scan", "directory", "speedup"],
    )
    for count in (200, 1_000, 4_000):
        _db, scan_session, _ = build(count, indexed=False)
        _db2, indexed_session, _d = build(count, indexed=True)
        scan = stopwatch(lambda: scan_session.execute(QUERY), 3)
        indexed = stopwatch(lambda: indexed_session.execute(QUERY), 3)
        sweep.add(count, scan.millis, indexed.millis,
                  ratio(scan.seconds, indexed.seconds))
    sweep.note("crossover immediately; gap widens linearly with set size")
    sweep.show()

    past = Table("E9: the same index serving a past state",
                 ["query", "members found"])
    db, session, directory = build(500, indexed=True)
    t0 = db.store.last_tx_time
    session.execute(
        "World!employees do: [:e | e at: 'salary' put: 10000000]"
    )
    session.commit()
    past.add("salary = 10,000,000 now", len(directory.lookup(10_000_000)))
    past.add(f"salary = 10,000,000 @ {t0}",
             len(directory.lookup(10_000_000, time=t0)))
    past.note("interval-stamped entries: history is indexed too")
    past.show()


if __name__ == "__main__":
    main()
