"""E8 — safe writes: atomic track groups (section 6).

"Safe writing guarantees that all the tracks in the group get written,
or none get written, and that the tracks in the group replace their old
versions atomically."

The harness crashes the disk at *every* write index inside a commit and
verifies recovery always yields exactly the old state or exactly the new
state — never a mixture — then reports commit cost (track writes) as the
group grows.

Run the harness:   python benchmarks/bench_safe_writes.py
Run the timings:   pytest benchmarks/bench_safe_writes.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table
from repro.errors import DiskCrashed
from repro.storage import DiskGeometry, SimulatedDisk, StableStore


def fresh_db():
    return GemStone.create(track_count=4096, track_size=1024)


def crash_sweep(objects: int = 4, max_crash_points: int = 64):
    """Crash at each write index; classify every recovery. Returns
    (old_state_count, new_state_count, mixed_count)."""
    old = new = mixed = 0
    crash_point = 0
    while crash_point < max_crash_points:
        db = fresh_db()
        session = db.login()
        oids = []
        for index in range(objects):
            obj = session.new("Object", v="old")
            session.assign(f"o{index}", obj)
            oids.append(obj.oid)
        session.commit()

        db.disk.crash_after(crash_point)
        committed = True
        try:
            for oid in oids:
                session.session.bind(oid, "v", "new")
            session.commit()
        except DiskCrashed:
            committed = False
        db.disk.cancel_crash()
        db.disk.restart()

        recovered = GemStone.open(db.disk)
        values = {
            recovered.store.object(oid).value("v") for oid in oids
        }
        if values == {"old"}:
            old += 1
            assert not committed
        elif values == {"new"}:
            new += 1
        else:
            mixed += 1
        if committed:
            break  # past the last write of the commit: done sweeping
        crash_point += 1
    return old, new, mixed


def test_every_crash_point_is_all_or_nothing():
    old, new, mixed = crash_sweep()
    assert mixed == 0
    assert old > 0   # early crashes keep the old state
    assert new >= 1  # surviving the full group yields the new state


def test_recovery_adopts_highest_valid_epoch():
    db = fresh_db()
    session = db.login()
    session.execute("World!v := 'one'")
    session.commit()
    session.execute("World!v := 'two'")
    session.commit()
    recovered = GemStone.open(db.disk)
    assert recovered.login().execute("World!v") == "two"


def test_commit_never_overwrites_live_tracks():
    """Shadow discipline: the tracks of the pre-commit state are not
    rewritten by the next commit (root slots aside)."""
    db = fresh_db()
    session = db.login()
    obj = session.new("Object", v=1)
    session.assign("o", obj)
    session.commit()
    live_tracks = set(db.store.table.tracks_in_use())
    writes_before = db.disk.stats.writes

    written = []
    original = db.disk.write_track

    def spy(track, data):
        written.append(track)
        return original(track, data)

    db.disk.write_track = spy
    session.session.bind(obj.oid, "v", 2)
    session.commit()
    overlap = set(written) & live_tracks
    assert not overlap
    assert db.disk.stats.writes > writes_before


def test_bench_small_commit(benchmark):
    db = fresh_db()
    session = db.login()
    obj = session.new("Object", v=0)
    session.assign("o", obj)
    session.commit()

    def commit_one():
        session.session.bind(obj.oid, "v", 1)
        return session.commit()

    benchmark(commit_one)


def test_bench_group_commit_100_objects(benchmark):
    db = GemStone.create(track_count=16_384, track_size=2048)
    session = db.login()
    group = session.new("Bag")
    oids = []
    for index in range(100):
        member = session.new("Object", v=0)
        session.session.bind(group, session.session.new_alias(), member)
        oids.append(member.oid)
    session.assign("group", group)
    session.commit()

    def commit_group():
        for oid in oids:
            session.session.bind(oid, "v", 1)
        return session.commit()

    benchmark(commit_group)


def main() -> None:
    old, new, mixed = crash_sweep()
    sweep = Table("E8: crash at every write index during one commit",
                  ["recovered old state", "recovered new state", "mixed"])
    sweep.add(old, new, mixed)
    sweep.note("mixed must be 0: the group replaces its old versions atomically")
    sweep.show()

    cost = Table("E8: commit cost vs group size",
                 ["dirty objects", "track writes", "time units"])
    for objects in (1, 10, 100, 500):
        db = GemStone.create(track_count=32_768, track_size=2048)
        session = db.login()
        oids = []
        group = session.new("Bag")
        for index in range(objects):
            member = session.new("Object", v=0)
            session.session.bind(group, session.session.new_alias(), member)
            oids.append(member.oid)
        session.assign("group", group)
        session.commit()
        before_writes = db.disk.stats.writes
        before_time = db.disk.stats.time_units
        for oid in oids:
            session.session.bind(oid, "v", 1)
        session.commit()
        cost.add(objects, db.disk.stats.writes - before_writes,
                 db.disk.stats.time_units - before_time)
    cost.note("cost grows with the group, plus a constant metadata tail "
              "(object-table pages, bitmap, catalog, root)")
    cost.show()


if __name__ == "__main__":
    main()
