"""Regenerate every experiment's result tables in one pass.

Runs each ``bench_*.py`` module's ``main()`` harness in sequence —
the printed tables are the rows EXPERIMENTS.md records.

    python benchmarks/run_all.py            # everything
    python benchmarks/run_all.py occ safe   # substring filters
    python benchmarks/run_all.py --smoke    # soak harnesses in smoke size
    python benchmarks/run_all.py --json     # also write BENCH_results.json

With ``--json``, every harness that returns a metrics dict contributes
to ``BENCH_results.json`` at the repo root: per-bench wall time plus
whatever the harness measured (ops/sec, cache hit rates via
``repro.perf.stats``, ablation timings).  Any ablation whose cached
path is *slower* than its uncached ablation (``speedup < 1.0``) is a
regression and fails the run — the CI benchmark smoke job leans on
this.  See ``docs/performance.md`` for how to read the file.
"""

from __future__ import annotations

import importlib
import inspect
import json
import pathlib
import platform
import sys
import time

#: where --json writes the trajectory file (the repo root)
RESULTS_PATH = pathlib.Path(__file__).parent.parent / "BENCH_results.json"


def discover() -> list[str]:
    here = pathlib.Path(__file__).parent
    return sorted(
        path.stem for path in here.glob("bench_*.py")
    )


def run_experiment(name: str, smoke: bool):
    """Import and run one bench module, isolating it from our argv.

    Harnesses that accept an ``argv`` parameter get an explicit argument
    list — empty, or ``--smoke`` when requested — so they never parse
    ``run_all``'s own command line.  A dict return value is the bench's
    metrics (returned to the caller); any other truthy return is a
    failure, as before.
    """
    module = importlib.import_module(name)
    if "argv" in inspect.signature(module.main).parameters:
        result = module.main(["--smoke"] if smoke else [])
    else:
        result = module.main()
    if isinstance(result, dict):
        return result
    if result:
        raise RuntimeError(f"{name} reported failure ({result})")
    return None


def find_regressions(benches: dict) -> list[dict]:
    """Ablations where the cached path lost to the uncached one."""
    regressions = []
    for name, entry in benches.items():
        metrics = entry.get("metrics") or {}
        for ablation in metrics.get("ablations", ()):
            if ablation.get("speedup", 1.0) < 1.0:
                regressions.append({"bench": name, **ablation})
    return regressions


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    emit_json = "--json" in argv
    filters = [arg.lower() for arg in argv if not arg.startswith("--")]
    names = discover()
    if filters:
        names = [n for n in names if any(f in n for f in filters)]
    if not names:
        print("no experiments match", filters)
        return 1
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    failures = []
    benches: dict[str, dict] = {}
    for name in names:
        banner = f"  {name}  "
        print("\n" + banner.center(74, "#"))
        started = time.perf_counter()
        try:
            metrics = run_experiment(name, smoke)
        except Exception as error:  # keep going; report at the end
            failures.append((name, error))
            print(f"!! {name} failed: {type(error).__name__}: {error}")
            metrics = None
        finally:
            elapsed = time.perf_counter() - started
            print(f"({name} took {elapsed:.1f}s)")
        benches[name] = {"seconds": round(elapsed, 3), "metrics": metrics}
    regressions = find_regressions(benches)
    for regression in regressions:
        print(
            f"!! cache regression in {regression['bench']}: "
            f"{regression.get('name', '?')} speedup "
            f"{regression.get('speedup', 0):.2f}x < 1.0x"
        )
    if emit_json:
        payload = {
            "smoke": smoke,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "benches": benches,
            "regressions": regressions,
        }
        RESULTS_PATH.write_text(json.dumps(payload, indent=1, default=str) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
    if failures:
        print(f"\n{len(failures)} experiment(s) failed:")
        for name, error in failures:
            print(f"  {name}: {error}")
        return 1
    if regressions:
        print(f"\n{len(regressions)} cache regression(s); see above.")
        return 1
    print(f"\nall {len(names)} experiments regenerated.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
