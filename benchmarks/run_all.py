"""Regenerate every experiment's result tables in one pass.

Runs each ``bench_*.py`` module's ``main()`` harness in sequence —
the printed tables are the rows EXPERIMENTS.md records.

    python benchmarks/run_all.py            # everything
    python benchmarks/run_all.py occ safe   # substring filters
    python benchmarks/run_all.py --smoke    # soak harnesses in smoke size
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import sys
import time


def discover() -> list[str]:
    here = pathlib.Path(__file__).parent
    return sorted(
        path.stem for path in here.glob("bench_*.py")
    )


def run_experiment(name: str, smoke: bool) -> None:
    """Import and run one bench module, isolating it from our argv.

    Harnesses that accept an ``argv`` parameter (the soak benches:
    ``bench_fault_soak``, ``bench_overload``) get an explicit argument
    list — empty, or ``--smoke`` when requested — so they never parse
    ``run_all``'s own command line.  Plain ``main()`` harnesses have no
    CLI and run as before.
    """
    module = importlib.import_module(name)
    if "argv" in inspect.signature(module.main).parameters:
        result = module.main(["--smoke"] if smoke else [])
        if result:
            raise RuntimeError(f"{name} reported failure ({result})")
    else:
        module.main()


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    filters = [arg.lower() for arg in argv if not arg.startswith("--")]
    names = discover()
    if filters:
        names = [n for n in names if any(f in n for f in filters)]
    if not names:
        print("no experiments match", filters)
        return 1
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    failures = []
    for name in names:
        banner = f"  {name}  "
        print("\n" + banner.center(74, "#"))
        started = time.perf_counter()
        try:
            run_experiment(name, smoke)
        except Exception as error:  # keep going; report at the end
            failures.append((name, error))
            print(f"!! {name} failed: {type(error).__name__}: {error}")
        finally:
            print(f"({name} took {time.perf_counter() - started:.1f}s)")
    if failures:
        print(f"\n{len(failures)} experiment(s) failed:")
        for name, error in failures:
            print(f"  {name}: {error}")
        return 1
    print(f"\nall {len(names)} experiments regenerated.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
