"""E5 — arrays as sets with integer element names (section 5.2).

Regenerates the paper's array example and measures that element access
through integer names stays O(1)-ish as arrays grow (it is a dict access
in the object's element map), both in memory and through the database.

Run the harness:   python benchmarks/bench_array_sets.py
Run the timings:   pytest benchmarks/bench_array_sets.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table, stopwatch
from repro.core import MemoryObjectManager
from repro.stdm import LabeledSet, format_set
from repro.stdm.algebra import intersection, union


PAPER_ARRAY = {
    1: ["Anders", "Roberts"],
    2: ["Roberts", "Ching"],
    3: ["Albrecht", "Ching"],
}


def build_array(store, size: int):
    array = store.instantiate("Array", size=size)
    for index in range(1, size + 1):
        store.bind(array, index, index * 10)
    return array


def test_paper_array_regenerates():
    array = LabeledSet.from_nested(PAPER_ARRAY)
    assert array.navigate("2").values() == ["Roberts", "Ching"]
    assert set(array.names()) == {1, 2, 3}


def test_arbitrary_index_sets():
    """The index set need not be positive integers (section 5.2)."""
    array = LabeledSet({-3: "below", 0: "zero", "monday": "named"})
    assert array[-3] == "below"
    assert array["monday"] == "named"


def test_array_protocol_in_opal():
    from repro.opal import OpalEngine

    engine = OpalEngine(MemoryObjectManager())
    assert engine.execute(
        "| a | a := Array new: 100. a at: 50 put: 'mid'. a at: 50"
    ) == "mid"


def test_access_cost_flat_across_sizes():
    om = MemoryObjectManager()
    small = build_array(om, 100)
    large = build_array(om, 100_000)
    t_small = stopwatch(lambda: om.value_at(small, 50), repeat=5)
    t_large = stopwatch(lambda: om.value_at(large, 50_000), repeat=5)
    # associative access: no linear scan hiding inside
    assert t_large.seconds < t_small.seconds * 50 + 1e-3


def test_bench_memory_array_access(benchmark):
    om = MemoryObjectManager()
    array = build_array(om, 10_000)
    benchmark(om.value_at, array, 5_000)


def test_bench_database_array_access(benchmark):
    db = GemStone.create()
    session = db.login()
    array = build_array(session.session, 1_000)
    session.assign("array", array)
    session.commit()
    benchmark(session.session.value_at, array.oid, 500)


def _set_op_timing(om, size: int) -> tuple[float, float]:
    """Best-of-3 union/intersection time over *size*-object member lists."""
    def members(start):
        return [
            om.instantiate("Object", N=start + i) for i in range(size)
        ]

    a, b = members(0), members(size // 2)
    t_union = stopwatch(lambda: union(a, b), 3)
    t_inter = stopwatch(lambda: intersection(a, b), 3)
    return t_union.seconds, t_inter.seconds


def hashed_set_op_guard(om=None) -> dict:
    """Guard: union/intersection must scale near-linearly, not O(n²).

    The ``_MemberIndex`` keys members by oid hash; if someone regresses
    it to the ``value_equal`` scan, 8x the members costs ~64x the time
    and this trips long before CI times out.
    """
    om = om or MemoryObjectManager()
    small_union, small_inter = _set_op_timing(om, 500)
    big_union, big_inter = _set_op_timing(om, 4_000)
    # 8x members: linear ≈ 8x, quadratic ≈ 64x; 24x is the tripwire
    union_scale = big_union / max(small_union, 1e-9)
    inter_scale = big_inter / max(small_inter, 1e-9)
    assert union_scale < 24, f"union scaling looks quadratic: {union_scale:.1f}x"
    assert inter_scale < 24, f"intersection scaling looks quadratic: {inter_scale:.1f}x"
    return {
        "union_scale_8x_members": union_scale,
        "intersection_scale_8x_members": inter_scale,
        "union_seconds_4000": big_union,
        "intersection_seconds_4000": big_inter,
    }


def test_hashed_set_ops_scale_linearly():
    hashed_set_op_guard()


def main() -> None:
    print("E5: the paper's array, as a set with integer element names:")
    print(" ", format_set(LabeledSet.from_nested(PAPER_ARRAY)))
    print()

    om = MemoryObjectManager()
    sweep = Table("E5: element access vs array size (µs, best of 5)",
                  ["size", "access middle element"])
    for size in (100, 10_000, 100_000):
        array = build_array(om, size)
        timing = stopwatch(lambda a=array, s=size: om.value_at(a, s // 2), 5)
        sweep.add(size, timing.micros)
    sweep.note("flat: integer element names are associative, not positional")
    sweep.show()

    guard = hashed_set_op_guard(om)
    ops = Table("E5: hashed set operations guard (8x members)",
                ["operation", "time at 4000 (ms)", "scale vs 500"])
    ops.add("union", guard["union_seconds_4000"] * 1e3,
            f"{guard['union_scale_8x_members']:.1f}x")
    ops.add("intersection", guard["intersection_seconds_4000"] * 1e3,
            f"{guard['intersection_scale_8x_members']:.1f}x")
    ops.note("near-linear: _MemberIndex keys members by oid hash")
    ops.show()


if __name__ == "__main__":
    main()
