"""E5 — arrays as sets with integer element names (section 5.2).

Regenerates the paper's array example and measures that element access
through integer names stays O(1)-ish as arrays grow (it is a dict access
in the object's element map), both in memory and through the database.

Run the harness:   python benchmarks/bench_array_sets.py
Run the timings:   pytest benchmarks/bench_array_sets.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table, stopwatch
from repro.core import MemoryObjectManager
from repro.stdm import LabeledSet, format_set


PAPER_ARRAY = {
    1: ["Anders", "Roberts"],
    2: ["Roberts", "Ching"],
    3: ["Albrecht", "Ching"],
}


def build_array(store, size: int):
    array = store.instantiate("Array", size=size)
    for index in range(1, size + 1):
        store.bind(array, index, index * 10)
    return array


def test_paper_array_regenerates():
    array = LabeledSet.from_nested(PAPER_ARRAY)
    assert array.navigate("2").values() == ["Roberts", "Ching"]
    assert set(array.names()) == {1, 2, 3}


def test_arbitrary_index_sets():
    """The index set need not be positive integers (section 5.2)."""
    array = LabeledSet({-3: "below", 0: "zero", "monday": "named"})
    assert array[-3] == "below"
    assert array["monday"] == "named"


def test_array_protocol_in_opal():
    from repro.opal import OpalEngine

    engine = OpalEngine(MemoryObjectManager())
    assert engine.execute(
        "| a | a := Array new: 100. a at: 50 put: 'mid'. a at: 50"
    ) == "mid"


def test_access_cost_flat_across_sizes():
    om = MemoryObjectManager()
    small = build_array(om, 100)
    large = build_array(om, 100_000)
    t_small = stopwatch(lambda: om.value_at(small, 50), repeat=5)
    t_large = stopwatch(lambda: om.value_at(large, 50_000), repeat=5)
    # associative access: no linear scan hiding inside
    assert t_large.seconds < t_small.seconds * 50 + 1e-3


def test_bench_memory_array_access(benchmark):
    om = MemoryObjectManager()
    array = build_array(om, 10_000)
    benchmark(om.value_at, array, 5_000)


def test_bench_database_array_access(benchmark):
    db = GemStone.create()
    session = db.login()
    array = build_array(session.session, 1_000)
    session.assign("array", array)
    session.commit()
    benchmark(session.session.value_at, array.oid, 500)


def main() -> None:
    print("E5: the paper's array, as a set with integer element names:")
    print(" ", format_set(LabeledSet.from_nested(PAPER_ARRAY)))
    print()

    om = MemoryObjectManager()
    sweep = Table("E5: element access vs array size (µs, best of 5)",
                  ["size", "access middle element"])
    for size in (100, 10_000, 100_000):
        array = build_array(om, size)
        timing = stopwatch(lambda a=array, s=size: om.value_at(a, s // 2), 5)
        sweep.add(size, timing.micros)
    sweep.note("flat: integer element names are associative, not positional")
    sweep.show()


if __name__ == "__main__":
    main()
