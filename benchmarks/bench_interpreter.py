"""Ablation — the OPAL Interpreter: bytecode dispatch costs.

Section 6: "The Interpreter is an abstract stack machine that executes
compiledMethods consisting of sequences of bytecodes."  This ablation
measures the core dispatch rates — message sends, block calls, path
fetches, instance-variable access — so regressions in the stack machine
are visible.

Run the harness:   python benchmarks/bench_interpreter.py
Run the timings:   pytest benchmarks/bench_interpreter.py --benchmark-only
"""

import pytest

from repro.bench import Table, stopwatch
from repro.core import MemoryObjectManager
from repro.opal import OpalEngine


@pytest.fixture(scope="module")
def engine():
    engine = OpalEngine(MemoryObjectManager())
    engine.execute("""
        Object subclass: #Point instVarNames: #(x y).
        Point compile: 'x ^x'.
        Point compile: 'setX: ax y: ay x := ax. y := ay'.
        Point compile: 'manhattan ^x abs + y abs'.
        | p | p := Point new. p setX: 3 y: -4.
        World!p := p
    """)
    return engine


SEND_LOOP = "| n | n := 0. 1 to: 1000 do: [:i | n := n + (World!p manhattan)]. n"
BLOCK_LOOP = "| b n | b := [:x | x + 1]. n := 0. 1 to: 1000 do: [:i | n := b value: n]. n"
PATH_LOOP = "| n | n := 0. 1 to: 1000 do: [:i | n := n + World!p!x]. n"
ARITH_LOOP = "| n | n := 0. 1 to: 1000 do: [:i | n := n + (i * 2) - 1]. n"


def test_loops_compute_correctly(engine):
    assert engine.execute(SEND_LOOP) == 7000
    assert engine.execute(BLOCK_LOOP) == 1000
    assert engine.execute(PATH_LOOP) == 3000
    assert engine.execute(ARITH_LOOP) == 1_000_000


def test_bench_message_sends(engine, benchmark):
    benchmark(engine.execute, SEND_LOOP)


def test_bench_block_calls(engine, benchmark):
    benchmark(engine.execute, BLOCK_LOOP)


def test_bench_path_fetches(engine, benchmark):
    benchmark(engine.execute, PATH_LOOP)


def test_bench_arithmetic(engine, benchmark):
    benchmark(engine.execute, ARITH_LOOP)


def test_bench_compilation(engine, benchmark):
    from repro.opal import Compiler

    source = """
        | a b c |
        a := 1. b := a + 2. c := b * b.
        #(1 2 3) do: [:x | c := c + x].
        c > 10 ifTrue: ['big'] ifFalse: ['small']
    """
    benchmark(lambda: Compiler().compile_source(source))


def main() -> None:
    engine = OpalEngine(MemoryObjectManager())
    engine.execute("""
        Object subclass: #Point instVarNames: #(x y).
        Point compile: 'x ^x'.
        Point compile: 'setX: ax y: ay x := ax. y := ay'.
        Point compile: 'manhattan ^x abs + y abs'.
        | p | p := Point new. p setX: 3 y: -4. World!p := p
    """)
    table = Table("Interpreter dispatch rates (1000-iteration loops)",
                  ["operation", "loop time (ms)", "per op (µs)"])
    for label, source, ops in [
        ("method send + 2 instvar reads", SEND_LOOP, 1000),
        ("block call", BLOCK_LOOP, 1000),
        ("path fetch (2 components)", PATH_LOOP, 1000),
        ("arithmetic sends", ARITH_LOOP, 3000),
    ]:
        timing = stopwatch(lambda s=source: engine.execute(s), 3)
        table.add(label, timing.millis, timing.micros / ops)
    table.show()


if __name__ == "__main__":
    main()
