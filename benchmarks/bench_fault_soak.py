"""Fault soak: exhaustive crash sweep + a flaky-disk endurance run.

Two harnesses over the ``repro.faults`` subsystem:

* **crash sweep** — a multi-commit workload is replayed once per track
  write it performs, crashing the disk just before that write; recovery
  must land the last completed commit's epoch with no torn state.  The
  full run covers 200+ write indexes, proving the safe-write discipline
  at every single offset, and reports recovery latency in simulated
  time units.
* **flaky endurance** — the same database stack over a disk that fails
  transiently at a fixed seeded rate, masked by ``ResilientDisk``'s
  retry + backoff; reports how much retrying the workload cost.

Run the harness:   python benchmarks/bench_fault_soak.py
CI smoke subset:   python benchmarks/bench_fault_soak.py --smoke
One crash point:   python benchmarks/bench_fault_soak.py --crash-points 17,42
Reseed the faults: python benchmarks/bench_fault_soak.py --seed 7
Run as tests:      pytest benchmarks/bench_fault_soak.py
"""

import argparse

from repro import GemStone
from repro.bench import Table
from repro.faults import (
    FaultClock,
    FaultPlan,
    FaultSpec,
    FaultyDisk,
    ResilientDisk,
    run_crash_sweep,
)
from repro.storage import DiskGeometry, SimulatedDisk

#: the full sweep replays a workload wide enough for 200+ track writes
FULL = dict(commits=26, writes_per_commit=8, track_count=4096, track_size=512)
SMOKE = dict(commits=5, writes_per_commit=2, track_count=512, track_size=512)


def flaky_endurance(commits=20, transient_rate=0.10, seed=1984):
    """Commit through a ResilientDisk over a seeded flaky platter."""
    inner = SimulatedDisk(DiskGeometry(track_count=4096, track_size=512))
    clock = FaultClock()
    plan = FaultPlan(seed=seed, spec=FaultSpec(transient_rate=transient_rate))
    stack = ResilientDisk(FaultyDisk(inner, plan, clock), clock, max_retries=8)
    db = GemStone.create(disk=stack)
    session = db.login()
    for index in range(commits):
        session.execute(f"World!slot{index % 8} := {index}")
        session.commit()
    reopened = GemStone.open(stack).login()
    for index in range(max(0, commits - 8), commits):
        assert reopened.execute(f"World!slot{index % 8}") is not None
    return stack, plan


def test_smoke_sweep_has_no_torn_states():
    report = run_crash_sweep(**SMOKE)
    assert report.torn_states == 0
    assert report.recoveries == report.crash_points == report.total_writes


def test_smoke_endurance_masks_faults():
    stack, plan = flaky_endurance(commits=8)
    assert stack.retries > 0
    assert not stack.degraded
    assert plan.injected > 0


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration")
    parser.add_argument("--seed", type=int, default=1984,
                        help="seed for the endurance run's fault schedule")
    parser.add_argument("--crash-points", type=str, default=None,
                        help="comma-separated write indexes to crash at "
                             "(replaces the exhaustive sweep)")
    args = parser.parse_args(argv)
    smoke = args.smoke
    params = dict(SMOKE if smoke else FULL)
    if args.crash_points is not None:
        params["crash_points"] = [
            int(point) for point in args.crash_points.split(",") if point
        ]

    report = run_crash_sweep(**params)
    sweep = Table(
        "fault soak: crash at every write index of a "
        f"{params['commits']}-commit workload",
        ["total writes", "crash points", "recoveries", "torn states",
         "mean recovery (units)", "max recovery (units)"],
    )
    sweep.add(
        report.total_writes, report.crash_points, report.recoveries,
        report.torn_states, round(report.mean_recovery_time, 1),
        round(report.max_recovery_time, 1),
    )
    sweep.note("torn states must be 0; every crash recovers the last "
               "completed commit's epoch")
    sweep.show()
    if not smoke:
        assert report.total_writes >= 200, "sweep too small to be conclusive"
    assert report.torn_states == 0
    assert report.recoveries == report.crash_points

    endurance = Table(
        "fault soak: flaky-disk endurance (seeded transient faults)",
        ["commits", "fault rate", "retries", "backoff (units)", "degraded"],
    )
    commits = 6 if smoke else 30
    stack, _ = flaky_endurance(commits=commits, seed=args.seed)
    endurance.add(commits, "10%", stack.retries,
                  round(stack.backoff_time, 1), stack.degraded)
    endurance.note("every fault is masked by bounded retry + exponential "
                   "backoff in simulated time; no wall clocks")
    endurance.show()


if __name__ == "__main__":
    main()
