"""Overload soak benchmark: governance under a hostile, contending herd.

Drives :func:`repro.govern.soak.run_overload_soak` — 32 sessions by
default, adversarial spinners/allocators/hoarders included, PR 1
transient disk faults active — then re-runs the identical configuration
to prove the whole governed stack is deterministic for a fixed seed.

Usage::

    python benchmarks/bench_overload.py [--smoke] [--seed N] [--clients N]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import Table  # noqa: E402
from repro.govern.soak import run_overload_soak  # noqa: E402

FULL = dict(clients=32, rounds=4, transient_rate=0.15)
SMOKE = dict(clients=8, rounds=2, transient_rate=0.12,
             track_count=1024, queue_capacity=24.0)


def overload_soak(seed: int, smoke: bool, clients: int | None = None):
    params = dict(SMOKE if smoke else FULL)
    if clients is not None:
        params["clients"] = clients
    first = run_overload_soak(seed=seed, **params)
    second = run_overload_soak(seed=seed, **params)
    return first, second


def test_smoke_overload_soak():
    report, _ = overload_soak(seed=2026, smoke=True)
    assert report.clean, report.failures
    assert report.commits > 0
    assert report.budget_kills > 0
    assert report.quota_kills > 0


def test_smoke_overload_soak_is_deterministic():
    first, second = overload_soak(seed=7, smoke=True)
    assert first.digest() == second.digest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration")
    parser.add_argument("--seed", type=int, default=2026,
                        help="seed for faults, jitter and the digest")
    parser.add_argument("--clients", type=int, default=None,
                        help="override the contending session count")
    args = parser.parse_args(argv)

    report, rerun = overload_soak(args.seed, args.smoke, args.clients)
    deterministic = report.digest() == rerun.digest()

    table = Table(
        "Overload soak: %d sessions x %d rounds (seed %d)"
        % (report.clients, report.rounds, report.seed),
        ["metric", "value"],
    )
    table.add("commits", report.commits)
    table.add("verified keys", report.verified_keys)
    table.add("conflicts (typed, retryable)", report.conflicts)
    table.add("overload rejections", report.overload_rejections)
    table.add("budget kills", report.budget_kills)
    table.add("quota kills", report.quota_kills)
    table.add("shed logins", report.shed_logins)
    table.add("queue sheds", report.queue_sheds)
    table.add("client backoffs", report.client_backoffs)
    table.add("priority grants", report.priority_grants)
    table.add("storms detected", report.storms_detected)
    table.add("backoff units charged", round(report.backoff_units, 2))
    table.add("disk faults injected", report.injected_faults)
    table.add("disk retries masked", report.disk_retries)
    table.add("torn commits", report.torn_commits)
    table.add("hung sessions", report.hung_sessions)
    table.add("untyped failures", report.untyped_failures)
    table.add("digest", report.digest())
    table.note(
        "invariants: torn commits = hung sessions = untyped failures = 0"
    )
    table.note(
        "same-seed rerun digest %s"
        % ("matches (deterministic)" if deterministic else "DIVERGES")
    )
    table.show()

    if not report.clean:
        for failure in report.failures:
            print("FAILURE:", failure)
        return 1
    if not deterministic:
        print("FAILURE: same seed produced different digests")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
