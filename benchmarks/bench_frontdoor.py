"""Front-door open-loop ramp: offered load vs p99 latency and sheds.

Drives :func:`repro.frontdoor.loadgen.run_load` at a ramp of arrival
rates over one event loop and records, for each step, the p50/p99
dispatch latency (from the ``frontdoor.latency_ms`` histogram in
``repro.obs``) and how the admission layer degraded: typed OVERLOADED
sheds absorbed by client backoff, sessions refused outright, work shed
at the deadline re-check.  The acceptance bar at every step is the
loadgen's own: **zero untyped errors, zero hung sessions** — overload
must surface as typed refusals, never as collapse.

Run the experiment:  python benchmarks/bench_frontdoor.py
CI smoke subset:     python benchmarks/bench_frontdoor.py --smoke
"""

import argparse
import asyncio
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import Table  # noqa: E402
from repro.frontdoor.loadgen import clean, run_load  # noqa: E402

FULL = dict(sessions=2_000, requests=5, rates=(500.0, 2_000.0, 8_000.0),
            max_sessions=256, queue_capacity=2_048.0, drain_rate=128.0,
            track_count=4_096)
SMOKE = dict(sessions=250, requests=4, rates=(400.0, 1_600.0),
             max_sessions=48, queue_capacity=256.0, drain_rate=64.0,
             track_count=2_048)


def run_ramp(seed: int, params: dict) -> list[dict]:
    steps = []
    for rate in params["rates"]:
        report = asyncio.run(run_load(
            sessions=params["sessions"],
            rate=rate,
            requests=params["requests"],
            seed=seed,
            max_sessions=params["max_sessions"],
            queue_capacity=params["queue_capacity"],
            drain_rate=params["drain_rate"],
            track_count=params["track_count"],
        ))
        assert clean(report), (
            f"rate {rate}: untyped errors or hung sessions — "
            f"{report['outcomes']}"
        )
        steps.append(report)
    return steps


def test_smoke_ramp_stays_typed():
    steps = run_ramp(seed=2026, params=dict(SMOKE))
    for report in steps:
        outcomes = report["outcomes"]
        assert outcomes["untyped_errors"] == 0
        assert outcomes["hung"] == 0
        assert outcomes["completed"] + outcomes["overloaded"] \
            + outcomes["link_timeouts"] + outcomes["deadline"] \
            + outcomes["typed_errors"] == report["config"]["sessions"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration")
    parser.add_argument("--seed", type=int, default=2026,
                        help="seed for the per-session request mix")
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)

    steps = run_ramp(seed=args.seed, params=params)
    table = Table(
        f"open-loop ramp ({params['sessions']} sessions per step, "
        f"window {params['max_sessions']} live)",
        ["arrivals/unit", "completed", "overloaded", "shed(typed)",
         "p50 ms", "p99 ms"],
    )
    metrics: dict = {"frontdoor_ramp": []}
    for report in steps:
        outcomes = report["outcomes"]
        front = report["frontdoor"]
        latency = report["latency_ms"]
        rate = report["config"]["rate"]
        table.add(
            f"{rate:.0f}",
            outcomes["completed"],
            outcomes["overloaded"],
            front["shed_overload"] + front["shed_deadline"],
            f"{latency['p50']:.3f}",
            f"{latency['p99']:.3f}",
        )
        metrics["frontdoor_ramp"].append({
            "rate": rate,
            "completed": outcomes["completed"],
            "overloaded": outcomes["overloaded"],
            "shed_overload": front["shed_overload"],
            "shed_deadline": front["shed_deadline"],
            "replays": front["replays"],
            "untyped_errors": outcomes["untyped_errors"],
            "hung": outcomes["hung"],
            "p50_ms": round(latency["p50"], 3),
            "p99_ms": round(latency["p99"], 3),
            "elapsed_s": report["elapsed_s"],
        })
    table.note("every refusal is a typed OVERLOADED or DeadlineExceeded "
               "frame; untyped errors and hung sessions are zero at "
               "every step by assertion")
    table.show()
    last = steps[-1]
    metrics["frontdoor_p99_ms"] = round(last["latency_ms"]["p99"], 3)
    metrics["frontdoor_sessions_per_s"] = last["sessions_per_s"]
    return metrics


if __name__ == "__main__":
    main()
