"""E1 — Figure 1: "A Database with History".

Regenerates the figure's content from the database (every element's
association table, with transaction times), runs the paper's three path
queries, and benchmarks temporal path resolution.

Run the harness:   python benchmarks/bench_figure1_history.py
Run the timings:   pytest benchmarks/bench_figure1_history.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table, figure1_database


@pytest.fixture(scope="module")
def figure1():
    db = GemStone.create()
    session = figure1_database(db)
    return db, session


def regenerate_figure(session) -> Table:
    """The figure's boxes: each element with its timed associations."""
    table = Table("Figure 1 regenerated: elements and their associations",
                  ["object", "element", "time", "value"])
    world = session.world
    acme = session.resolve("'Acme Corp'")
    milton = session.resolve("milton")
    ayn = session.session.deref(acme.value_at(1821, 7))

    def rows(label, obj):
        for name, assoc_table in obj.elements.items():
            for time, value in assoc_table.history():
                shown = session.display(session.session.deref(value))
                if len(shown) > 30:
                    shown = shown[:27] + "..."
                table.add(label, name, time, shown)

    rows("World", world)
    rows("Acme Corp", acme)
    rows("Ayn (emp 1821)", ayn)
    rows("Milton", milton)
    return table


QUERIES = [
    ("World!'Acme Corp'!president!name", "Milton Friedman"),
    ("World!'Acme Corp'!president @ 10 !name", "Milton Friedman"),
    ("World!'Acme Corp'!president @ 7 !name", "Ayn Rand"),
    ("World!'Acme Corp'!president @ 7 !city", "San Diego"),
    ("World!'Acme Corp'!1821 @ 7 !name", "Ayn Rand"),
]


def test_figure1_queries_match_paper(figure1):
    _db, session = figure1
    for source, expected in QUERIES:
        assert session.execute(source) == expected


def test_departed_employee_is_nil_now(figure1):
    _db, session = figure1
    assert session.execute("World!'Acme Corp'!1821") is None


def test_bench_current_path(figure1, benchmark):
    _db, session = figure1
    result = benchmark(session.execute, "World!'Acme Corp'!president!name")
    assert result == "Milton Friedman"


def test_bench_past_path(figure1, benchmark):
    _db, session = figure1
    result = benchmark(session.execute, "World!'Acme Corp'!president @ 7 !city")
    assert result == "San Diego"


def test_bench_time_dial_navigation(figure1, benchmark):
    _db, session = figure1

    def dialed():
        session.execute("System timeDial: 7")
        name = session.execute("World!'Acme Corp'!president!name")
        session.execute("System timeDial: nil")
        return name

    assert benchmark(dialed) == "Ayn Rand"


def main() -> None:
    db = GemStone.create()
    session = figure1_database(db)
    regenerate_figure(session).show()

    queries = Table("The paper's queries", ["path expression", "answer"])
    for source, expected in QUERIES:
        answer = session.execute(source)
        assert answer == expected, (source, answer, expected)
        queries.add(source, answer)
    queries.show()


if __name__ == "__main__":
    main()
