"""Disaster-recovery soak: kill the primary everywhere, lose nothing.

Drives :func:`repro.dr.soak.run_dr_soak`: a workload commits through
continuous log shipping while the primary is killed at every outgoing
frame (both before the record reaches the wire and after the replica
stored it but before the ack), and the log-only rebuild is killed at
every write index and replayed.  Invariants at every point: zero
committed-transaction loss, zero torn log records, byte-identical
rebuild (latest and point-in-time).

Run the harness:   python benchmarks/bench_dr_soak.py
CI smoke subset:   python benchmarks/bench_dr_soak.py --smoke
One kill point:    python -m repro.dr --seed 2026 --kill 3 --mode recv
"""

import argparse

from repro.bench import Table
from repro.dr.soak import run_dr_soak

FULL = dict(commits=10, writes_per_commit=4, stride=1, recovery_stride=1)
SMOKE = dict(commits=4, writes_per_commit=2, stride=1, recovery_stride=4)


def test_smoke_sweep_loses_nothing():
    report = run_dr_soak(seed=2026, **SMOKE)
    assert report.ok, [f.describe() for f in report.failures]
    assert report.torn_rejected == 0
    assert report.pit_recoveries > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration")
    parser.add_argument("--seed", type=int, default=2026)
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)

    report = run_dr_soak(seed=args.seed, **params)
    table = Table(
        "dr soak: primary killed at every frame, rebuild killed at "
        f"every write ({params['commits']}-commit workload)",
        ["frames", "replication kills", "recovery kills",
         "rebuilds verified", "PIT recoveries", "torn records", "failures"],
    )
    table.add(
        report.total_frames, report.replication_points,
        report.recovery_points, report.rebuilds_verified,
        report.pit_recoveries, report.torn_rejected, len(report.failures),
    )
    table.note("every client-acknowledged commit survives the disaster; "
               "rebuilds are byte-identical to the lost primary")
    table.show()
    for failure in report.failures:
        print(failure.describe())
    assert report.ok, f"{len(report.failures)} invariant violations"
    assert report.pit_recoveries > 0, "no point-in-time recovery exercised"
    return {"dr_soak": report.digest()}


if __name__ == "__main__":
    main()
