"""Shard scale-out: commit throughput against 1→4 shard workers.

The paper's §6 runs GemStone on one dedicated machine; `repro.shard`
partitions the object space across N workers (`docs/sharding.md`).
This experiment measures what the partition buys on the commit path: a
preloaded catalog is split N ways, so each single-shard commit links,
boxes and safe-writes against a store 1/N the size.  Throughput must
rise monotonically from one worker to four — the acceptance bar for
the sharding work — while every commit keeps full per-shard OCC
validation and safe-write durability.

Run the experiment:  python benchmarks/bench_shard_scale.py
CI smoke subset:     python benchmarks/bench_shard_scale.py --smoke
"""

import argparse
import time

from repro.bench import Table
from repro.shard import ShardedGemStone

FULL = dict(preload=400, commits=60, shard_counts=(1, 2, 3, 4), repeats=2)
SMOKE = dict(preload=200, commits=30, shard_counts=(1, 2, 4), repeats=3)

#: neighbouring counts must not regress beyond timer jitter
_TOLERANCE = 0.97


def measure_once(shards: int, preload: int, commits: int) -> float:
    """Commits per second on a *shards*-worker cluster, warm catalog."""
    cluster = ShardedGemStone(shard_count=shards)
    session = cluster.login()
    for i in range(preload):
        session.execute(f"World!p{i} := {i}")
        if i % 20 == 19:
            session.commit()
    session.commit()

    start = time.perf_counter()
    for j in range(commits):
        session.execute(f"World!m{j} := {j}")
        session.commit()
    elapsed = time.perf_counter() - start
    return commits / elapsed


def measure(shards: int, preload: int, commits: int, repeats: int) -> float:
    """Best of *repeats* fresh clusters — the least-interfered-with run."""
    return max(
        measure_once(shards, preload, commits) for _ in range(repeats)
    )


def run_scale(preload: int, commits: int, shard_counts,
              repeats: int) -> dict[int, float]:
    return {
        shards: measure(shards, preload, commits, repeats)
        for shards in shard_counts
    }


def check_monotone(throughput: dict[int, float]) -> None:
    counts = sorted(throughput)
    for previous, current in zip(counts, counts[1:]):
        assert throughput[current] >= throughput[previous] * _TOLERANCE, (
            f"throughput regressed {previous}→{current} shards: "
            f"{throughput[previous]:.0f} → {throughput[current]:.0f} commits/s"
        )
    assert throughput[counts[-1]] > throughput[counts[0]], (
        "scale-out bought nothing: "
        f"{throughput[counts[0]]:.0f} commits/s at {counts[0]} shard(s) vs "
        f"{throughput[counts[-1]]:.0f} at {counts[-1]}"
    )


def test_smoke_throughput_scales():
    throughput = run_scale(**SMOKE)
    check_monotone(throughput)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration")
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)

    throughput = run_scale(**params)
    counts = sorted(throughput)
    base = throughput[counts[0]]
    table = Table(
        f"commit throughput vs shard count "
        f"({params['preload']}-binding catalog, "
        f"{params['commits']} measured commits)",
        ["shards", "commits/s", "speedup vs 1"],
    )
    for shards in counts:
        table.add(shards, f"{throughput[shards]:.0f}",
                  f"{throughput[shards] / base:.2f}x")
    table.note("each worker persists a catalog 1/N the size, so the "
               "safe-write path shortens as the partition widens")
    table.show()
    check_monotone(throughput)
    return {
        "shard_throughput": {
            str(shards): round(throughput[shards], 1) for shards in counts
        },
        "shard_speedup_max": round(throughput[counts[-1]] / base, 3),
    }


if __name__ == "__main__":
    main()
