"""Ablation — caches: the object cache and the track buffer.

The paper's Object Manager keeps hot objects in memory; this ablation
sweeps the object-cache capacity against a skewed access pattern and
toggles the track buffer off, quantifying how much of the system's read
performance each layer provides.

Run the harness:   python benchmarks/bench_ablation_cache.py
Run the timings:   pytest benchmarks/bench_ablation_cache.py --benchmark-only
"""

import random

import pytest

from repro import GemStone
from repro.bench import Table, employee_database


OBJECTS = 400
ACCESSES = 2_000


def build(cache_capacity):
    db = GemStone.create(
        track_count=16_384, track_size=2048, cache_capacity=cache_capacity
    )
    emps = employee_database(db, OBJECTS)
    oids = [
        value.oid
        for _, value in db.store.object(emps.oid).items_at(None)
    ]
    return db, oids


def skewed_workload(db, oids, seed=13):
    """Zipf-ish: most accesses hit a small hot set.

    The track buffer is disabled so the object cache's effect reaches
    the disk counters (otherwise 16 buffered tracks absorb this whole
    dataset — which the second table shows on purpose).
    """
    rng = random.Random(seed)
    hot = oids[: max(4, len(oids) // 20)]
    db.store.track_buffer_capacity = 0
    db.store.flush_caches()
    db.store.cache.reset_stats()
    db.disk.stats.reset()
    for _ in range(ACCESSES):
        oid = rng.choice(hot) if rng.random() < 0.9 else rng.choice(oids)
        db.store.object(oid).value_at("salary")
    return db.store.cache.hit_rate, db.disk.stats.reads


def test_bigger_cache_fewer_disk_reads():
    results = {}
    for capacity in (8, 64, None):
        db, oids = build(capacity)
        hit_rate, reads = skewed_workload(db, oids)
        results[capacity] = (hit_rate, reads)
    assert results[8][1] > results[64][1] >= results[None][1]
    assert results[None][0] > results[8][0]


def test_track_buffer_saves_reads_for_clustered_objects():
    db, oids = build(None)
    db.store.flush_caches()
    db.disk.stats.reset()
    for oid in oids:
        db.store.object(oid).value_at("salary")
    with_buffer = db.disk.stats.reads

    db.store.flush_caches()
    db.store.cache.flush()
    db.store.track_buffer_capacity = 0
    db.disk.stats.reset()
    for oid in oids:
        db.store.object(oid).value_at("salary")
    without_buffer = db.disk.stats.reads
    assert with_buffer < without_buffer


def test_bench_skewed_reads_small_cache(benchmark):
    db, oids = build(8)

    def run():
        return skewed_workload(db, oids)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_skewed_reads_unbounded_cache(benchmark):
    db, oids = build(None)

    def run():
        return skewed_workload(db, oids)

    benchmark.pedantic(run, rounds=3, iterations=1)


def main() -> None:
    table = Table(
        f"Ablation: object cache under a 90/10 skew "
        f"({OBJECTS} objects, {ACCESSES} reads)",
        ["cache capacity", "hit rate", "track reads"],
    )
    for capacity in (4, 8, 64, 256, None):
        db, oids = build(capacity)
        hit_rate, reads = skewed_workload(db, oids)
        table.add("unbounded" if capacity is None else capacity,
                  f"{hit_rate:.2f}", reads)
    table.show()

    buffer_table = Table("Ablation: track buffer on a full sequential scan",
                         ["track buffer", "track reads"])
    db, oids = build(None)
    db.store.flush_caches()
    db.disk.stats.reset()
    for oid in oids:
        db.store.object(oid).value_at("salary")
    buffer_table.add("16 tracks (default)", db.disk.stats.reads)
    db.store.flush_caches()
    db.store.cache.flush()
    db.store.track_buffer_capacity = 0
    db.disk.stats.reset()
    for oid in oids:
        db.store.object(oid).value_at("salary")
    buffer_table.add("disabled", db.disk.stats.reads)
    buffer_table.note("clustered residents of one track cost one read, "
                      "not one each")
    buffer_table.show()


if __name__ == "__main__":
    main()
