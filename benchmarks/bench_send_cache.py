"""E-send — method-lookup caching: repeated sends down a deep hierarchy.

The ST80 implementation lineage behind the paper (Deutsch & Schiffman's
inline caches) resolves a send once per call site and validates the
cached resolution cheaply thereafter.  This harness measures exactly
that: a selector defined at the *root* of a 12-deep class chain, sent
repeatedly from a loop, with the caching subsystem enabled vs disabled
(``store.perf.enabled``).  Uncached, every send walks the full chain
through the Object Manager; cached, the call site's inline cache (or
the store's method table) answers after one miss.

Run the harness:   python benchmarks/bench_send_cache.py
Run the timings:   pytest benchmarks/bench_send_cache.py --benchmark-only
"""

import pytest

from repro.bench import Table, ratio, stopwatch
from repro.core import MemoryObjectManager
from repro.opal import OpalEngine
from repro.perf import stats

#: hierarchy depth — uncached lookup cost is linear in this
DEPTH = 24


def build_engine() -> OpalEngine:
    """An engine with C0..C{DEPTH-1} chained and a leaf-side driver.

    The probed selector ``one`` is a root-class *primitive* — the same
    shape as the kernel's Integer/String methods, whose dispatch is pure
    lookup cost (no frame setup), so the cache's effect is undiluted.
    """
    store = MemoryObjectManager()
    engine = OpalEngine(store)
    source = ["Object subclass: #C0 instVarNames: #()."]
    for level in range(1, DEPTH):
        source.append(f"C{level - 1} subclass: #C{level} instVarNames: #().")
    leaf = f"C{DEPTH - 1}"
    source.append(
        f"{leaf} compile: 'pump: n | s | s := 0."
        " 1 to: n do: [:i |"
        " s := s + self one + self one + self one + self one]. ^s'."
    )
    source.append(f"World!probe := {leaf} new")
    engine.execute("\n".join(source))
    store.class_named("C0").define_primitive("one", lambda m, r: 1)
    return engine


def _pump(engine: OpalEngine, n: int):
    probe = engine.execute("World!probe")
    return engine.send(probe, "pump:", n)


def test_pump_computes_correctly():
    engine = build_engine()
    assert _pump(engine, 50) == 200


def test_cached_and_uncached_agree():
    engine = build_engine()
    engine.store.perf.enabled = False
    cold = _pump(engine, 200)
    engine.store.perf.enabled = True
    warm = _pump(engine, 200)
    assert cold == warm == 800


def test_bench_sends_cached(benchmark):
    engine = build_engine()
    _pump(engine, 10)  # populate the inline caches
    benchmark(_pump, engine, 1000)


def test_bench_sends_uncached(benchmark):
    engine = build_engine()
    engine.store.perf.enabled = False
    benchmark(_pump, engine, 1000)


def main(argv=None) -> dict:
    smoke = argv is not None and "--smoke" in argv
    loops = 1_000 if smoke else 10_000
    sends = 4 * loops  # `pump:` sends #one four times per iteration
    repeat = 3

    engine = build_engine()
    perf = engine.store.perf

    perf.enabled = False
    uncached = stopwatch(lambda: _pump(engine, loops), repeat)

    perf.enabled = True
    perf.reset_stats()
    _pump(engine, 10)  # warm the call sites once
    cached = stopwatch(lambda: _pump(engine, loops), repeat)

    assert cached.result == uncached.result == sends

    table = Table(
        f"E-send: {sends:,} sends of an inherited selector (depth {DEPTH})",
        ["mode", "time (ms)", "sends/sec", "vs uncached"],
    )
    table.add("uncached (perf disabled)", uncached.millis,
              sends / uncached.seconds, "1.0x")
    table.add("cached (inline + method cache)", cached.millis,
              sends / cached.seconds, ratio(uncached.seconds, cached.seconds))
    report = stats(engine)
    table.note(
        f"inline cache hit rate {report['inline_cache']['hit_rate']:.3f}, "
        f"method cache hit rate {report['method_cache']['hit_rate']:.3f}"
    )
    table.show()

    speedup = uncached.seconds / cached.seconds if cached.seconds else float("inf")
    return {
        "ops": sends,
        "cached_seconds": cached.seconds,
        "uncached_seconds": uncached.seconds,
        "ops_per_sec_cached": sends / cached.seconds,
        "ops_per_sec_uncached": sends / uncached.seconds,
        "ablations": [
            {
                "name": f"repeated sends, depth-{DEPTH} hierarchy",
                "uncached_seconds": uncached.seconds,
                "cached_seconds": cached.seconds,
                "speedup": speedup,
            }
        ],
        "perf": report,
    }


if __name__ == "__main__":
    main()
