"""E10 — track clustering: physical paths parallel logical paths.

Section 6: "Between objects, pointers to elements are usually physical
pointers, as we expect most of the data to be strict tree structures.
Thus, physical access paths parallel logical access where objects aren't
shared."

The Linker orders dirty objects parent-first and the Boxer packs them
first-fit, so a tree committed together lands on few adjacent tracks.
The harness traverses the same tree cold (cache flushed) when it was
committed as one group vs one-node-per-commit in shuffled order, and
compares track reads and simulated seek time.

Run the harness:   python benchmarks/bench_clustering.py
Run the timings:   pytest benchmarks/bench_clustering.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import (
    Table,
    ratio,
    scattered_tree_database,
    traverse_tree,
    tree_database,
)

DEPTH, FANOUT = 4, 4  # 341 nodes


def cold_traversal_cost(db, root, fanout):
    db.store.flush_caches()
    db.disk.stats.reset()
    count = traverse_tree(db.store, root, fanout)
    return count, db.disk.stats.reads, db.disk.stats.time_units


@pytest.fixture(scope="module")
def clustered():
    db = GemStone.create(track_count=16_384, track_size=2048)
    root = tree_database(db, DEPTH, FANOUT)
    return db, root


@pytest.fixture(scope="module")
def scattered():
    db = GemStone.create(track_count=16_384, track_size=2048)
    root = scattered_tree_database(db, DEPTH, FANOUT)
    return db, root


def test_same_tree_both_ways(clustered, scattered):
    db_a, root_a = clustered
    db_b, root_b = scattered
    count_a, _, _ = cold_traversal_cost(db_a, root_a, FANOUT)
    count_b, _, _ = cold_traversal_cost(db_b, root_b, FANOUT)
    assert count_a == count_b == sum(FANOUT**i for i in range(DEPTH + 1))


def test_clustered_tree_needs_fewer_track_reads(clustered, scattered):
    db_a, root_a = clustered
    db_b, root_b = scattered
    _, reads_clustered, time_clustered = cold_traversal_cost(db_a, root_a, FANOUT)
    _, reads_scattered, time_scattered = cold_traversal_cost(db_b, root_b, FANOUT)
    assert reads_clustered < reads_scattered
    assert time_clustered < time_scattered


def test_clustered_objects_share_tracks(clustered):
    db, _root = clustered
    # nodes per track: with ~2KB tracks and ~70-byte nodes, many share
    tracks = {}
    for oid in db.store.table.oids():
        location = db.store.table.get(oid)
        for track in location.tracks:
            tracks.setdefault(track, 0)
            tracks[track] += 1
    best = max(tracks.values())
    assert best >= 5


def test_bench_cold_traversal_clustered(clustered, benchmark):
    db, root = clustered

    def run():
        db.store.flush_caches()
        return traverse_tree(db.store, root, FANOUT)

    benchmark(run)


def test_bench_cold_traversal_scattered(scattered, benchmark):
    db, root = scattered

    def run():
        db.store.flush_caches()
        return traverse_tree(db.store, root, FANOUT)

    benchmark(run)


def test_bench_warm_traversal(clustered, benchmark):
    db, root = clustered
    traverse_tree(db.store, root, FANOUT)  # warm the cache
    benchmark(traverse_tree, db.store, root, FANOUT)


def main() -> None:
    table = Table(
        "E10: cold tree traversal (341 nodes), clustered vs scattered",
        ["layout", "track reads", "seek+transfer time units"],
    )
    db_a = GemStone.create(track_count=16_384, track_size=2048)
    root_a = tree_database(db_a, DEPTH, FANOUT)
    _, reads_a, time_a = cold_traversal_cost(db_a, root_a, FANOUT)
    table.add("clustered (one commit, parent-first boxing)", reads_a, time_a)

    db_b = GemStone.create(track_count=16_384, track_size=2048)
    root_b = scattered_tree_database(db_b, DEPTH, FANOUT)
    _, reads_b, time_b = cold_traversal_cost(db_b, root_b, FANOUT)
    table.add("scattered (one node per commit, shuffled)", reads_b, time_b)
    table.note(f"clustering wins {ratio(reads_b, reads_a)} on reads, "
               f"{ratio(time_b, time_a)} on simulated time")
    table.show()


if __name__ == "__main__":
    main()
