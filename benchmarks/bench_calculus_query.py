"""E2 — the section 5.1 set-calculus query, three evaluation strategies.

    {{Emp: e, Mgr: m} where (e ∈ X!Employees) and (d ∈ X!Departments)
     [(m ∈ d!Managers) and (d!Name ∈ e!Depts) and
      (e!Salary > 0.10 * d!Budget)]}

Strategies compared: the reference calculus evaluator, the translated
algebra plan (selection pushdown), and the optimized plan using a
directory on Salary.  All three must return identical rows; the shape
the paper predicts is algebra ≥ calculus and index ≫ scan as data grows.

Run the harness:   python benchmarks/bench_calculus_query.py
Run the timings:   pytest benchmarks/bench_calculus_query.py --benchmark-only
"""

import pytest

from repro.bench import Table, acme_fragment, ratio, stopwatch
from repro.core import MemoryObjectManager
from repro.directories import DirectoryManager
from repro.opal import OpalEngine
from repro.perf import stats
from repro.stdm import (
    Const,
    HashJoin,
    IndexEq,
    QueryContext,
    SetQuery,
    optimize,
    translate,
    variables,
)
from repro.stdm.algebra import collect_operators


def paper_query(employees, departments) -> SetQuery:
    e, d, m = variables("e", "d", "m")
    return SetQuery(
        result={"Emp": e.path("Name!Last"), "Mgr": m},
        binders=[
            (e, Const(employees)),
            (d, Const(departments)),
            (m, d.path("Managers")),
        ],
        condition=(
            d.path("Name").in_(e.path("Depts"))
            & (e.path("Salary") > Const(0.10) * d.path("Budget"))
        ),
    )


def salary_query(employees, threshold: int) -> SetQuery:
    e, = variables("e")
    return SetQuery(
        result=e.path("Name!Last"),
        binders=[(e, Const(employees))],
        condition=(e.path("Salary") > threshold),
    )


@pytest.fixture(scope="module")
def dataset():
    om = MemoryObjectManager()
    employees, departments = acme_fragment(om, n_employees=300, n_departments=6)
    dm = DirectoryManager(om)
    dm.create_directory(employees, "Salary")
    return om, dm, employees, departments


def test_three_strategies_agree(dataset):
    om, dm, employees, departments = dataset
    query = paper_query(employees, departments)
    reference = query.evaluate(QueryContext(om))
    algebra = translate(query).run(QueryContext(om))
    optimized, _ = optimize(query, dm)
    assert algebra == reference
    assert sorted(map(str, optimized.run(QueryContext(om)))) == sorted(
        map(str, reference)
    )


def test_bench_calculus_reference(dataset, benchmark):
    om, _dm, employees, departments = dataset
    query = paper_query(employees, departments)
    benchmark(lambda: query.evaluate(QueryContext(om)))


def test_bench_translated_algebra(dataset, benchmark):
    om, _dm, employees, departments = dataset
    query = paper_query(employees, departments)
    benchmark(lambda: translate(query).run(QueryContext(om)))


def test_bench_salary_scan(dataset, benchmark):
    om, _dm, employees, _departments = dataset
    query = salary_query(employees, 38_000)
    benchmark(lambda: translate(query).run(QueryContext(om)))


def test_bench_salary_indexed(dataset, benchmark):
    om, dm, employees, _departments = dataset
    query = salary_query(employees, 38_000)
    plan, choices = optimize(query, dm)
    assert choices
    benchmark(lambda: plan.run(QueryContext(om)))


def literal_fragment(om):
    """The section 5.1 fragment verbatim: Sales/Research, Burns/Peters."""
    def labeled(**elements):
        obj = om.instantiate("Object")
        for name, value in elements.items():
            om.bind(obj, name, value)
        return obj

    def collection(*members):
        obj = om.instantiate("Object")
        for member in members:
            om.bind(obj, om.new_alias(), member)
        return obj

    sales = labeled(Name="Sales", Budget=142_000,
                    Managers=collection("Nathen", "Roberts"))
    research = labeled(Name="Research", Budget=256_500,
                       Managers=collection("Carter"))
    burns = labeled(Name=labeled(First="Ellen", Last="Burns"),
                    Salary=24_650, Depts=collection("Marketing"))
    peters = labeled(Name=labeled(First="Robert", Last="Peters"),
                     Salary=24_000, Depts=collection("Sales", "Planning"))
    return collection(burns, peters), collection(sales, research)


def opal_query_engine(n_employees: int) -> tuple[OpalEngine, object]:
    """An engine whose ``QueryDesk`` runs the same declarative select
    from an *installed* method — so the block's compiled AST (the memo
    anchor for translation and plan caching) persists across calls."""
    store = MemoryObjectManager()
    dm = DirectoryManager(store)
    engine = OpalEngine(store, directory_manager=dm)
    engine.execute("""
        Object subclass: #Employee instVarNames: #(name salary).
        Employee compile: 'salary ^salary'.
        Employee compile: 'salary: s salary := s'.
        Object subclass: #QueryDesk instVarNames: #(emps).
        QueryDesk compile: 'emps: c emps := c'.
        QueryDesk compile: 'hot ^emps select: [:e | e salary < 500]'
    """)
    engine.execute(f"""
        | emps e desk |
        emps := Bag new.
        1 to: {n_employees} do: [:i |
            e := Employee new.
            e salary: i * 100.
            emps add: e].
        desk := QueryDesk new.
        desk emps: emps.
        World!desk := desk.
        World!emps := emps
    """)
    emps = engine.execute("World!emps")
    dm.create_directory(emps, "salary")
    desk = engine.execute("World!desk")
    return engine, desk


def _result_key(store, selected) -> list:
    """Canonical identity of a select result, for equality checks."""
    return sorted(m.oid for m in store.members_of(selected, None))


def declarative_cache_ablation(n_employees: int, repeat: int) -> dict:
    """Repeated declarative selects, caches on vs off.

    Uncached, every call re-runs the block recognizer (which scans the
    class dictionaries), rebuilds the calculus query and re-plans it;
    cached, the compiled block's memo answers and only the (indexed)
    plan executes.  The two modes must return byte-identical results.
    """
    engine, desk = opal_query_engine(n_employees)
    perf = engine.store.perf

    def run_select():
        return engine.send(desk, "hot")

    perf.enabled = False
    uncached = stopwatch(run_select, repeat)

    perf.enabled = True
    perf.reset_stats()
    run_select()  # prime the translation and plan memos
    cached = stopwatch(run_select, repeat)

    store = engine.store
    assert _result_key(store, cached.result) == _result_key(store, uncached.result)
    speedup = (
        uncached.seconds / cached.seconds if cached.seconds else float("inf")
    )
    return {
        "n_employees": n_employees,
        "uncached_seconds": uncached.seconds,
        "cached_seconds": cached.seconds,
        "queries_per_sec_cached": 1.0 / cached.seconds,
        "queries_per_sec_uncached": 1.0 / uncached.seconds,
        "speedup": speedup,
        "results_identical": True,
        "perf": stats(engine),
    }


def test_declarative_cache_results_identical():
    report = declarative_cache_ablation(n_employees=60, repeat=2)
    assert report["results_identical"]


def wide_scan_query(employees) -> SetQuery:
    """A scan-dominated predicate: eight conjuncts over one scanned set.

    Every conjunct passes almost every row, so the run time is the scan
    plus per-row expression evaluation — exactly the shape the batch
    executor is built for (one path read per batch, C-speed compares).
    """
    e, = variables("e")
    s = e.path("Salary")
    return SetQuery(
        result=s,
        binders=[(e, Const(employees))],
        condition=(
            (s > Const(500))
            & (s < Const(90_000))
            & (Const(2) * s > Const(3_000))
            & (s + Const(100) < Const(95_000))
            & (s >= Const(0))
            & (s <= Const(100_000))
            & s.ne(Const(77))
            & (s + s > Const(2_000))
        ),
    )


def scan_mode_ablation(n_employees: int, repeat: int = 5) -> dict:
    """Row-at-a-time vs vectorized execution of the same optimized plan.

    Both modes run the identical plan object shape and must return
    byte-identical rows in the same order; only the executor changes.
    """
    om = MemoryObjectManager()
    employees, _departments = acme_fragment(om, n_employees, 6)
    query = wide_scan_query(employees)

    def run(mode):
        plan, _ = optimize(query, None)
        return plan.run(QueryContext(om), mode=mode)

    row = stopwatch(lambda: run("row"), repeat)
    vectorized = stopwatch(lambda: run("vectorized"), repeat)
    assert row.result == vectorized.result  # byte-identical, same order
    speedup = (
        row.seconds / vectorized.seconds
        if vectorized.seconds
        else float("inf")
    )
    return {
        "name": "scan executor: row-at-a-time vs vectorized",
        "n_employees": n_employees,
        "rows_returned": len(row.result),
        "row_seconds": row.seconds,
        "vectorized_seconds": vectorized.seconds,
        "speedup": speedup,
        "results_identical": True,
    }


def company_fragment(om, n_employees: int, n_departments: int):
    """Employees with a scalar DeptName foreign key, for join shapes."""
    departments = om.instantiate("Object")
    names = [f"Dept{i}" for i in range(n_departments)]
    for i, name in enumerate(names):
        dept = om.instantiate("Object", Name=name, Budget=(i + 1) * 10_000)
        om.bind(departments, om.new_alias(), dept)
    employees = om.instantiate("Object")
    for i in range(n_employees):
        emp = om.instantiate(
            "Object", Salary=i * 100, DeptName=names[i % n_departments]
        )
        om.bind(employees, om.new_alias(), emp)
    return employees, departments


def join_query(employees, departments) -> SetQuery:
    d, e = variables("d", "e")
    return SetQuery(
        result={"pay": e.path("Salary"), "budget": d.path("Budget")},
        binders=[(d, Const(departments)), (e, Const(employees))],
        condition=e.path("DeptName").eq(d.path("Name")),
    )


def join_mode_ablation(n_employees: int, n_departments: int,
                       repeat: int = 3) -> dict:
    """Nested scan vs HashJoin vs directory-driven index nested-loop.

    The unfused plan enumerates the full cross product; the fused plans
    must emit only matches (sub-quadratic ``rows_out``) and identical
    result sets.
    """
    om = MemoryObjectManager()
    employees, departments = company_fragment(om, n_employees, n_departments)
    dm = DirectoryManager(om)
    dm.create_directory(employees, "DeptName")
    query = join_query(employees, departments)

    def canon(rows):
        return sorted(map(repr, rows))

    # nested: the straight translation, no join fusion
    nested = stopwatch(lambda: translate(query).run(QueryContext(om)), repeat)

    # hash: fusion without a directory
    hash_plan, _ = optimize(query, None)
    operators = collect_operators(hash_plan)
    assert any(isinstance(op, HashJoin) for op in operators)
    hashed = stopwatch(
        lambda: optimize(query, None)[0].run(QueryContext(om)), repeat
    )

    # index nested-loop: the directory on DeptName covers the join key
    index_plan, _ = optimize(query, dm)
    operators = collect_operators(index_plan)
    assert any(isinstance(op, IndexEq) for op in operators)
    assert not any(isinstance(op, HashJoin) for op in operators)
    indexed = stopwatch(
        lambda: optimize(query, dm)[0].run(QueryContext(om, None, dm)), repeat
    )

    reference = canon(nested.result)
    assert canon(hashed.result) == reference
    assert canon(indexed.result) == reference

    # sub-quadratic: the fused operators never touch the cross product
    hash_plan, _ = optimize(query, None)
    results = hash_plan.run(QueryContext(om))
    join_op = next(
        op for op in collect_operators(hash_plan) if isinstance(op, HashJoin)
    )
    assert join_op.rows_out == len(results) < n_employees * n_departments
    assert f"[rows_out={join_op.rows_out}]" in hash_plan.explain()

    return {
        "name": "join executor: nested scan vs hash vs index nested-loop",
        "n_employees": n_employees,
        "n_departments": n_departments,
        "rows_returned": len(results),
        "join_rows_out": join_op.rows_out,
        "cross_product": n_employees * n_departments,
        "nested_seconds": nested.seconds,
        "hash_seconds": hashed.seconds,
        "index_seconds": indexed.seconds,
        "hash_speedup": nested.seconds / hashed.seconds,
        "index_speedup": nested.seconds / indexed.seconds,
        "results_identical": True,
    }


def test_scan_mode_ablation_identical():
    report = scan_mode_ablation(n_employees=400, repeat=2)
    assert report["results_identical"]
    assert report["rows_returned"] > 0


def test_join_mode_ablation_identical():
    report = join_mode_ablation(n_employees=300, n_departments=6, repeat=2)
    assert report["results_identical"]
    assert report["join_rows_out"] < report["cross_product"]


def main(argv=None) -> dict:
    smoke = argv is not None and "--smoke" in argv
    # the exact section 5.1 instance first
    om = MemoryObjectManager()
    employees, departments = literal_fragment(om)
    rows = paper_query(employees, departments).evaluate(QueryContext(om))
    sample = Table("E2: the paper's query on the section 5.1 fragment",
                   ["Emp", "Mgr"])
    for row in rows:
        sample.add(row["Emp"], row["Mgr"])
    sample.note("employees in a manager's department earning > 10% of budget")
    sample.show()

    sweep = Table(
        "E2: strategy sweep (ms, best of 3)",
        ["employees", "calculus", "algebra", "index plan", "scan/index"],
    )
    for n in (50, 200, 800):
        om = MemoryObjectManager()
        employees, departments = acme_fragment(om, n, 6)
        dm = DirectoryManager(om)
        dm.create_directory(employees, "Salary")
        query = salary_query(employees, 38_000)
        calculus = stopwatch(lambda: query.evaluate(QueryContext(om)), 3)
        algebra = stopwatch(lambda: translate(query).run(QueryContext(om)), 3)
        plan, _ = optimize(query, dm)
        indexed = stopwatch(lambda: plan.run(QueryContext(om)), 3)
        sweep.add(n, calculus.millis, algebra.millis, indexed.millis,
                  ratio(algebra.seconds, indexed.seconds))
    sweep.note("who wins: the directory plan, by a growing factor")
    sweep.show()

    # row-at-a-time vs vectorized execution of one scan-dominated plan
    scan_ablation = scan_mode_ablation(
        n_employees=1_000 if smoke else 10_000, repeat=3 if smoke else 7
    )
    scan_table = Table(
        "E2: scan executor ablation (same plan, row vs vectorized)",
        ["mode", "per query (ms)", "vs row-at-a-time"],
    )
    scan_table.add("row-at-a-time", scan_ablation["row_seconds"] * 1e3, "1.0x")
    scan_table.add("vectorized", scan_ablation["vectorized_seconds"] * 1e3,
                   ratio(scan_ablation["row_seconds"],
                         scan_ablation["vectorized_seconds"]))
    scan_table.note(
        f"{scan_ablation['n_employees']} employees, "
        f"{scan_ablation['rows_returned']} rows returned, "
        "results byte-identical in both modes"
    )
    scan_table.show()

    # join fusion: nested scan vs HashJoin vs index nested-loop
    join_ablation = join_mode_ablation(
        n_employees=300 if smoke else 2_000,
        n_departments=6 if smoke else 20,
        repeat=3,
    )
    join_table = Table(
        "E2: join fusion ablation (equality join, three executors)",
        ["plan", "per query (ms)", "vs nested scan"],
    )
    join_table.add("nested scan (cross product)",
                   join_ablation["nested_seconds"] * 1e3, "1.0x")
    join_table.add("HashJoin", join_ablation["hash_seconds"] * 1e3,
                   ratio(join_ablation["nested_seconds"],
                         join_ablation["hash_seconds"]))
    join_table.add("index nested-loop (directory)",
                   join_ablation["index_seconds"] * 1e3,
                   ratio(join_ablation["nested_seconds"],
                         join_ablation["index_seconds"]))
    join_table.note(
        f"join emits {join_ablation['join_rows_out']} rows vs a "
        f"{join_ablation['cross_product']}-pair cross product; "
        "explain() records fused rows_out"
    )
    join_table.show()

    # repeated declarative selects: translation + plan memoization
    ablation = declarative_cache_ablation(
        n_employees=60 if smoke else 300, repeat=10 if smoke else 50
    )
    cache_table = Table(
        "E2: repeated declarative select, caches on vs off",
        ["mode", "per query (ms)", "queries/sec", "vs uncached"],
    )
    cache_table.add("uncached (re-translate + re-plan)",
                    ablation["uncached_seconds"] * 1e3,
                    ablation["queries_per_sec_uncached"], "1.0x")
    cache_table.add("cached (block memo + plan memo)",
                    ablation["cached_seconds"] * 1e3,
                    ablation["queries_per_sec_cached"],
                    ratio(ablation["uncached_seconds"],
                          ablation["cached_seconds"]))
    perf = ablation["perf"]
    cache_table.note(
        f"translation hit rate {perf['translation_cache']['hit_rate']:.3f}, "
        f"plan hit rate {perf['plan_cache']['hit_rate']:.3f}; "
        "results byte-identical across modes"
    )
    cache_table.show()

    return {
        "ablations": [
            {
                "name": "repeated declarative select (indexed, installed method)",
                "uncached_seconds": ablation["uncached_seconds"],
                "cached_seconds": ablation["cached_seconds"],
                "speedup": ablation["speedup"],
            },
            scan_ablation,
            {
                "name": "join fusion: nested scan vs HashJoin",
                "nested_seconds": join_ablation["nested_seconds"],
                "hash_seconds": join_ablation["hash_seconds"],
                "speedup": join_ablation["hash_speedup"],
            },
            {
                "name": "join fusion: nested scan vs index nested-loop",
                "nested_seconds": join_ablation["nested_seconds"],
                "index_seconds": join_ablation["index_seconds"],
                "speedup": join_ablation["index_speedup"],
            },
        ],
        "scan_mode": scan_ablation,
        "join_fusion": join_ablation,
        "queries_per_sec_cached": ablation["queries_per_sec_cached"],
        "queries_per_sec_uncached": ablation["queries_per_sec_uncached"],
        "results_identical": ablation["results_identical"],
        "perf": perf,
    }


if __name__ == "__main__":
    main()
