"""E2 — the section 5.1 set-calculus query, three evaluation strategies.

    {{Emp: e, Mgr: m} where (e ∈ X!Employees) and (d ∈ X!Departments)
     [(m ∈ d!Managers) and (d!Name ∈ e!Depts) and
      (e!Salary > 0.10 * d!Budget)]}

Strategies compared: the reference calculus evaluator, the translated
algebra plan (selection pushdown), and the optimized plan using a
directory on Salary.  All three must return identical rows; the shape
the paper predicts is algebra ≥ calculus and index ≫ scan as data grows.

Run the harness:   python benchmarks/bench_calculus_query.py
Run the timings:   pytest benchmarks/bench_calculus_query.py --benchmark-only
"""

import pytest

from repro.bench import Table, acme_fragment, ratio, stopwatch
from repro.core import MemoryObjectManager
from repro.directories import DirectoryManager
from repro.opal import OpalEngine
from repro.perf import stats
from repro.stdm import (
    Const,
    QueryContext,
    SetQuery,
    optimize,
    translate,
    variables,
)


def paper_query(employees, departments) -> SetQuery:
    e, d, m = variables("e", "d", "m")
    return SetQuery(
        result={"Emp": e.path("Name!Last"), "Mgr": m},
        binders=[
            (e, Const(employees)),
            (d, Const(departments)),
            (m, d.path("Managers")),
        ],
        condition=(
            d.path("Name").in_(e.path("Depts"))
            & (e.path("Salary") > Const(0.10) * d.path("Budget"))
        ),
    )


def salary_query(employees, threshold: int) -> SetQuery:
    e, = variables("e")
    return SetQuery(
        result=e.path("Name!Last"),
        binders=[(e, Const(employees))],
        condition=(e.path("Salary") > threshold),
    )


@pytest.fixture(scope="module")
def dataset():
    om = MemoryObjectManager()
    employees, departments = acme_fragment(om, n_employees=300, n_departments=6)
    dm = DirectoryManager(om)
    dm.create_directory(employees, "Salary")
    return om, dm, employees, departments


def test_three_strategies_agree(dataset):
    om, dm, employees, departments = dataset
    query = paper_query(employees, departments)
    reference = query.evaluate(QueryContext(om))
    algebra = translate(query).run(QueryContext(om))
    optimized, _ = optimize(query, dm)
    assert algebra == reference
    assert sorted(map(str, optimized.run(QueryContext(om)))) == sorted(
        map(str, reference)
    )


def test_bench_calculus_reference(dataset, benchmark):
    om, _dm, employees, departments = dataset
    query = paper_query(employees, departments)
    benchmark(lambda: query.evaluate(QueryContext(om)))


def test_bench_translated_algebra(dataset, benchmark):
    om, _dm, employees, departments = dataset
    query = paper_query(employees, departments)
    benchmark(lambda: translate(query).run(QueryContext(om)))


def test_bench_salary_scan(dataset, benchmark):
    om, _dm, employees, _departments = dataset
    query = salary_query(employees, 38_000)
    benchmark(lambda: translate(query).run(QueryContext(om)))


def test_bench_salary_indexed(dataset, benchmark):
    om, dm, employees, _departments = dataset
    query = salary_query(employees, 38_000)
    plan, choices = optimize(query, dm)
    assert choices
    benchmark(lambda: plan.run(QueryContext(om)))


def literal_fragment(om):
    """The section 5.1 fragment verbatim: Sales/Research, Burns/Peters."""
    def labeled(**elements):
        obj = om.instantiate("Object")
        for name, value in elements.items():
            om.bind(obj, name, value)
        return obj

    def collection(*members):
        obj = om.instantiate("Object")
        for member in members:
            om.bind(obj, om.new_alias(), member)
        return obj

    sales = labeled(Name="Sales", Budget=142_000,
                    Managers=collection("Nathen", "Roberts"))
    research = labeled(Name="Research", Budget=256_500,
                       Managers=collection("Carter"))
    burns = labeled(Name=labeled(First="Ellen", Last="Burns"),
                    Salary=24_650, Depts=collection("Marketing"))
    peters = labeled(Name=labeled(First="Robert", Last="Peters"),
                     Salary=24_000, Depts=collection("Sales", "Planning"))
    return collection(burns, peters), collection(sales, research)


def opal_query_engine(n_employees: int) -> tuple[OpalEngine, object]:
    """An engine whose ``QueryDesk`` runs the same declarative select
    from an *installed* method — so the block's compiled AST (the memo
    anchor for translation and plan caching) persists across calls."""
    store = MemoryObjectManager()
    dm = DirectoryManager(store)
    engine = OpalEngine(store, directory_manager=dm)
    engine.execute("""
        Object subclass: #Employee instVarNames: #(name salary).
        Employee compile: 'salary ^salary'.
        Employee compile: 'salary: s salary := s'.
        Object subclass: #QueryDesk instVarNames: #(emps).
        QueryDesk compile: 'emps: c emps := c'.
        QueryDesk compile: 'hot ^emps select: [:e | e salary < 500]'
    """)
    engine.execute(f"""
        | emps e desk |
        emps := Bag new.
        1 to: {n_employees} do: [:i |
            e := Employee new.
            e salary: i * 100.
            emps add: e].
        desk := QueryDesk new.
        desk emps: emps.
        World!desk := desk.
        World!emps := emps
    """)
    emps = engine.execute("World!emps")
    dm.create_directory(emps, "salary")
    desk = engine.execute("World!desk")
    return engine, desk


def _result_key(store, selected) -> list:
    """Canonical identity of a select result, for equality checks."""
    return sorted(m.oid for m in store.members_of(selected, None))


def declarative_cache_ablation(n_employees: int, repeat: int) -> dict:
    """Repeated declarative selects, caches on vs off.

    Uncached, every call re-runs the block recognizer (which scans the
    class dictionaries), rebuilds the calculus query and re-plans it;
    cached, the compiled block's memo answers and only the (indexed)
    plan executes.  The two modes must return byte-identical results.
    """
    engine, desk = opal_query_engine(n_employees)
    perf = engine.store.perf

    def run_select():
        return engine.send(desk, "hot")

    perf.enabled = False
    uncached = stopwatch(run_select, repeat)

    perf.enabled = True
    perf.reset_stats()
    run_select()  # prime the translation and plan memos
    cached = stopwatch(run_select, repeat)

    store = engine.store
    assert _result_key(store, cached.result) == _result_key(store, uncached.result)
    speedup = (
        uncached.seconds / cached.seconds if cached.seconds else float("inf")
    )
    return {
        "n_employees": n_employees,
        "uncached_seconds": uncached.seconds,
        "cached_seconds": cached.seconds,
        "queries_per_sec_cached": 1.0 / cached.seconds,
        "queries_per_sec_uncached": 1.0 / uncached.seconds,
        "speedup": speedup,
        "results_identical": True,
        "perf": stats(engine),
    }


def test_declarative_cache_results_identical():
    report = declarative_cache_ablation(n_employees=60, repeat=2)
    assert report["results_identical"]


def main(argv=None) -> dict:
    smoke = argv is not None and "--smoke" in argv
    # the exact section 5.1 instance first
    om = MemoryObjectManager()
    employees, departments = literal_fragment(om)
    rows = paper_query(employees, departments).evaluate(QueryContext(om))
    sample = Table("E2: the paper's query on the section 5.1 fragment",
                   ["Emp", "Mgr"])
    for row in rows:
        sample.add(row["Emp"], row["Mgr"])
    sample.note("employees in a manager's department earning > 10% of budget")
    sample.show()

    sweep = Table(
        "E2: strategy sweep (ms, best of 3)",
        ["employees", "calculus", "algebra", "index plan", "scan/index"],
    )
    for n in (50, 200, 800):
        om = MemoryObjectManager()
        employees, departments = acme_fragment(om, n, 6)
        dm = DirectoryManager(om)
        dm.create_directory(employees, "Salary")
        query = salary_query(employees, 38_000)
        calculus = stopwatch(lambda: query.evaluate(QueryContext(om)), 3)
        algebra = stopwatch(lambda: translate(query).run(QueryContext(om)), 3)
        plan, _ = optimize(query, dm)
        indexed = stopwatch(lambda: plan.run(QueryContext(om)), 3)
        sweep.add(n, calculus.millis, algebra.millis, indexed.millis,
                  ratio(algebra.seconds, indexed.seconds))
    sweep.note("who wins: the directory plan, by a growing factor")
    sweep.show()

    # repeated declarative selects: translation + plan memoization
    ablation = declarative_cache_ablation(
        n_employees=60 if smoke else 300, repeat=10 if smoke else 50
    )
    cache_table = Table(
        "E2: repeated declarative select, caches on vs off",
        ["mode", "per query (ms)", "queries/sec", "vs uncached"],
    )
    cache_table.add("uncached (re-translate + re-plan)",
                    ablation["uncached_seconds"] * 1e3,
                    ablation["queries_per_sec_uncached"], "1.0x")
    cache_table.add("cached (block memo + plan memo)",
                    ablation["cached_seconds"] * 1e3,
                    ablation["queries_per_sec_cached"],
                    ratio(ablation["uncached_seconds"],
                          ablation["cached_seconds"]))
    perf = ablation["perf"]
    cache_table.note(
        f"translation hit rate {perf['translation_cache']['hit_rate']:.3f}, "
        f"plan hit rate {perf['plan_cache']['hit_rate']:.3f}; "
        "results byte-identical across modes"
    )
    cache_table.show()

    return {
        "ablations": [
            {
                "name": "repeated declarative select (indexed, installed method)",
                "uncached_seconds": ablation["uncached_seconds"],
                "cached_seconds": ablation["cached_seconds"],
                "speedup": ablation["speedup"],
            }
        ],
        "queries_per_sec_cached": ablation["queries_per_sec_cached"],
        "queries_per_sec_uncached": ablation["queries_per_sec_uncached"],
        "results_identical": ablation["results_identical"],
        "perf": perf,
    }


if __name__ == "__main__":
    main()
