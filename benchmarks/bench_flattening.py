"""E4 — set-valued attributes vs relational flattening (section 5.2).

Regenerates the children table, then quantifies the paper's
"unavoidable redundancy": flattened storage grows with family size
while STDM keeps one entity, and the subset test that needs two
relational quantifiers stays one construct.

Run the harness:   python benchmarks/bench_flattening.py
Run the timings:   pytest benchmarks/bench_flattening.py --benchmark-only
"""

import pytest

from repro.bench import Table
from repro.stdm import (
    LabeledSet,
    flatten_set_valued,
    unflatten_to_sets,
)


def family(index: int, children: int) -> LabeledSet:
    return LabeledSet.from_nested({
        "Name": {"First": f"F{index}", "Last": f"L{index}"},
        "Children": [f"kid-{index}-{k}" for k in range(children)],
    })


def families(count: int, children: int) -> list[LabeledSet]:
    return [family(i, children) for i in range(count)]


def flattened_cells(entities) -> int:
    attrs, rows = flatten_set_valued(
        entities, ["Name!First", "Name!Last"], "Children", "Child"
    )
    return len(rows) * len(attrs)


def stdm_cells(entities) -> int:
    total = 0
    for entity in entities:
        total += 2  # First, Last stored once
        total += len(entity["Children"])
    return total


def test_paper_example_regenerates():
    robert = LabeledSet.from_nested({
        "Name": {"First": "Robert", "Last": "Peters"},
        "Children": ["Olivia", "Dale", "Paul"],
    })
    attrs, rows = flatten_set_valued(
        [robert], ["Name!First", "Name!Last"], "Children", "Child"
    )
    assert attrs == ["First", "Last", "Child"]
    assert sorted(rows) == [
        ("Robert", "Peters", "Dale"),
        ("Robert", "Peters", "Olivia"),
        ("Robert", "Peters", "Paul"),
    ]


def test_redundancy_grows_with_children():
    """Redundant cells grow linearly in family size; STDM's stay flat."""
    small = families(100, 2)
    large = families(100, 8)
    assert flattened_cells(large) / flattened_cells(small) > 2.5
    overhead_small = flattened_cells(small) / stdm_cells(small)
    overhead_large = flattened_cells(large) / stdm_cells(large)
    assert overhead_large > overhead_small  # redundancy worsens


def test_roundtrip_preserves_entities():
    entities = families(50, 4)
    attrs, rows = flatten_set_valued(
        entities, ["Name!First", "Name!Last"], "Children", "Child"
    )
    back = unflatten_to_sets(attrs, rows, ["First", "Last"], "Child", "Children")
    assert len(back) == 50
    assert all(len(e["Children"]) == 4 for e in back)


def test_bench_flatten(benchmark):
    entities = families(200, 5)
    benchmark(
        flatten_set_valued, entities, ["Name!First", "Name!Last"],
        "Children", "Child",
    )


def test_bench_unflatten(benchmark):
    entities = families(200, 5)
    attrs, rows = flatten_set_valued(
        entities, ["Name!First", "Name!Last"], "Children", "Child"
    )
    benchmark(unflatten_to_sets, attrs, rows, ["First", "Last"], "Child",
              "Children")


def main() -> None:
    robert = family(0, 3)
    attrs, rows = flatten_set_valued(
        [robert], ["Name!First", "Name!Last"], "Children", "Child"
    )
    paper = Table("E4: the flattened children relation", attrs)
    for row in rows:
        paper.add(*row)
    paper.note("the scalar columns repeat on every row")
    paper.show()

    sweep = Table(
        "E4: stored cells, STDM entity vs flattened relation",
        ["families", "children", "STDM cells", "flattened cells", "overhead"],
    )
    for children in (1, 3, 8, 20):
        entities = families(100, children)
        stdm = stdm_cells(entities)
        flat = flattened_cells(entities)
        sweep.add(100, children, stdm, flat, f"{flat / stdm:.2f}x")
    sweep.note("crossover: redundancy exceeds 2x once families have >2 children")
    sweep.show()


if __name__ == "__main__":
    main()
