"""E15 — replacing deletion with history (section 2E).

"A temporal data model replaces deletion by maintaining object history,
thereby exploiting this cost trend [cheap mass storage] by offering
historical access for users."

The harness runs a delete-heavy order-processing workload: orders are
filed, fulfilled, and 'deleted'.  It reports the storage the history
costs versus a hypothetical destructive store, and then answers the
audit queries a destructive store cannot answer at all.

Run the harness:   python benchmarks/bench_deletion_vs_history.py
Run the timings:   pytest benchmarks/bench_deletion_vs_history.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table
from repro.storage import encode_object


def run_order_mill(db, orders: int, batch: int = 10):
    """File and then delete orders in batches; returns (oids, times)."""
    session = db.login()
    session.execute("World!orders := Dictionary new")
    session.commit()
    oids = []
    deleted_at = {}
    for start in range(0, orders, batch):
        block = []
        for index in range(start, min(start + batch, orders)):
            block.append(
                f"World!orders at: 'O{index}' put: "
                f"(Object new at: 'item' put: 'widget-{index}'; yourself)"
            )
        session.execute(". ".join(block))
        session.commit()
        # delete the batch right away (fulfilled orders)
        removals = [
            f"World!orders removeKey: 'O{index}'"
            for index in range(start, min(start + batch, orders))
        ]
        session.execute(". ".join(removals))
        t = session.commit()
        for index in range(start, min(start + batch, orders)):
            deleted_at[f"O{index}"] = t
    session.close()
    return deleted_at


@pytest.fixture(scope="module")
def mill():
    db = GemStone.create(track_count=16_384, track_size=2048)
    deleted_at = run_order_mill(db, orders=60)
    return db, deleted_at


def test_current_state_looks_deleted(mill):
    db, _ = mill
    session = db.login()
    assert session.execute("World!orders size") == 0


def test_every_deleted_order_is_auditable(mill):
    db, deleted_at = mill
    session = db.login()
    for key, t_deleted in list(deleted_at.items())[:10]:
        item = session.execute(
            f"| o | o := World!orders!'{key}' @ {t_deleted - 1}. o at: 'item'"
        )
        assert item == f"widget-{key[1:]}"


def test_deletion_is_a_nil_binding_not_destruction(mill):
    db, deleted_at = mill
    orders = db.store.object(db.login().resolve("orders").oid)
    key = next(iter(deleted_at))
    history = list(orders.history_of(key))
    assert history[-1][1] is None  # the departure
    assert history[0][1] is not None  # the filing


def test_trend_queries_over_history(mill):
    """'Events and trends that led to a particular state' (section 2E)."""
    db, deleted_at = mill
    orders = db.store.object(db.login().resolve("orders").oid)
    lifetime_orders = sum(
        1 for name in orders.elements if str(name).startswith("O")
    )
    assert lifetime_orders == 60  # all 60 visible to trend analysis


def test_bench_audit_query(mill, benchmark):
    db, deleted_at = mill
    session = db.login()
    key, t = next(iter(deleted_at.items()))
    source = f"| o | o := World!orders!'{key}' @ {t - 1}. o at: 'item'"
    benchmark(session.execute, source)


def test_bench_file_and_delete_cycle(benchmark):
    db = GemStone.create(track_count=32_768, track_size=2048)
    session = db.login()
    session.execute("World!orders := Dictionary new")
    session.commit()
    counter = [0]

    def cycle():
        counter[0] += 1
        key = f"O{counter[0]}"
        session.execute(
            f"World!orders at: '{key}' put: "
            f"(Object new at: 'item' put: 'w'; yourself)"
        )
        session.commit()
        session.execute(f"World!orders removeKey: '{key}'")
        return session.commit()

    benchmark.pedantic(cycle, rounds=25, iterations=1)


def main() -> None:
    db = GemStone.create(track_count=16_384, track_size=2048)
    deleted_at = run_order_mill(db, orders=60)
    session = db.login()

    orders_obj = db.store.object(session.resolve("orders").oid)
    record_bytes = len(encode_object(orders_obj))
    # a destructive store would keep only the (empty) current state
    destructive_bytes = len(encode_object(
        type(orders_obj)(orders_obj.oid, orders_obj.class_oid)
    ))

    cost = Table("E15: what history costs on a delete-heavy workload",
                 ["metric", "with history", "destructive store"])
    cost.add("orders visible now", session.execute("World!orders size"), 0)
    cost.add("orders auditable", len(deleted_at), 0)
    cost.add("orders-object record bytes", record_bytes, destructive_bytes)
    cost.note("the paper's bet: that byte gap is what cheap mass storage buys")
    cost.show()

    key, t = next(iter(deleted_at.items()))
    audit = Table("E15: audit queries a destructive store cannot answer",
                  ["query", "answer"])
    audit.add(f"{key} just before deletion",
              session.execute(
                  f"| o | o := World!orders!'{key}' @ {t - 1}. o at: 'item'"))
    audit.add(f"when was {key} deleted",
              next(time for time, value
                   in orders_obj.history_of(key) if value is None))
    audit.add("orders ever filed",
              sum(1 for name in orders_obj.elements
                  if str(name).startswith("O")))
    audit.show()


if __name__ == "__main__":
    main()
