"""Observability overhead: the disabled-tracing tax must stay under 5%.

The contract in ``docs/observability.md`` is that wiring a database to
``repro.obs`` costs nothing you can measure while tracing is off: every
instrumented call site guards with one attribute load (``obs is None``
or ``tracer.enabled``) and allocates no span.  This harness proves the
contract on the send-heavy E-send workload (``bench_send_cache``),
driven through ``engine.execute`` so the instrumented entry point runs
once per block:

* **bare** — the engine's ``obs`` is None (the pre-observability shape);
* **obs-off** — an :class:`~repro.obs.Observability` attached, tracing
  disabled (the production default);
* **obs-on** — tracing enabled, for scale (not asserted: spans are
  *meant* to cost).

The harness fails (raises) if obs-off exceeds ``OVERHEAD_BUDGET`` over
bare.  Timings are best-of-``repeat`` and the two asserted modes are
measured interleaved, so a background hiccup cannot charge one side.

Run it:  python benchmarks/bench_obs_overhead.py [--smoke]
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_send_cache import DEPTH, build_engine  # noqa: E402

from repro.bench import Table, observability_metrics, stopwatch  # noqa: E402
from repro.obs import Observability  # noqa: E402

#: the acceptance budget: disabled-tracing overhead vs the bare engine
OVERHEAD_BUDGET = 0.05


def _workload(engine, loops: int, rounds: int) -> int:
    """*rounds* blocks of OPAL, each pumping the send loop *loops* times."""
    total = 0
    for _ in range(rounds):
        total += engine.execute(f"(World!probe) pump: {loops}")
    return total


def _measure(modes: dict, loops: int, rounds: int, repeat: int) -> dict:
    """Best-of-*repeat* per mode, with the passes interleaved."""
    best = {name: float("inf") for name in modes}
    expected = None
    for _ in range(repeat):
        for name, engine in modes.items():
            timing = stopwatch(lambda e=engine: _workload(e, loops, rounds))
            best[name] = min(best[name], timing.seconds)
            if expected is None:
                expected = timing.result
            assert timing.result == expected, f"{name} computed a different sum"
    return best


def main(argv=None) -> dict:
    smoke = argv is not None and "--smoke" in argv
    loops = 200 if smoke else 2_000
    rounds = 5
    repeat = 3 if smoke else 7

    bare = build_engine()
    bare.obs = None

    guarded = build_engine()
    guarded.obs = Observability(tracing=False)

    traced = build_engine()
    traced.obs = Observability(tracing=True)

    best = _measure(
        {"bare": bare, "obs-off": guarded}, loops, rounds, repeat
    )
    traced_best = _measure({"obs-on": traced}, loops, rounds, repeat)["obs-on"]

    overhead = (best["obs-off"] - best["bare"]) / best["bare"]
    sends = 4 * loops * rounds

    table = Table(
        f"Observability overhead: {sends:,} sends via execute "
        f"(depth {DEPTH})",
        ["mode", "time (ms)", "vs bare"],
    )
    table.add("bare (no obs wired)", best["bare"] * 1e3, "1.000x")
    table.add(
        "obs attached, tracing off",
        best["obs-off"] * 1e3,
        f"{best['obs-off'] / best['bare']:.3f}x",
    )
    table.add(
        "obs attached, tracing ON",
        traced_best * 1e3,
        f"{traced_best / best['bare']:.3f}x",
    )
    table.note(
        f"disabled-tracing overhead {overhead * 100:+.2f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )
    table.show()

    if overhead > OVERHEAD_BUDGET:
        raise AssertionError(
            f"disabled-tracing overhead {overhead * 100:.2f}% exceeds the "
            f"{OVERHEAD_BUDGET * 100:.0f}% budget"
        )

    # embed a real snapshot via the harness hook, so BENCH_results.json
    # carries the same metric names the live API publishes
    from repro import GemStone

    db = GemStone.create()
    session = db.login()
    session.execute("World!nums := Set new")
    for n in range(32):
        session.execute(f"World!nums add: {n}")
    session.commit()
    session.execute("(World!nums) select: [:n | n > 15]")
    session.close()

    spans_recorded = traced.obs.tracer.recorded
    return {
        "ops": sends,
        "bare_seconds": best["bare"],
        "obs_off_seconds": best["obs-off"],
        "obs_on_seconds": traced_best,
        "obs_off_overhead": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "spans_recorded_when_on": spans_recorded,
        "observability": observability_metrics(db),
    }


if __name__ == "__main__":
    main()
