"""Ablation — compaction: what shadow-paging churn costs, and its cure.

The safe-write design (E8) never overwrites live tracks, so updated
objects leave superseded copies co-located with still-live residents:
occupancy grows and clustering decays.  This ablation fragments a tree
with random single-node updates, measures the decay, compacts, and
measures the recovery — quantifying a design consequence the paper's
Commit Manager implies but does not discuss.

Run the harness:   python benchmarks/bench_ablation_compaction.py
Run the timings:   pytest benchmarks/bench_ablation_compaction.py --benchmark-only
"""

import random

import pytest

from repro import GemStone
from repro.bench import Table, ratio, traverse_tree, tree_database

DEPTH, FANOUT = 4, 4


def fragmented_db(churn_commits: int = 150, seed: int = 5):
    db = GemStone.create(track_count=32_768, track_size=2048)
    root = tree_database(db, DEPTH, FANOUT)
    rng = random.Random(seed)
    session = db.login()
    all_oids = [oid for oid in db.store.table.oids()]
    for index in range(churn_commits):
        victim = rng.choice(all_oids)
        obj = db.store.object(victim)
        if obj.has_element("payload"):
            session.session.bind(victim, "payload", f"v{index}" * 10)
            session.commit()
    session.close()
    return db, root


def cold_cost(db, root):
    db.store.flush_caches()
    db.disk.stats.reset()
    traverse_tree(db.store, root, FANOUT)
    return db.disk.stats.reads, db.disk.stats.time_units


def test_churn_fragments_then_compaction_recovers():
    db, root = fragmented_db()
    reads_fragmented, _ = cold_cost(db, root)
    tracks_before = len(db.store.tracks.allocated_tracks())
    reclaimed = db.compact()
    tracks_after = len(db.store.tracks.allocated_tracks())
    reads_compacted, _ = cold_cost(db, root)
    assert reclaimed > 0
    assert tracks_after < tracks_before
    assert reads_compacted < reads_fragmented


def test_compaction_preserves_all_data_and_history():
    db, root = fragmented_db(churn_commits=40)
    stable_root = db.store.object(root.oid)
    history_before = {
        oid: list(db.store.object(oid).elements["payload"].history())
        for oid in db.store.table.oids()
        if db.store.object(oid).has_element("payload")
    }
    db.compact()
    reopened = GemStone.open(db.disk)
    for oid, history in history_before.items():
        assert list(
            reopened.store.object(oid).elements["payload"].history()
        ) == history


def test_compaction_keeps_unreachable_objects():
    """No GC: compaction rewrites unreferenced objects, never drops them."""
    db = GemStone.create(track_count=8192, track_size=2048)
    session = db.login()
    orphan = session.new("Object", keepsake=1)  # never attached to World
    session.commit()
    db.compact()
    assert db.store.object(orphan.oid).value("keepsake") == 1


def test_bench_compaction(benchmark):
    def run():
        db, _root = fragmented_db(churn_commits=60)
        return db.compact()

    benchmark.pedantic(run, rounds=3, iterations=1)


def main() -> None:
    db, root = fragmented_db()
    reads_before, time_before = cold_cost(db, root)
    tracks_before = len(db.store.tracks.allocated_tracks())
    reclaimed = db.compact()
    reads_after, time_after = cold_cost(db, root)
    tracks_after = len(db.store.tracks.allocated_tracks())

    table = Table(
        "Ablation: 150 churn commits on a 341-node tree, then compaction",
        ["state", "tracks allocated", "cold traversal reads", "time units"],
    )
    table.add("fragmented", tracks_before, reads_before, time_before)
    table.add("compacted", tracks_after, reads_after, time_after)
    table.note(f"compaction reclaimed {reclaimed} tracks and cut cold reads "
               f"{ratio(reads_before, reads_after)}")
    table.show()


if __name__ == "__main__":
    main()
