"""E3 — relations as STDM sets (section 5.2's {T1:…, T2:…} example).

Regenerates the paper's relation/set pair exactly, checks the round trip
at scale, and benchmarks both encoding directions.

Run the harness:   python benchmarks/bench_relation_encoding.py
Run the timings:   pytest benchmarks/bench_relation_encoding.py --benchmark-only
"""

import pytest

from repro.bench import Table
from repro.stdm import format_set, relation_to_set, set_to_relation

PAPER_ATTRS = ["A", "B", "C"]
PAPER_ROWS = [(1, 3, 4), (1, 5, 4)]


def big_relation(n: int):
    return ["A", "B", "C", "D"], [
        (i, i % 7, f"v{i % 13}", float(i)) for i in range(n)
    ]


def test_paper_pair_matches():
    encoded = relation_to_set(PAPER_ATTRS, PAPER_ROWS)
    assert format_set(encoded) == (
        "{T1: {A: 1, B: 3, C: 4}, T2: {A: 1, B: 5, C: 4}}"
    )


def test_roundtrip_at_scale():
    attrs, rows = big_relation(2000)
    back_attrs, back_rows = set_to_relation(relation_to_set(attrs, rows))
    assert back_attrs == attrs
    assert back_rows == rows


def test_bench_encode(benchmark):
    attrs, rows = big_relation(2000)
    benchmark(relation_to_set, attrs, rows)


def test_bench_decode(benchmark):
    attrs, rows = big_relation(2000)
    encoded = relation_to_set(attrs, rows)
    benchmark(set_to_relation, encoded)


def main() -> None:
    table = Table("E3: the paper's relation", PAPER_ATTRS)
    for row in PAPER_ROWS:
        table.add(*row)
    table.show()
    print("as an STDM set:")
    print(" ", format_set(relation_to_set(PAPER_ATTRS, PAPER_ROWS)))
    print()

    sizes = Table("E3: round-trip sizes", ["tuples", "set elements", "ok"])
    for n in (10, 1000, 10000):
        attrs, rows = big_relation(n)
        encoded = relation_to_set(attrs, rows)
        back = set_to_relation(encoded)
        sizes.add(n, len(encoded), back == (attrs, rows))
    sizes.show()


if __name__ == "__main__":
    main()
