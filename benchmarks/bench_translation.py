"""E13 — calculus→algebra translation and the optimizer's latitude.

Section 5.1: "We have developed a set algebra, and an algorithm to
translate a set-calculus expression to a set-algebra expression."
Section 4.3: declarative semantics "allows more flexibility in
evaluating queries ... needed to support reasonable optimization."

The harness translates a query suite, prints each plan with and without
directories (the optimizer's choices visible), and benchmarks the
translation itself and the resulting plans.

Run the harness:   python benchmarks/bench_translation.py
Run the timings:   pytest benchmarks/bench_translation.py --benchmark-only
"""

import pytest

from repro.bench import acme_fragment
from repro.core import MemoryObjectManager
from repro.directories import DirectoryManager
from repro.stdm import (
    BindScan,
    Const,
    Filter,
    IndexEq,
    IndexRange,
    QueryContext,
    SetQuery,
    optimize,
    translate,
    variables,
)
from repro.stdm.algebra import collect_operators


def query_suite(employees, departments):
    e, d, m = variables("e", "d", "m")
    return {
        "select by salary": SetQuery(
            result=e,
            binders=[(e, Const(employees))],
            condition=(e.path("Salary") > 30_000),
        ),
        "point lookup": SetQuery(
            result=e.path("Name!Last"),
            binders=[(e, Const(employees))],
            condition=e.path("Salary").eq(24_000),
        ),
        "dependent join": SetQuery(
            result={"mgr": m, "dept": d.path("Name")},
            binders=[(d, Const(departments)), (m, d.path("Managers"))],
        ),
        "the paper's query": SetQuery(
            result={"Emp": e.path("Name!Last"), "Mgr": m},
            binders=[
                (e, Const(employees)),
                (d, Const(departments)),
                (m, d.path("Managers")),
            ],
            condition=(
                d.path("Name").in_(e.path("Depts"))
                & (e.path("Salary") > Const(0.10) * d.path("Budget"))
            ),
        ),
    }


@pytest.fixture(scope="module")
def setup():
    om = MemoryObjectManager()
    employees, departments = acme_fragment(om, 400, 8)
    dm = DirectoryManager(om)
    dm.create_directory(employees, "Salary")
    return om, dm, employees, departments


def test_all_queries_translate_and_agree(setup):
    om, dm, employees, departments = setup
    for name, query in query_suite(employees, departments).items():
        reference = query.evaluate(QueryContext(om))
        translated = translate(query).run(QueryContext(om))
        optimized, _ = optimize(query, dm)
        assert translated == reference, name
        assert sorted(map(str, optimized.run(QueryContext(om)))) == sorted(
            map(str, reference)
        ), name


def test_optimizer_picks_indexes_exactly_where_legal(setup):
    om, dm, employees, departments = setup
    suite = query_suite(employees, departments)
    _, choices = optimize(suite["select by salary"], dm)
    assert [c.kind for c in choices] == ["range"]
    _, choices = optimize(suite["point lookup"], dm)
    assert [c.kind for c in choices] == ["eq"]
    _, choices = optimize(suite["dependent join"], dm)
    assert choices == []  # dependent binder: no single directory applies


def test_plans_have_expected_operators(setup):
    om, dm, employees, departments = setup
    suite = query_suite(employees, departments)
    scan_plan = translate(suite["select by salary"])
    assert any(isinstance(op, Filter) for op in collect_operators(scan_plan))
    assert any(isinstance(op, BindScan) for op in collect_operators(scan_plan))
    indexed_plan, _ = optimize(suite["select by salary"], dm)
    assert any(isinstance(op, IndexRange)
               for op in collect_operators(indexed_plan))
    point_plan, _ = optimize(suite["point lookup"], dm)
    assert any(isinstance(op, IndexEq) for op in collect_operators(point_plan))


def test_bench_translation_itself(setup, benchmark):
    om, _dm, employees, departments = setup
    suite = query_suite(employees, departments)

    def translate_all():
        return [translate(q) for q in suite.values()]

    assert len(benchmark(translate_all)) == 4


def test_bench_optimization_itself(setup, benchmark):
    om, dm, employees, departments = setup
    suite = query_suite(employees, departments)
    benchmark(lambda: [optimize(q, dm) for q in suite.values()])


def test_bench_paper_query_optimized(setup, benchmark):
    om, dm, employees, departments = setup
    query = query_suite(employees, departments)["the paper's query"]
    plan, _ = optimize(query, dm)
    benchmark(lambda: plan.run(QueryContext(om)))


def main() -> None:
    om = MemoryObjectManager()
    employees, departments = acme_fragment(om, 50, 4)
    dm = DirectoryManager(om)
    dm.create_directory(employees, "Salary")
    for name, query in query_suite(employees, departments).items():
        print(f"\nE13 ── {name}")
        print(f"  calculus: {query!r}")
        scan = translate(query)
        scan.run(QueryContext(om))
        print("  naive translation:")
        for line in scan.explain().splitlines():
            print(f"    {line}")
        optimized, choices = optimize(query, dm)
        optimized.run(QueryContext(om))
        print(f"  optimized ({len(choices)} index choice(s)):")
        for line in optimized.explain().splitlines():
            print(f"    {line}")
    print()


if __name__ == "__main__":
    main()
