"""E7 — optimistic concurrency control (section 6).

"The Transaction Manager ... handles concurrent use of the permanent
database in an optimistic manner.  It records accesses to the database
for each session, and validates them for consistency when a transaction
commits."

The harness interleaves read-modify-write transactions over a pool of
objects at varying contention (pool size 1 = everyone fights; large pool
= rarely collide) and reports commit/abort rates; the expected shape is
abort rate rising toward 1 as contention concentrates, with disjoint
workloads aborting never.

Run the harness:   python benchmarks/bench_occ.py
Run the timings:   pytest benchmarks/bench_occ.py --benchmark-only
"""

import random

import pytest

from repro import GemStone
from repro.bench import Table
from repro.errors import OverloadedError, TransactionConflict


def make_pool(db, size: int):
    session = db.login()
    pool = []
    for index in range(size):
        obj = session.new("Object", n=0)
        session.assign(f"slot{index}", obj)
        pool.append(obj.oid)
    session.commit()
    session.close()
    return pool


def run_contention(db, pool, sessions: int, rounds: int, seed: int = 11):
    """Interleaved increments: each round, every session reads one
    random object, then all commit in turn.  Returns (commits, aborts)."""
    rng = random.Random(seed)
    workers = [db.login() for _ in range(sessions)]
    commits = aborts = 0
    for _round in range(rounds):
        picks = [rng.choice(pool) for _ in workers]
        for worker, oid in zip(workers, picks):
            value = worker.session.value_at(oid, "n")
            worker.session.bind(oid, "n", value + 1)
        for worker in workers:
            try:
                worker.commit()
                commits += 1
            except TransactionConflict:
                aborts += 1
            except OverloadedError:
                # a starving session holds commit priority: back off,
                # discard the workspace, and retry in the next round
                worker.abort()
                aborts += 1
    for worker in workers:
        worker.close()
    return commits, aborts


@pytest.fixture(scope="module")
def db():
    return GemStone.create(track_count=8192, track_size=2048)


def test_disjoint_transactions_never_abort(db):
    pool = make_pool(db, 64)
    workers = [db.login() for _ in range(4)]
    for index, worker in enumerate(workers):
        oid = pool[index]  # strictly disjoint slots
        value = worker.session.value_at(oid, "n")
        worker.session.bind(oid, "n", value + 1)
    for worker in workers:
        worker.commit()  # must not raise
        worker.close()


def test_full_contention_serializes_to_one_winner_per_round(db):
    pool = make_pool(db, 1)
    commits, aborts = run_contention(db, pool, sessions=4, rounds=10)
    assert commits == 10  # one winner per round
    assert aborts == 30

    # and the final value equals the number of successful commits
    session = db.login()
    total = sum(
        session.session.value_at(pool[0], "n") for _ in range(1)
    )
    assert total == 10


def test_abort_rate_rises_with_contention(db):
    results = {}
    for pool_size in (1, 16, 256):
        pool = make_pool(db, pool_size)
        commits, aborts = run_contention(db, pool, sessions=4, rounds=25)
        results[pool_size] = aborts / (commits + aborts)
    assert results[1] > results[16] >= results[256]


def test_lost_updates_never_happen(db):
    """Every successful commit's increment survives (serializability)."""
    pool = make_pool(db, 4)
    commits, _aborts = run_contention(db, pool, sessions=3, rounds=20)
    session = db.login()
    total = sum(session.session.value_at(oid, "n") for oid in pool)
    assert total == commits


def test_bench_uncontended_commit(db, benchmark):
    session = db.login()
    counter = session.new("Object", n=0)
    session.assign("benchCounter", counter)
    session.commit()

    def bump():
        value = session.session.value_at(counter.oid, "n")
        session.session.bind(counter.oid, "n", value + 1)
        return session.commit()

    benchmark(bump)


def test_bench_validation_under_history(db, benchmark):
    """Validation cost with a long committed-transaction log behind it."""
    pool = make_pool(db, 8)
    run_contention(db, pool, sessions=4, rounds=10)
    session = db.login()

    def read_only_commit():
        for oid in pool:
            session.session.value_at(oid, "n")
        return session.commit()

    benchmark(read_only_commit)


def main() -> None:
    table = Table(
        "E7: optimistic concurrency, 4 sessions x 25 interleaved rounds",
        ["shared objects", "commits", "aborts", "abort rate", "throughput"],
    )
    for pool_size in (1, 4, 16, 64, 256):
        db = GemStone.create(track_count=8192, track_size=2048)
        pool = make_pool(db, pool_size)
        import time

        start = time.perf_counter()
        commits, aborts = run_contention(db, pool, sessions=4, rounds=25)
        elapsed = time.perf_counter() - start
        table.add(
            pool_size, commits, aborts,
            f"{aborts / (commits + aborts):.2f}",
            f"{commits / elapsed:,.0f} commits/s",
        )
    table.note("contention concentrates -> aborts rise; losers retry, "
               "never block (the optimistic trade)")
    table.show()


if __name__ == "__main__":
    main()
