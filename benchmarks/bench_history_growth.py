"""E11 — no-GC history: storage grows, access stays fast (sections 2E, 6).

"Database objects in the past never go away ... Thus, no garbage
collection need be done on database objects."  The trade the paper makes
explicit: storage grows with every update (mass storage is cheap and
getting cheaper), while any past state stays directly accessible.

The harness updates one element U times and reports: encoded record
size (linear growth), current-value read cost (flat), and @T lookup cost
across the whole history (logarithmic — binary search in the
association table).

Run the harness:   python benchmarks/bench_history_growth.py
Run the timings:   pytest benchmarks/bench_history_growth.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table, history_churn, stopwatch
from repro.core import AssociationTable, MemoryObjectManager
from repro.storage import encode_object


def churned_object(updates: int):
    om = MemoryObjectManager()
    obj = om.instantiate("Object", value=0)
    for index in range(updates):
        om.tick()
        om.bind(obj, "value", index + 1)
    return om, obj


def test_record_size_grows_linearly():
    _om1, small = churned_object(10)
    _om2, large = churned_object(1000)
    ratio = len(encode_object(large)) / len(encode_object(small))
    assert 50 < ratio < 150  # ~linear in history length


def test_every_past_state_remains_readable():
    om, obj = churned_object(500)
    for probe in (2, 100, 499):
        assert om.value_at(obj, "value", probe + 1) == probe


def test_current_read_cost_independent_of_history():
    _om1, small = churned_object(10)
    _om2, large = churned_object(100_000)
    t_small = stopwatch(lambda: small.value_at("value"), 5)
    t_large = stopwatch(lambda: large.value_at("value"), 5)
    assert t_large.seconds < t_small.seconds * 50 + 1e-4


def test_no_object_is_ever_collected():
    db = GemStone.create(track_count=8192, track_size=2048)
    history_churn(db, updates=30)
    oids_before = set(db.store.table.oids())
    session = db.login()
    session.execute("World!churned at: 'value' put: -1")
    session.commit()
    assert oids_before <= set(db.store.table.oids())


def test_bench_current_read_long_history(benchmark):
    _om, obj = churned_object(10_000)
    benchmark(obj.value_at, "value")


def test_bench_past_read_long_history(benchmark):
    _om, obj = churned_object(10_000)
    benchmark(obj.value_at, "value", 5_000)


def test_bench_append_to_long_history(benchmark):
    table = AssociationTable()
    for index in range(10_000):
        table.record(index, index)
    clock = [10_000]

    def append():
        clock[0] += 1
        table.record(clock[0], clock[0])

    benchmark(append)


def main() -> None:
    growth = Table(
        "E11: one element updated U times (no deletion, ever)",
        ["updates", "record bytes", "read now (µs)", "read @T=U/2 (µs)"],
    )
    for updates in (10, 100, 1_000, 10_000):
        om, obj = churned_object(updates)
        size = len(encode_object(obj))
        now = stopwatch(lambda: om.value_at(obj, "value"), 5)
        past = stopwatch(lambda: om.value_at(obj, "value", updates // 2), 5)
        growth.add(updates, size, now.micros, past.micros)
    growth.note("storage linear in history; reads flat/logarithmic — the "
                "paper's trade of cheap storage for universal history")
    growth.show()

    durable = Table("E11: durable history through the full pipeline",
                    ["commits", "tracks used", "all states readable"])
    for updates in (10, 50):
        db = GemStone.create(track_count=16_384, track_size=2048)
        obj = history_churn(db, updates)
        stable = db.store.object(obj.oid)
        readable = all(
            stable.value_at("value", t) is not None
            for t in stable.elements["value"].times()
        )
        durable.add(updates, len(db.store.tracks.allocated_tracks()), readable)
    durable.show()


if __name__ == "__main__":
    main()
