"""E12 — SafeTime: stable reads under concurrent writers (section 5.4).

"A read-only transaction can set its time dial to SafeTime to get the
most recent state for which no currently running transaction can make
changes."

The harness runs a reader dialed to SafeTime while writers churn: every
value the reader sees must belong to one consistent committed state, and
repeated reads at the same SafeTime must be identical even as commits
land.

Run the harness:   python benchmarks/bench_safetime.py
Run the timings:   pytest benchmarks/bench_safetime.py --benchmark-only
"""

import pytest

from repro import GemStone
from repro.bench import Table


def make_pair_db():
    """Two objects whose values are always updated together (an invariant
    a consistent reader must never see broken)."""
    db = GemStone.create(track_count=8192, track_size=2048)
    session = db.login()
    a = session.new("Object", v=0)
    b = session.new("Object", v=0)
    session.assign("a", a)
    session.assign("b", b)
    session.commit()
    session.close()
    return db, a.oid, b.oid


def write_pair(db, a_oid, b_oid, value):
    writer = db.login()
    writer.session.bind(a_oid, "v", value)
    writer.session.bind(b_oid, "v", value)
    writer.commit()
    writer.close()


def test_safetime_reader_sees_consistent_pairs():
    db, a_oid, b_oid = make_pair_db()
    reader = db.login()
    for value in range(1, 20):
        safe = reader.time_dial.set_safe()
        seen_a = reader.session.value_at(a_oid, "v")
        seen_b = reader.session.value_at(b_oid, "v")
        assert seen_a == seen_b  # the invariant holds at every SafeTime
        write_pair(db, a_oid, b_oid, value)
    reader.time_dial.reset()


def test_safetime_is_repeatable_while_writers_commit():
    db, a_oid, b_oid = make_pair_db()
    write_pair(db, a_oid, b_oid, 7)
    reader = db.login()
    safe = reader.time_dial.set_safe()
    first = reader.session.value_at(a_oid, "v")
    for value in (8, 9, 10):
        write_pair(db, a_oid, b_oid, value)
    # the dial is pinned: the same state, byte for byte
    assert reader.session.value_at(a_oid, "v") == first
    reader.time_dial.reset()
    assert reader.session.value_at(a_oid, "v") == 10


def test_uncommitted_writes_never_reach_safetime_readers():
    db, a_oid, b_oid = make_pair_db()
    writer = db.login()
    writer.session.bind(a_oid, "v", 999)  # never committed
    reader = db.login()
    reader.time_dial.set_safe()
    assert reader.session.value_at(a_oid, "v") == 0
    writer.abort()


def test_safetime_advances_with_commits():
    db, a_oid, b_oid = make_pair_db()
    reader = db.login()
    before = reader.safe_time()
    write_pair(db, a_oid, b_oid, 1)
    assert reader.safe_time() == before + 1


def test_bench_safetime_read(benchmark):
    db, a_oid, b_oid = make_pair_db()
    write_pair(db, a_oid, b_oid, 1)
    reader = db.login()
    reader.time_dial.set_safe()
    benchmark(reader.session.value_at, a_oid, "v")


def test_bench_dial_set_safe(benchmark):
    db, a_oid, b_oid = make_pair_db()
    reader = db.login()
    benchmark(reader.time_dial.set_safe)


def main() -> None:
    db, a_oid, b_oid = make_pair_db()
    reader = db.login()
    table = Table(
        "E12: SafeTime reader under writer churn (invariant: a == b)",
        ["round", "SafeTime", "reader sees a", "reader sees b", "consistent"],
    )
    for value in range(1, 8):
        safe = reader.time_dial.set_safe()
        seen_a = reader.session.value_at(a_oid, "v")
        seen_b = reader.session.value_at(b_oid, "v")
        table.add(value, safe, seen_a, seen_b, seen_a == seen_b)
        write_pair(db, a_oid, b_oid, value)
    table.note("every row consistent: no running transaction can change "
               "the dialed state")
    table.show()


if __name__ == "__main__":
    main()
