"""The front door's staged serving loop: admission at arrival,
deadlines re-checked at dequeue, replays answered from the window, and
responses legitimately overtaking one another."""

import asyncio
import json
import pathlib

import pytest

from repro import GemStone
from repro.errors import OverloadedError
from repro.executor import protocol
from repro.executor.executor import Executor
from repro.executor.protocol import FrameType
from repro.faults.plan import FaultClock
from repro.frontdoor import AsyncHostConnection, FrontDoor
from repro.govern.admission import AdmissionController

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "docs" / "observability_schema.json"
)


def run(coroutine):
    return asyncio.run(coroutine)


def fresh_db():
    return GemStone.create(track_count=1024, track_size=1024)


async def raw_session(door):
    """A logged-in raw link (host drives envelopes by hand)."""
    host = door.connect()
    await host.send(protocol.encode_seq(
        1, protocol.encode_login("DataCurator", "swordfish")
    ))
    raw = await host.receive()
    assert protocol.decode_frame(raw).type is FrameType.LOGIN_OK
    return host


class TestConstruction:
    def test_replay_window_must_cover_the_session_window(self):
        with pytest.raises(ValueError):
            FrontDoor(fresh_db(), window=8, replay_window=8)

    def test_registers_with_observability(self):
        database = fresh_db()
        door = FrontDoor(database)
        assert door in database.obs._frontdoors


class TestHappyPath:
    def test_login_pipelined_executes_commit_logout(self):
        async def scenario():
            database = fresh_db()
            door = FrontDoor(database)
            conn = await AsyncHostConnection.open(door.connect(), window=4)
            await conn.login("DataCurator", "swordfish")
            pending = [
                await conn.post_execute(
                    "World!total := (World!total ifNil: [0]) + 1"
                )
                for _ in range(6)
            ]
            for task in pending:
                await task
            assert await conn.commit() is not None
            assert (await conn.execute("World!total"))[0] == 6
            await conn.logout()
            await conn.close()
            assert door.requests >= 9
            assert door.links_served == 1

        run(scenario())

    def test_many_links_interleave_on_one_loop(self):
        async def scenario():
            database = fresh_db()
            door = FrontDoor(database)
            conns = [
                await AsyncHostConnection.open(door.connect(), window=2)
                for _ in range(16)
            ]
            for conn in conns:
                await conn.login("DataCurator", "swordfish")
            results = await asyncio.gather(*[
                conn.execute(f"{index} * 2")
                for index, conn in enumerate(conns)
            ])
            assert [value for value, _ in results] == [
                index * 2 for index in range(16)
            ]
            for conn in conns:
                await conn.logout()
                await conn.close()
            for _ in range(5):
                await asyncio.sleep(0)  # let each serve() observe its close
            assert door.links_served == 16
            assert door.active_links == 0

        run(scenario())


class TestOverload:
    def test_saturation_degrades_into_typed_overloaded_frames(self):
        async def scenario():
            database = fresh_db()
            clock = FaultClock()
            admission = AdmissionController(
                clock=clock, queue_capacity=3.0, drain_rate=1.0
            )
            door = FrontDoor(database, admission=admission)
            host = await raw_session(door)
            for seq in range(2, 12):
                await host.send(protocol.encode_seq(
                    seq, protocol.encode_execute("1 + 1")
                ))
            outcomes = {FrameType.RESULT: 0, FrameType.OVERLOADED: 0}
            for _ in range(10):
                frame = protocol.decode_frame(await host.receive())
                outcomes[frame.type] += 1
                if frame.type is FrameType.OVERLOADED:
                    assert frame.fields["retry_after"] > 0
            assert outcomes[FrameType.OVERLOADED] > 0
            assert outcomes[FrameType.RESULT] > 0
            assert door.shed_overload == outcomes[FrameType.OVERLOADED]
            host.close()
            await door.close()

        run(scenario())

    def test_client_backs_off_and_completes_under_overload(self):
        async def scenario():
            database = fresh_db()
            clock = FaultClock()
            admission = AdmissionController(
                clock=clock, queue_capacity=4.0, drain_rate=2.0
            )
            door = FrontDoor(database, admission=admission)
            conn = await AsyncHostConnection.open(
                door.connect(), window=4, clock=clock, overload_attempts=20
            )
            await conn.login("DataCurator", "swordfish")
            pending = [
                await conn.post_execute(f"{n} + 1") for n in range(12)
            ]
            values = [(await task)[0] for task in pending]
            assert values == [n + 1 for n in range(12)]
            assert conn.overload_backoffs > 0  # sheds happened, all typed
            await conn.logout()
            await conn.close()

        run(scenario())

    def test_exhausted_backoffs_raise_the_typed_error(self):
        async def scenario():
            database = fresh_db()
            clock = FaultClock()
            admission = AdmissionController(clock=clock, max_sessions=1)
            door = FrontDoor(database, admission=admission)
            first = await AsyncHostConnection.open(
                door.connect(), clock=clock
            )
            await first.login("DataCurator", "swordfish")
            second = await AsyncHostConnection.open(
                door.connect(), clock=clock, overload_attempts=2
            )
            with pytest.raises(OverloadedError):
                await second.login("DataCurator", "swordfish")
            await first.logout()
            await first.close()
            await second.close()

        run(scenario())

    def test_closed_link_frees_its_session_slot(self):
        """A host that vanishes without LOGOUT must not leak its
        admission slot: serve()'s cleanup hangs up the session."""

        async def scenario():
            database = fresh_db()
            clock = FaultClock()
            admission = AdmissionController(clock=clock, max_sessions=1)
            door = FrontDoor(database, admission=admission)
            first = await AsyncHostConnection.open(door.connect(), clock=clock)
            await first.login("DataCurator", "swordfish")
            assert admission.sessions == 1
            await first.close()  # the link dies, no LOGOUT was sent
            for _ in range(5):
                await asyncio.sleep(0)  # let serve() observe the close
            assert admission.sessions == 0
            second = await AsyncHostConnection.open(door.connect(), clock=clock)
            assert await second.login("DataCurator", "swordfish") is not None
            await second.logout()
            await second.close()

        run(scenario())


class TestDeadlines:
    def test_expired_work_is_shed_at_dequeue_not_executed(self, monkeypatch):
        """A request whose deadline passes *while it queues* must be
        answered with a typed error, not run: the client gave up."""

        async def scenario():
            database = fresh_db()
            clock = FaultClock()
            admission = AdmissionController(clock=clock)
            door = FrontDoor(database, admission=admission)
            original_apply = Executor.apply

            def slow_apply(self, frame):
                clock.advance(10.0)  # each request takes 10 clock units
                return original_apply(self, frame)

            monkeypatch.setattr(Executor, "apply", slow_apply)
            host = await raw_session(door)
            deadline = clock.now + 1.0  # patient enough for the queue,
            for seq in (2, 3):          # not for being behind seq 2
                await host.send(protocol.encode_seq(
                    seq, protocol.encode_execute("1 + 1"),
                    deadline=deadline,
                ))
            first = protocol.decode_frame(await host.receive())
            second = protocol.decode_frame(await host.receive())
            assert first.type is FrameType.RESULT
            assert second.type is FrameType.ERROR
            assert second.fields["error_class"] == "DeadlineExceeded"
            assert door.shed_deadline == 1
            host.close()
            await door.close()

        run(scenario())


class TestReplay:
    def test_duplicate_request_replays_the_sealed_response(self):
        async def scenario():
            database = fresh_db()
            door = FrontDoor(database)
            host = await raw_session(door)
            envelope = protocol.encode_seq(
                2,
                protocol.encode_execute(
                    "World!hits := (World!hits ifNil: [0]) + 1"
                ),
            )
            await host.send(envelope)
            first = await host.receive()
            await host.send(envelope)  # the network redelivered it
            second = await host.receive()
            assert first == second
            assert door.replays == 1
            await host.send(protocol.encode_seq(
                3, protocol.encode_execute("World!hits")
            ))
            readback = protocol.decode_frame(await host.receive())
            assert readback.fields["value"] == 1  # applied exactly once
            host.close()
            await door.close()

        run(scenario())


class TestOvertaking:
    def test_shed_answer_overtakes_queued_work(self):
        """Refusals are answered at arrival while admitted work is still
        queued, so the refusal's response legitimately arrives first —
        the reason correlation is by seq, never arrival order."""

        async def scenario():
            database = fresh_db()
            clock = FaultClock()
            admission = AdmissionController(
                clock=clock, queue_capacity=1.0, drain_rate=1.0
            )
            door = FrontDoor(database, admission=admission)
            host = await raw_session(door)
            await host.send(protocol.encode_seq(
                2, protocol.encode_execute("1 + 1")
            ))  # admitted (fills the bucket), queued for the dispatcher
            await host.send(protocol.encode_seq(
                3, protocol.encode_execute("2 + 2")
            ))  # refused at arrival, answered immediately
            first = protocol.decode_frame(await host.receive())
            second = protocol.decode_frame(await host.receive())
            assert (first.seq, first.type) == (3, FrameType.OVERLOADED)
            assert (second.seq, second.type) == (2, FrameType.RESULT)
            host.close()
            await door.close()

        run(scenario())


class TestSnapshot:
    def test_frontdoor_section_matches_the_pinned_schema(self):
        async def scenario():
            database = fresh_db()
            door = FrontDoor(database)
            conn = await AsyncHostConnection.open(door.connect())
            await conn.login("DataCurator", "swordfish")
            await conn.execute("1 + 1")
            await conn.logout()
            await conn.close()
            await door.close()
            return database

        database = run(scenario())
        from repro.obs.schema import validate

        snapshot = database.observability()
        assert "frontdoor" in snapshot
        schema = json.loads(SCHEMA_PATH.read_text())
        validate(snapshot, schema)
        validate(snapshot["frontdoor"], schema["properties"]["frontdoor"])
        section = snapshot["frontdoor"]
        assert section["requests"] >= 3
        assert section["latency_ms"]["count"] >= 3
        assert section["latency_ms"]["p99"] >= section["latency_ms"]["p50"]

    def test_section_is_absent_without_a_front_door(self):
        snapshot = fresh_db().observability()
        assert "frontdoor" not in snapshot
        schema = json.loads(SCHEMA_PATH.read_text())
        assert "frontdoor" in schema["properties"]
        assert "frontdoor" not in schema["required"]

    def test_dashboard_renders_the_front_door_section(self):
        async def scenario():
            database = fresh_db()
            door = FrontDoor(database)
            conn = await AsyncHostConnection.open(door.connect())
            await conn.login("DataCurator", "swordfish")
            await conn.execute("1 + 1")
            await conn.logout()
            await conn.close()
            await door.close()
            return database

        database = run(scenario())
        from repro.tools.dashboard import render_dashboard

        text = render_dashboard(database)
        assert "front door" in text
        assert "shed: overload" in text
