"""The awaitable duplex link: framing, flow control, close semantics."""

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.frontdoor import make_async_link


def run(coroutine):
    return asyncio.run(coroutine)


class TestFraming:
    def test_frames_round_trip_in_order(self):
        async def scenario():
            a, b = make_async_link()
            await a.send(b"hello")
            await a.send(b"world")
            assert await b.receive() == b"hello"
            assert await b.receive() == b"world"
            assert a.frames_sent == 2

        run(scenario())

    def test_duplex_directions_are_independent(self):
        async def scenario():
            a, b = make_async_link()
            await a.send(b"ping")
            await b.send(b"pong")
            assert await b.receive() == b"ping"
            assert await a.receive() == b"pong"

        run(scenario())

    def test_empty_frame_survives(self):
        async def scenario():
            a, b = make_async_link()
            await a.send(b"")
            assert await b.receive() == b""

        run(scenario())

    def test_poll_returns_buffered_frame_or_none(self):
        async def scenario():
            a, b = make_async_link()
            assert b.poll() is None
            await a.send(b"queued")
            assert b.poll() == b"queued"
            assert b.poll() is None

        run(scenario())


class TestFlowControl:
    def test_send_parks_until_reader_drains(self):
        """A bounded link exerts back-pressure: the writer must park
        once the buffer fills, and resume when the reader catches up."""

        async def scenario():
            a, b = make_async_link(capacity=64)
            sent = []

            async def writer():
                for index in range(20):
                    await a.send(bytes(32))  # 36 bytes framed
                    sent.append(index)

            task = asyncio.get_running_loop().create_task(writer())
            await asyncio.sleep(0)
            assert len(sent) < 20  # parked against the 64-byte cap
            received = 0
            while received < 20:
                frame = await b.receive()
                assert frame == bytes(32)
                received += 1
            await task
            assert len(sent) == 20

        run(scenario())


class TestClose:
    def test_receive_returns_none_after_close_and_drain(self):
        async def scenario():
            a, b = make_async_link()
            await a.send(b"last")
            a.close()
            assert await b.receive() == b"last"
            assert await b.receive() is None
            assert b.peer_closed

        run(scenario())

    def test_close_wakes_a_parked_reader(self):
        async def scenario():
            a, b = make_async_link()

            async def reader():
                return await b.receive()

            task = asyncio.get_running_loop().create_task(reader())
            await asyncio.sleep(0)
            a.close()
            assert await task is None

        run(scenario())

    def test_send_after_close_raises_typed_error(self):
        async def scenario():
            a, b = make_async_link()
            a.close()
            with pytest.raises(ProtocolError):
                await a.send(b"too late")

        run(scenario())

    def test_truncated_tail_on_closed_link_is_typed(self):
        """A partial frame stranded by a close must surface as a
        ProtocolError, never hang or silently vanish."""

        async def scenario():
            a, b = make_async_link()
            # write a frame header promising more bytes than arrive
            await a._out.write(b"\x10\x00\x00\x00half")
            a.close()
            with pytest.raises(ProtocolError):
                await b.receive()

        run(scenario())
