"""Pipelined exactly-once under loss, duplication and reordering.

The property the whole front door stack exists to uphold: with a
pipelining window of requests in flight over a link that drops,
duplicates, truncates and reorders frames (the seeded fault plans of
:mod:`repro.faults`), every logical request is applied **exactly once**
— no double-applies from duplicated or resent frames, no lost work, no
untyped failures, and the run terminates.  Increment-counter workloads
make double-apply visible: N increments committed must read back as
exactly N.
"""

import asyncio

import pytest

from repro import GemStone
from repro.errors import GemStoneError
from repro.faults import FaultPlan, FaultSpec
from repro.frontdoor import (
    AsyncHostConnection,
    FaultyAsyncLink,
    FrontDoor,
    make_async_link,
)

#: the full mix: every fault class the link layer can produce
FULL_MIX = FaultSpec(
    drop_rate=0.12, duplicate_rate=0.15, reorder_rate=0.15,
    truncate_rate=0.08,
)


def fresh_db():
    return GemStone.create(track_count=1024, track_size=1024)


async def faulty_connection(door, plan, window):
    """A pipelined client whose link misbehaves in both directions."""
    host_end, gem_end = make_async_link()
    door.spawn(FaultyAsyncLink(gem_end, plan))
    return await AsyncHostConnection.open(
        FaultyAsyncLink(host_end, plan),
        window=window,
        max_attempts=20,
        reply_timeout=0.02,
    )


async def exactly_once_run(seed, spec, increments=20, window=4):
    database = fresh_db()
    door = FrontDoor(database)
    plan = FaultPlan(seed=seed, spec=spec)
    conn = await faulty_connection(door, plan, window)
    await conn.login("DataCurator", "swordfish")
    pending = [
        await conn.post_execute(
            "World!total := (World!total ifNil: [0]) + 1"
        )
        for _ in range(increments)
    ]
    for task in pending:  # every request reaches a terminal outcome
        await task
    assert await conn.commit() is not None
    total = (await conn.execute("World!total"))[0]
    await conn.logout()
    await conn.close()
    await door.close()
    return total, conn, door


class TestPipelinedExactlyOnce:
    @pytest.mark.parametrize("seed", [1, 2, 3, 7, 11])
    def test_n_increments_read_back_as_n(self, seed):
        total, conn, door = asyncio.run(
            exactly_once_run(seed, FULL_MIX)
        )
        assert total == 20  # zero double-applies, zero lost work

    def test_faults_actually_fired(self):
        """The property is vacuous on a clean link; prove the schedule
        really exercised retries and the replay window."""
        totals = []
        retries = 0
        replays = 0
        for seed in (1, 2, 3, 7, 11):
            total, conn, door = asyncio.run(
                exactly_once_run(seed, FULL_MIX)
            )
            totals.append(total)
            retries += conn.retries
            replays += door.replays
        assert totals == [20] * 5
        assert retries > 0  # drops/truncations forced resends
        assert replays > 0  # duplicates were answered from the window

    @pytest.mark.parametrize("seed", [5, 13])
    def test_interleaved_commits_under_faults(self, seed):
        """Commits pipelined between increments: each applied once, so
        the committed value marches up monotonically."""

        async def scenario():
            database = fresh_db()
            door = FrontDoor(database)
            plan = FaultPlan(seed=seed, spec=FULL_MIX)
            conn = await faulty_connection(door, plan, window=4)
            await conn.login("DataCurator", "swordfish")
            times = []
            for _round in range(5):
                increment = await conn.post_execute(
                    "World!total := (World!total ifNil: [0]) + 1"
                )
                await increment  # happens-before the commit below
                times.append(await conn.commit())
            total = (await conn.execute("World!total"))[0]
            await conn.logout()
            await conn.close()
            await door.close()
            return times, total

        times, total = asyncio.run(scenario())
        assert all(t is not None for t in times)
        assert times == sorted(times)
        assert total == 5

    def test_no_untyped_errors_escape(self):
        """Whatever the link does, the only exceptions a caller can see
        are typed GemStone errors — never raw internals."""

        async def scenario():
            database = fresh_db()
            door = FrontDoor(database)
            plan = FaultPlan(
                seed=23,
                spec=FaultSpec(drop_rate=0.35, duplicate_rate=0.2,
                              reorder_rate=0.2, truncate_rate=0.15),
            )
            conn = await faulty_connection(door, plan, window=3)
            outcomes = []
            try:
                await conn.login("DataCurator", "swordfish")
                pending = [
                    await conn.post_execute(f"{n} + 1") for n in range(12)
                ]
                for task in pending:
                    try:
                        outcomes.append((await task)[0])
                    except GemStoneError as error:
                        outcomes.append(error)  # typed: acceptable
                await conn.logout()
            except GemStoneError as error:
                outcomes.append(error)
            await conn.close()
            await door.close()
            return outcomes

        outcomes = asyncio.run(scenario())
        assert outcomes  # the run terminated with terminal outcomes
        for outcome in outcomes:
            assert isinstance(outcome, (int, GemStoneError))
