"""Loadgen over a real localhost socket server (satellite of repro.net).

200 concurrent sessions dial the front door over TCP; the governance
claim must hold unchanged across the kernel boundary — every session
terminal, zero untyped errors, zero hung sessions.
"""

from __future__ import annotations

import asyncio

from repro.frontdoor.loadgen import clean, run_load


def test_tcp_loadgen_200_sessions_zero_untyped_zero_hung():
    report = asyncio.run(run_load(
        sessions=200,
        rate=600.0,
        requests=4,
        max_sessions=48,
        queue_capacity=256.0,
        drain_rate=64.0,
        track_count=2_048,
        wall_limit=120.0,
        tcp=True,
    ))
    assert clean(report), report["outcomes"]
    assert report["config"]["transport"] == "tcp"
    outcomes = report["outcomes"]
    assert outcomes["untyped_errors"] == 0
    assert outcomes["hung"] == 0
    # the run did real work over the socket, not vacuous passes; any
    # non-completed session must have ended in a *typed* outcome
    assert outcomes["completed"] >= 150
    terminal = sum(
        outcomes[name]
        for name in ("completed", "overloaded", "deadline",
                     "link_timeouts", "typed_errors")
    )
    assert terminal == 200
    assert outcomes["executes"] > 0
