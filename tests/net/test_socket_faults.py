"""Seeded socket-fault schedules over real TCP: exactly-once survives.

The link-level fault plans (`repro.faults.link`) perturb whole frames;
these schedules fail *under* the framing layer the way sockets really
do — disconnect mid-frame (a seeded prefix of the length-prefixed
bytes, then RST), stalled reads, and 1-byte dribbles that exercise
every partial-read path.  The property is unchanged from the in-memory
suite: N pipelined increments committed over the faulty wire must read
back as exactly N — the HELLO resume handshake plus the SEQ replay
window keep reconnect-resends exactly-once — and the run must end with
zero untyped failures.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.db import GemStone
from repro.faults import SocketFaultSpec, TransportFaults
from repro.frontdoor.client import AsyncHostConnection
from repro.frontdoor.server import FrontDoor
from repro.net import serve_frontdoor, server_port, stream_link_factory

#: the three socket-native failure modes, alone and together
SCHEDULES = {
    "disconnect": SocketFaultSpec(disconnect_rate=0.12, max_disconnects=6),
    "stall": SocketFaultSpec(stall_rate=0.35, stall_seconds=0.01),
    "dribble": SocketFaultSpec(dribble_rate=0.3),
    "mixed": SocketFaultSpec(
        disconnect_rate=0.08, stall_rate=0.2, dribble_rate=0.2,
        stall_seconds=0.01, max_disconnects=4,
    ),
}

INCREMENTS = 16


async def _exactly_once_over_faulty_tcp(spec, seed, window=4):
    database = GemStone.create(track_count=2_048, track_size=1024)
    door = FrontDoor(database)
    server = await serve_frontdoor(door, registry=database.obs.registry)
    faults = TransportFaults(spec, seed=seed)
    factory = stream_link_factory(
        "127.0.0.1", server_port(server), f"flt{seed}",
        registry=database.obs.registry, wrap=faults.wrap,
    )
    connection = await AsyncHostConnection.open(
        None, link_factory=factory, window=window,
        max_attempts=30, reply_timeout=0.05,
    )
    try:
        await connection.login("DataCurator", "swordfish")
        pending = [
            await connection.post_execute(
                "World!total := (World!total ifNil: [0]) + 1"
            )
            for _ in range(INCREMENTS)
        ]
        for task in pending:  # every request reaches a terminal outcome
            await task
        assert await connection.commit() is not None
        total = (await connection.execute("World!total"))[0]
        await connection.logout()
    finally:
        await connection.close()
        server.close()
        await server.wait_closed()
        await door.close()
    return total, faults, connection, door


class TestSocketFaultSchedules:
    @pytest.mark.parametrize("mode", sorted(SCHEDULES))
    @pytest.mark.parametrize("seed", [1, 7, 2026])
    def test_n_increments_read_back_as_n(self, mode, seed):
        total, faults, connection, door = asyncio.run(
            _exactly_once_over_faulty_tcp(SCHEDULES[mode], seed)
        )
        assert total == INCREMENTS, (
            f"{mode}/{seed}: exactly-once broken "
            f"(disconnects={faults.disconnects} stalls={faults.stalls} "
            f"dribbles={faults.dribbles})"
        )

    def test_each_schedule_actually_fired_its_fault(self):
        """The property is vacuous on a clean wire; prove each seeded
        schedule injected its failure mode and forced real recovery."""
        fired = {name: 0 for name in SCHEDULES}
        reconnects = 0
        for seed in (1, 7, 2026):
            for name, spec in SCHEDULES.items():
                total, faults, connection, door = asyncio.run(
                    _exactly_once_over_faulty_tcp(spec, seed)
                )
                assert total == INCREMENTS
                fired["disconnect"] += faults.disconnects
                fired["stall"] += faults.stalls
                fired["dribble"] += faults.dribbles
                if name in ("disconnect", "mixed"):
                    reconnects += connection.reconnects
        assert fired["disconnect"] > 0
        assert fired["stall"] > 0
        assert fired["dribble"] > 0
        # disconnect-mid-frame forced redials that re-HELLO'd the session
        assert reconnects > 0


class TestReconnectUnderPipelining:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_transport_yanked_mid_window_resends_unacked(self, seed):
        """Abort the live transport with a full pipeline window in
        flight: the client re-dials, the HELLO token rebinds the same
        session, unacked seqs are resent, and the replay window keeps
        the resends exactly-once."""

        async def scenario():
            database = GemStone.create(track_count=2_048, track_size=1024)
            door = FrontDoor(database)
            server = await serve_frontdoor(
                door, registry=database.obs.registry
            )
            factory = stream_link_factory(
                "127.0.0.1", server_port(server), f"yank{seed}",
                registry=database.obs.registry,
            )
            connection = await AsyncHostConnection.open(
                None, link_factory=factory, window=4,
                max_attempts=30, reply_timeout=0.05,
            )
            try:
                await connection.login("DataCurator", "swordfish")
                pending = []
                for n in range(INCREMENTS):
                    pending.append(await connection.post_execute(
                        "World!total := (World!total ifNil: [0]) + 1"
                    ))
                    if n == seed % 8:  # window full, responses in flight
                        connection.host_end.abort()
                for task in pending:
                    await task
                assert await connection.commit() is not None
                total = (await connection.execute("World!total"))[0]
                await connection.logout()
            finally:
                await connection.close()
                server.close()
                await server.wait_closed()
                await door.close()
            return total, connection, door

        total, connection, door = asyncio.run(scenario())
        assert total == INCREMENTS
        assert connection.reconnects >= 1
        # the resent tail was answered from the replay window or
        # suppressed as an in-flight duplicate, never applied twice
        assert door.replays + door.suppressed_duplicates >= 0
