"""Framing and failure semantics of the blocking TCP transport.

``TcpLinkEnd`` must honour the in-memory ``LinkEnd`` contract on a real
socket: length-prefixed frames survive partial reads and writes, an
expired receive budget returns ``None``, clean EOF is "peer closed",
EOF mid-frame is the same ``ProtocolError("truncated frame on closed
link")``, and a dial that cannot complete is a typed ``LinkTimeout``.
On top of that, the synchronous ``TcpHostConnection`` must run the full
session protocol — HELLO resume included — against a front door served
on a background event loop, and survive its transport being yanked.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.db import GemStone
from repro.errors import LinkTimeout, ProtocolError
from repro.frontdoor.server import FrontDoor
from repro.net import (
    Listener,
    TcpHostConnection,
    dial,
    serve_frontdoor,
    server_port,
)
from repro.obs import MetricsRegistry

_HEADER = struct.Struct("<I")


def _pair(registry=None):
    """A connected (client, server) pair of real loopback link ends."""
    listener = Listener(receive_timeout=0.2, registry=registry)
    try:
        client = dial(
            "127.0.0.1", listener.port,
            receive_timeout=0.2, registry=registry,
        )
        server = listener.accept(timeout=2.0)
        assert server is not None
    finally:
        listener.close()
    return client, server


class TestFraming:
    def test_roundtrip_both_ways_including_empty_and_large(self):
        client, server = _pair()
        try:
            frames = [b"", b"x", b"hello " * 3, b"\x00" * 70_000]
            for frame in frames:
                client.send(frame)
                assert server.receive(timeout=2.0) == frame
            server.send(b"reply")
            assert client.receive(timeout=2.0) == b"reply"
            assert client.frames_sent == len(frames)
            assert server.frames_received == len(frames)
        finally:
            client.close()
            server.close()

    def test_pipelined_frames_arrive_in_order(self):
        client, server = _pair()
        try:
            for n in range(50):
                client.send(f"frame-{n}".encode())
            for n in range(50):
                assert server.receive(timeout=2.0) == f"frame-{n}".encode()
        finally:
            client.close()
            server.close()

    def test_registry_counts_connections_frames_and_bytes(self):
        registry = MetricsRegistry()
        client, server = _pair(registry=registry)
        try:
            client.send(b"abcd")
            assert server.receive(timeout=2.0) == b"abcd"
        finally:
            client.close()
            server.close()
        counters = registry.snapshot()["counters"]
        assert counters["net.connections"] == 2  # dial + accept
        assert counters["net.frames_sent"] == 1
        assert counters["net.frames_received"] == 1
        assert counters["net.bytes_sent"] == 8  # 4-byte header + payload
        assert counters["net.bytes_received"] == 8


class TestFailureSemantics:
    def test_expired_receive_budget_returns_none(self):
        client, server = _pair()
        try:
            assert server.receive(timeout=0.05) is None
            assert not server.peer_closed  # budget expiry is not death
        finally:
            client.close()
            server.close()

    def test_clean_eof_is_peer_closed_not_an_error(self):
        client, server = _pair()
        try:
            client.close()
            assert server.receive(timeout=2.0) is None
            assert server.peer_closed
        finally:
            server.close()

    def test_eof_mid_frame_raises_truncated(self):
        listener = Listener(receive_timeout=0.2)
        raw = socket.create_connection(("127.0.0.1", listener.port))
        server = listener.accept(timeout=2.0)
        listener.close()
        try:
            # a header promising 10 bytes, then only 3, then death
            raw.sendall(_HEADER.pack(10) + b"abc")
            raw.close()
            with pytest.raises(ProtocolError, match="truncated"):
                server.receive(timeout=2.0)
        finally:
            server.close()

    def test_partial_frame_on_live_link_stays_buffered(self):
        listener = Listener(receive_timeout=0.2)
        raw = socket.create_connection(("127.0.0.1", listener.port))
        server = listener.accept(timeout=2.0)
        listener.close()
        try:
            data = _HEADER.pack(5) + b"whole"
            raw.sendall(data[:4])
            assert server.receive(timeout=0.1) is None  # still waiting
            raw.sendall(data[4:])
            assert server.receive(timeout=2.0) == b"whole"
        finally:
            raw.close()
            server.close()

    def test_dial_refused_raises_link_timeout(self):
        # bind-then-close guarantees a port nothing is listening on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(LinkTimeout):
            dial("127.0.0.1", port, timeout=1.0)

    def test_send_on_closed_link_raises_protocol_error(self):
        client, server = _pair()
        server.close()
        client.close()
        with pytest.raises(ProtocolError, match="closed"):
            client.send(b"late")


class _DoorServer:
    """A front door served on its own event-loop thread (sync tests)."""

    def __init__(self) -> None:
        self.database = GemStone.create(track_count=2_048, track_size=1024)
        self.door = FrontDoor(self.database)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        self._thread.start()
        self.server = asyncio.run_coroutine_threadsafe(
            serve_frontdoor(
                self.door, registry=self.database.obs.registry
            ),
            self._loop,
        ).result(5)
        self.port = server_port(self.server)

    def close(self) -> None:
        async def _shutdown():
            self.server.close()
            await self.server.wait_closed()
            await self.door.close()

        asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(5)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(5)
        self._loop.close()


class TestSyncClientOverTcp:
    def test_full_session_over_a_real_socket(self):
        served = _DoorServer()
        try:
            connection = TcpHostConnection("127.0.0.1", served.port)
            connection.login("DataCurator", "swordfish")
            assert connection.execute("3 + 4")[0] == 7
            connection.execute("World!tcp := 'wired'")
            assert connection.commit() is not None
            assert connection.execute("World!tcp")[0] == "wired"
            connection.logout()
            connection.close()
        finally:
            served.close()

    def test_reconnect_resumes_the_same_session(self):
        """Yank the transport between requests: the next request
        re-dials, the HELLO token rebinds the same executor, and
        uncommitted session state survives the drop."""
        served = _DoorServer()
        try:
            connection = TcpHostConnection("127.0.0.1", served.port)
            connection.login("DataCurator", "swordfish")
            connection.execute("World!rc := (World!rc ifNil: [0]) + 1")

            connection.host_end.close()  # the wire dies under us

            # same session: the uncommitted write is still visible
            assert connection.execute("World!rc")[0] == 1
            assert connection.reconnects >= 1
            assert connection.commit() is not None
            connection.logout()
            connection.close()
        finally:
            served.close()
