"""ResilientDisk: retry, backoff, read-only degradation — end to end."""

import pytest

from repro import GemStone
from repro.errors import DegradedError, TransientDiskError
from repro.faults import (
    FaultClock,
    FaultPlan,
    FaultSpec,
    FaultyDisk,
    ResilientDisk,
)
from repro.storage import DiskGeometry, SimulatedDisk


def make_stack(spec, seed=42, max_retries=4, track_count=16, track_size=128):
    inner = SimulatedDisk(DiskGeometry(track_count=track_count, track_size=track_size))
    clock = FaultClock()
    faulty = FaultyDisk(inner, FaultPlan(seed=seed, spec=spec), clock)
    return ResilientDisk(faulty, clock, max_retries=max_retries), inner, clock


class TestRetry:
    def test_retry_masks_transient_faults(self):
        disk, inner, _ = make_stack(
            FaultSpec(transient_rate=0.3), seed=7, max_retries=8
        )
        for track in range(10):
            disk.write_track(track, b"payload")
            assert disk.read_track(track).startswith(b"payload")
        assert disk.retries > 0
        assert not disk.degraded
        assert all(inner.is_written(t) for t in range(10))

    def test_backoff_is_exponential_simulated_time(self):
        disk, _, clock = make_stack(FaultSpec(transient_rate=1.0), max_retries=3)
        with pytest.raises(TransientDiskError):
            disk.read_track(0)
        # three retries: 1 + 2 + 4 simulated units, never wall time
        assert clock.now == 7.0
        assert disk.backoff_time == 7.0
        assert disk.retries == 3


class TestDegradation:
    def test_exhausted_write_degrades_to_read_only(self):
        disk, inner, _ = make_stack(FaultSpec(transient_rate=1.0), max_retries=2)
        inner.write_track(1, b"still readable")
        with pytest.raises(DegradedError):
            disk.write_track(0, b"doomed")
        assert disk.degraded
        # writes now refuse immediately — before touching the fault source
        with pytest.raises(DegradedError):
            disk.write_track(2, b"refused")
        # reads are not latched: once the fault source calms, they serve
        disk.inner.plan = FaultPlan(seed=1)
        assert disk.read_track(1).startswith(b"still readable")
        assert disk.degraded  # read-only mode persists until restore()

    def test_restore_rearms_writes(self):
        disk, _, _ = make_stack(FaultSpec(transient_rate=1.0), max_retries=0)
        with pytest.raises(DegradedError):
            disk.write_track(0, b"x")
        disk.restore()
        disk.inner.plan = FaultPlan(seed=1)  # calm the fault source
        disk.write_track(0, b"recovered")
        assert disk.read_track(0).startswith(b"recovered")

    def test_degraded_error_is_typed(self):
        disk, _, _ = make_stack(FaultSpec(transient_rate=1.0), max_retries=0)
        with pytest.raises(DegradedError) as excinfo:
            disk.write_track(0, b"x")
        assert "read-only" in str(excinfo.value)


class TestFullStack:
    def test_database_survives_a_flaky_disk(self):
        """The whole pipeline — format, commits, reopen — over a disk that
        fails transiently about once in eight operations."""
        inner = SimulatedDisk(DiskGeometry(track_count=2048, track_size=512))
        clock = FaultClock()
        plan = FaultPlan(seed=2026, spec=FaultSpec(transient_rate=0.12))
        stack = ResilientDisk(FaultyDisk(inner, plan, clock), clock, max_retries=8)

        db = GemStone.create(disk=stack)
        session = db.login()
        for index in range(10):
            session.execute(f"World!key{index} := {index * 11}")
            session.commit()
        assert stack.retries > 0  # the flakiness was real...

        reopened = GemStone.open(stack)  # ...and recovery runs over it too
        check = reopened.login()
        for index in range(10):
            assert check.execute(f"World!key{index}") == index * 11
