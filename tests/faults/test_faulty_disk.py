"""FaultyDisk: planned faults under the whole-track interface."""

import pytest

from repro.errors import ChecksumError, DiskCrashed, TransientDiskError
from repro.faults import FaultClock, FaultPlan, FaultSpec, FaultyDisk
from repro.storage import DiskGeometry, SimulatedDisk


def make_disk(spec=None, crash_at=(), seed=42):
    inner = SimulatedDisk(DiskGeometry(track_count=16, track_size=128))
    clock = FaultClock()
    plan = FaultPlan(seed=seed, spec=spec or FaultSpec(), crash_at=crash_at)
    return FaultyDisk(inner, plan, clock), inner, clock


class TestTransient:
    def test_always_faulty_read_raises_transient(self):
        disk, inner, _ = make_disk(FaultSpec(transient_rate=1.0))
        inner.write_track(3, b"data")
        with pytest.raises(TransientDiskError):
            disk.read_track(3)
        assert disk.transient_errors == 1

    def test_transient_write_is_lost(self):
        disk, inner, _ = make_disk(FaultSpec(transient_rate=1.0))
        with pytest.raises(TransientDiskError):
            disk.write_track(3, b"data")
        assert not inner.is_written(3)


class TestBitRot:
    def test_rotted_write_fails_checksum_on_read(self):
        disk, _, _ = make_disk(FaultSpec(bit_rot_rate=1.0))
        disk.write_track(4, b"precious")
        assert disk.rotted_tracks == 1
        with pytest.raises(ChecksumError):
            disk.read_track(4)


class TestLatency:
    def test_latency_charges_the_fault_clock(self):
        disk, _, clock = make_disk(FaultSpec(latency_rate=1.0, latency_cost=7.0))
        disk.write_track(0, b"x")
        disk.read_track(0)
        assert clock.now == 14.0
        assert disk.delays == 2


class TestCrashPoints:
    def test_crash_at_exact_write_index(self):
        disk, inner, _ = make_disk(crash_at={1})
        disk.write_track(0, b"first")
        with pytest.raises(DiskCrashed):
            disk.write_track(1, b"second")
        assert disk.crashed and inner.crashed
        assert not inner.is_written(1)  # the triggering write is lost
        disk.restart()
        assert disk.read_track(0).startswith(b"first")


class TestPassthrough:
    def test_clean_plan_is_transparent(self):
        disk, inner, _ = make_disk()
        disk.write_track(5, b"hello")
        assert disk.read_track(5).startswith(b"hello")
        assert disk.is_written(5)
        assert disk.track_count == 16
        assert disk.track_size == 128
        assert disk.stats is inner.stats
        assert disk.geometry is inner.geometry
