"""FaultyLink + the sequenced protocol: exactly-once over a lossy link."""

import pytest

from repro import GemStone
from repro.errors import LinkTimeout
from repro.executor import FrameType, HostConnection, make_link
from repro.executor import protocol
from repro.faults import FaultPlan, FaultSpec, make_faulty_link


@pytest.fixture
def db():
    return GemStone.create(track_count=1024, track_size=1024)


def faulty_factory(spec, seed=99):
    plan = FaultPlan(seed=seed, spec=spec)
    return lambda: make_faulty_link(plan)


class TestLossyLink:
    def test_execute_survives_frame_drops(self, db):
        conn = HostConnection(
            db, link_factory=faulty_factory(FaultSpec(drop_rate=0.3)),
            max_attempts=10,
        )
        conn.login("DataCurator", "swordfish")
        for index in range(8):
            value, _ = conn.execute(f"{index} + {index}")
            assert value == 2 * index
        assert conn.retries > 0  # drops actually happened and were masked

    def test_duplicates_do_not_double_apply(self, db):
        conn = HostConnection(
            db, link_factory=faulty_factory(FaultSpec(duplicate_rate=0.5)),
            max_attempts=10,
        )
        conn.login("DataCurator", "swordfish")
        conn.execute("World!n := 0")
        for _ in range(10):
            conn.execute("World!n := World!n + 1")
        assert conn.execute("World!n")[0] == 10

    def test_truncated_frames_are_retried(self, db):
        conn = HostConnection(
            db, link_factory=faulty_factory(FaultSpec(truncate_rate=0.3)),
            max_attempts=10,
        )
        conn.login("DataCurator", "swordfish")
        for index in range(8):
            assert conn.execute(f"{index} * 3")[0] == index * 3
        assert conn.executor.corrupt_frames > 0  # damage was detected, dropped

    def test_commit_exactly_once_under_loss(self, db):
        conn = HostConnection(
            db,
            link_factory=faulty_factory(
                FaultSpec(drop_rate=0.25, duplicate_rate=0.25), seed=5
            ),
            max_attempts=12,
        )
        conn.login("DataCurator", "swordfish")
        times = []
        for index in range(6):
            conn.execute(f"World!step := {index}")
            times.append(conn.commit())
        assert all(t is not None for t in times)
        assert times == sorted(times)  # each commit applied exactly once
        assert conn.execute("World!step")[0] == 5


class TestPartition:
    def test_partition_forces_reconnect_and_completes(self, db):
        conn = HostConnection(db, max_attempts=6)
        conn.login("DataCurator", "swordfish")
        # sever the host's outgoing direction mid-session
        plan = FaultPlan(seed=0)
        healthy = conn._link_factory
        from repro.faults import FaultyLink

        faulty_host = FaultyLink(conn.host_end, plan)
        faulty_host.partition()
        conn.host_end = faulty_host
        value, _ = conn.execute("6 * 7")
        assert value == 42
        assert conn.reconnects > 0
        assert healthy is make_link

    def test_dead_link_times_out_with_typed_error(self, db):
        conn = HostConnection(
            db, link_factory=faulty_factory(FaultSpec(drop_rate=1.0)),
            max_attempts=3,
        )
        with pytest.raises(LinkTimeout):
            conn.login("DataCurator", "swordfish")
        assert conn.retries == 2  # attempts beyond the first


class TestReplayCache:
    def test_resent_request_replays_cached_response(self, db):
        """Send the same sequenced EXECUTE twice: one application, two
        identical responses."""
        host, gem = make_link()
        conn = HostConnection(db)
        conn.login("DataCurator", "swordfish")
        executor = conn.executor
        wrapped = protocol.encode_seq(
            1000, protocol.encode_execute("World!hits := (World!hits ifNil: [0]) + 1")
        )
        host, gem = make_link()
        host.send(wrapped)
        executor.serve(gem)
        first = host.receive()
        host.send(wrapped)  # a retry of the very same request
        executor.serve(gem)
        second = host.receive()
        assert first == second
        assert executor.replays == 1
        assert conn.execute("World!hits")[0] == 1  # applied exactly once

    def test_logout_recognised_through_envelope(self, db):
        """serve() must stop on a *decoded* LOGOUT, not a raw byte peek —
        enveloped frames start with the SEQ byte."""
        conn = HostConnection(db)
        conn.login("DataCurator", "swordfish")
        conn.logout()
        assert conn.session_id is None


class TestServeLoopResilience:
    def test_unexpected_exception_becomes_error_frame(self, db, monkeypatch):
        conn = HostConnection(db)
        conn.login("DataCurator", "swordfish")

        def explode(source):
            raise RuntimeError("interpreter bug")

        monkeypatch.setattr(conn.executor._session, "execute", explode)
        with pytest.raises(Exception, match="interpreter bug"):
            conn.execute("1 + 1")
        monkeypatch.undo()
        # the serve loop survived: the connection still works
        assert conn.execute("2 + 2")[0] == 4

    def test_partial_frame_waits_instead_of_erroring(self):
        """A frame whose body hasn't fully arrived returns None (wait);
        only a closed pipe with leftovers is truncated."""
        import struct

        from repro.errors import ProtocolError
        from repro.executor.link import _Pipe

        pipe = _Pipe()
        pipe.write(struct.pack("<I", 10) + b"half")  # 4 of 10 body bytes
        assert pipe.read_frame() is None  # waiting, not an error
        pipe.write(b"needmo")  # the rest arrives
        assert pipe.read_frame() == b"halfneedmo"

        stuck = _Pipe()
        stuck.write(struct.pack("<I", 10) + b"half")
        stuck.close()
        with pytest.raises(ProtocolError):
            stuck.read_frame()

    def test_garbage_seq_envelope_is_dropped_silently(self, db):
        """A frame that *claims* to be sequenced but is damaged gets
        dropped (the sender retries), not answered."""
        host, gem = make_link()
        from repro.executor import Executor

        executor = Executor(db)
        host.send(bytes([FrameType.SEQ]) + b"\x07garbage-without-a-valid-crc")
        executor.serve(gem)
        assert host.receive() is None
        assert executor.corrupt_frames == 1


class TestReorder:
    def test_reorder_swaps_adjacent_frames(self):
        plan = FaultPlan(seed=3, spec=FaultSpec(reorder_rate=1.0))
        from repro.faults import FaultyLink

        host_end, gem_end = make_link()
        faulty = FaultyLink(host_end, plan)
        faulty.send(b"first")   # held
        faulty.send(b"second")  # delivered, flushes the held frame after
        assert gem_end.receive() == b"second"
        assert gem_end.receive() == b"first"
        assert faulty.reordered >= 1

    def test_at_most_one_frame_held(self):
        plan = FaultPlan(seed=3, spec=FaultSpec(reorder_rate=1.0))
        from repro.faults import FaultyLink

        host_end, gem_end = make_link()
        faulty = FaultyLink(host_end, plan)
        faulty.send(b"a")  # held
        faulty.send(b"b")  # flushes a
        faulty.send(b"c")  # held
        faulty.send(b"d")  # flushes c
        got = [gem_end.receive() for _ in range(4)]
        assert sorted(got) == [b"a", b"b", b"c", b"d"]
        assert got != [b"a", b"b", b"c", b"d"]  # something really moved

    def test_execute_survives_reordering(self, db):
        conn = HostConnection(
            db,
            link_factory=faulty_factory(FaultSpec(reorder_rate=0.4), seed=11),
            max_attempts=10,
        )
        conn.login("DataCurator", "swordfish")
        conn.execute("World!n := 0")
        for _ in range(10):
            conn.execute("World!n := World!n + 1")
        assert conn.execute("World!n")[0] == 10

    def test_exactly_once_under_loss_duplication_and_reordering(self, db):
        """The full fault mix the replay window exists for."""
        conn = HostConnection(
            db,
            link_factory=faulty_factory(
                FaultSpec(drop_rate=0.15, duplicate_rate=0.2,
                          reorder_rate=0.2),
                seed=17,
            ),
            max_attempts=15,
        )
        conn.login("DataCurator", "swordfish")
        conn.execute("World!n := 0")
        commits = []
        for _ in range(8):
            conn.execute("World!n := World!n + 1")
            commits.append(conn.commit())
        assert all(t is not None for t in commits)
        assert conn.execute("World!n")[0] == 8
