"""FaultPlan and FaultClock: determinism is the whole point."""

import pytest

from repro.faults import FaultClock, FaultPlan, FaultSpec


def drive(plan, operations=60):
    """A fixed mixed operation sequence against a plan."""
    for index in range(operations):
        if index % 3 == 0:
            plan.disk_fault("read", index % 7)
        elif index % 3 == 1:
            plan.disk_fault("write", index % 11)
        else:
            plan.link_fault(32 + index)


class TestDeterminism:
    def test_same_seed_reproduces_byte_identical_schedules(self):
        spec = FaultSpec(
            transient_rate=0.2, bit_rot_rate=0.1, latency_rate=0.2,
            drop_rate=0.2, duplicate_rate=0.1, truncate_rate=0.1,
        )
        first = FaultPlan(seed=1234, spec=spec)
        second = FaultPlan(seed=1234, spec=spec)
        drive(first)
        drive(second)
        assert first.schedule_bytes() == second.schedule_bytes()
        assert first.schedule_digest() == second.schedule_digest()

    def test_different_seeds_diverge(self):
        spec = FaultSpec(transient_rate=0.5, drop_rate=0.5)
        first = FaultPlan(seed=1, spec=spec)
        second = FaultPlan(seed=2, spec=spec)
        drive(first, operations=200)
        drive(second, operations=200)
        assert first.schedule_bytes() != second.schedule_bytes()

    def test_every_decision_is_recorded(self):
        plan = FaultPlan(seed=7)
        drive(plan, operations=30)
        assert len(plan.events) == 30
        assert [e.index for e in plan.events] == list(range(30))


class TestCrashPoints:
    def test_crash_fires_on_exact_write_index(self):
        plan = FaultPlan(seed=0, crash_at={2})
        assert plan.disk_fault("write", 10) == "none"
        assert plan.disk_fault("write", 11) == "none"
        assert plan.disk_fault("write", 12) == "crash"

    def test_reads_do_not_consume_write_indexes(self):
        plan = FaultPlan(seed=0, crash_at={0})
        assert plan.disk_fault("read", 5) == "none"
        assert plan.disk_fault("write", 5) == "crash"


class TestBudget:
    def test_max_faults_caps_injection(self):
        spec = FaultSpec(transient_rate=1.0, max_faults=3)
        plan = FaultPlan(seed=9, spec=spec)
        faults = [plan.disk_fault("read", 0) for _ in range(10)]
        assert faults.count("transient") == 3
        assert faults[3:] == ["none"] * 7
        assert plan.injected == 3


class TestClock:
    def test_advance_accumulates(self):
        clock = FaultClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == 4.0

    def test_no_time_travel(self):
        with pytest.raises(ValueError):
            FaultClock().advance(-1)
