"""Crash-recovery soak: every write index is a crash point, none may tear."""

from repro import GemStone
from repro.faults import (
    FaultPlan,
    FaultSpec,
    FaultyDisk,
    ResilientDisk,
    build_workload,
    run_crash_sweep,
)
from repro.storage import DiskGeometry, SimulatedDisk


class TestCrashSweep:
    def test_exhaustive_sweep_never_tears(self):
        report = run_crash_sweep(
            commits=6, writes_per_commit=2, track_count=512, track_size=512
        )
        assert report.torn_states == 0
        assert report.recoveries == report.crash_points
        assert report.crash_points == report.total_writes
        assert report.total_writes > 0

    def test_recovery_time_is_measured(self):
        report = run_crash_sweep(
            commits=4, writes_per_commit=2, track_count=512, track_size=512, stride=5
        )
        assert report.max_recovery_time > 0
        assert 0 < report.mean_recovery_time <= report.max_recovery_time
        # strided sweep visits a subset of the write indexes
        assert report.crash_points < report.total_writes

    def test_steps_report_monotone_commit_progress(self):
        report = run_crash_sweep(
            commits=5, writes_per_commit=2, track_count=512, track_size=512
        )
        survived = [step.commits_survived for step in report.steps]
        # later crash points can only preserve >= as many commits
        assert survived == sorted(survived)
        assert survived[0] == 0
        assert survived[-1] >= 4
        for step in report.steps:
            assert step.recovered_epoch == 1 + step.commits_survived


class TestFaultyRunDeterminism:
    def test_seeded_faulty_runs_are_byte_identical(self):
        """Acceptance: the same seed over the same workload yields the
        same fault schedule, byte for byte."""

        def faulty_run(seed):
            disk = SimulatedDisk(DiskGeometry(track_count=1024, track_size=512))
            plan = FaultPlan(
                seed=seed, spec=FaultSpec(transient_rate=0.05, latency_rate=0.1)
            )
            stack = ResilientDisk(FaultyDisk(disk, plan), max_retries=8)
            db = GemStone.create(disk=stack)
            session = db.login()
            for batch in build_workload(commits=4, writes_per_commit=2):
                for statement in batch:
                    session.execute(statement)
                session.commit()
            return plan.schedule_bytes(), plan.schedule_digest()

        first_bytes, first_digest = faulty_run(seed=777)
        second_bytes, second_digest = faulty_run(seed=777)
        assert first_bytes == second_bytes
        assert first_digest == second_digest
        other_bytes, _ = faulty_run(seed=778)
        assert other_bytes != first_bytes
