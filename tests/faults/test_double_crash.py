"""Double-crash recovery: the disk dies again *during* recovery.

Recovery reads the two root slots and the catalog; a second crash while
those reads are in flight must leave recovery idempotent — however many
times the disk goes down mid-recovery, the database finally reopened
lands on exactly the last committed epoch with every committed value
intact and every uncommitted one absent.
"""

import pytest

from repro.db import GemStone
from repro.errors import DiskCrashed, StorageError
from repro.faults.disk import FaultyDisk
from repro.faults.plan import FaultClock, FaultPlan
from repro.storage.disk import DiskGeometry, SimulatedDisk


def build_database():
    """A database with three committed batches on a fault-wrapped disk."""
    inner = SimulatedDisk(DiskGeometry(track_count=1024, track_size=512))
    disk = FaultyDisk(inner, FaultPlan(seed=5), FaultClock())
    db = GemStone.create(disk=disk)
    session = db.login()
    for batch in range(3):
        for key in range(4):
            session.execute(f"World!k{key} := 'batch{batch}_{key}'")
        session.commit()
    return inner, disk, db


def crash_mid_commit(inner, disk, db):
    """Arm a write crash and drive one more (doomed) commit."""
    session = db.login()
    session.execute("World!doomed := 'never durable'")
    inner.crash_after(1)  # tears the shadow group mid-flight
    with pytest.raises(StorageError):
        session.commit()
    assert disk.crashed


def assert_recovered(db):
    session = db.login()
    for key in range(4):
        assert session.execute(f"World!k{key}") == f"batch2_{key}"
    assert session.execute("World!doomed") is None
    session.close()


class TestDoubleCrash:
    def test_crash_during_recovery_reads_is_survivable(self):
        inner, disk, db = build_database()
        base_epoch = db.store.commit_manager.current_epoch
        crash_mid_commit(inner, disk, db)
        inner.restart()
        disk.restart()

        # second crash: the very first recovery read takes the disk down
        disk.plan = FaultPlan(seed=5, crash_reads_at={0})
        with pytest.raises(DiskCrashed):
            GemStone.open(disk)
        assert disk.crashed

        inner.restart()
        disk.restart()
        disk.plan = FaultPlan(seed=5)  # the storm is over
        recovered = GemStone.open(disk)
        assert recovered.store.commit_manager.current_epoch == base_epoch
        assert_recovered(recovered)

    def test_recovery_is_idempotent_across_repeated_crashes(self):
        inner, disk, db = build_database()
        base_epoch = db.store.commit_manager.current_epoch
        crash_mid_commit(inner, disk, db)

        # crash recovery at every read offset it performs, one at a time
        for read_point in range(8):
            inner.restart()
            disk.restart()
            disk.plan = FaultPlan(seed=5, crash_reads_at={read_point})
            try:
                recovered = GemStone.open(disk)
            except StorageError:
                assert disk.crashed
                continue  # recovery died again; go around once more
            # late read points fall past what open() needs: fine too
            assert recovered.store.commit_manager.current_epoch == base_epoch

        inner.restart()
        disk.restart()
        disk.plan = FaultPlan(seed=5)
        recovered = GemStone.open(disk)
        assert recovered.store.commit_manager.current_epoch == base_epoch
        assert_recovered(recovered)

    def test_read_crash_plan_is_exact_and_restartable(self):
        inner = SimulatedDisk(DiskGeometry(track_count=64, track_size=256))
        disk = FaultyDisk(inner, FaultPlan(seed=1, crash_reads_at={2}), FaultClock())
        disk.write_track(3, b"payload")
        payload = inner.read_track(3)  # padded; bypasses the read plan
        assert disk.read_track(3) == payload  # read 0
        assert disk.read_track(3) == payload  # read 1
        with pytest.raises(DiskCrashed):
            disk.read_track(3)  # read 2: the armed point
        assert disk.crashed
        with pytest.raises(DiskCrashed):
            disk.write_track(4, b"refused while down")
        disk.restart()
        assert not disk.crashed
        assert disk.read_track(3) == payload
