"""Epoch-stamped replication: stale replicas are never served.

A replica that was down during a write and restarted holds a
checksum-valid but superseded copy.  Before epochs, read-any could serve
it — silent time travel.  These tests pin the fix: unit scenarios for
the repair path, plus a hypothesis model check that no operation
sequence can make a read return superseded data.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DiskCrashed, StaleReplicaError
from repro.storage import DiskGeometry, ReplicatedDisk, SimulatedDisk


def make_pair(count=2):
    geometry = DiskGeometry(track_count=16, track_size=128)
    replicas = [SimulatedDisk(geometry) for _ in range(count)]
    return ReplicatedDisk(replicas), replicas


def down(replica):
    """Take a replica fully down: reads and writes both fail until restart."""
    replica.crash_after(0)
    try:
        replica.write_track(0, b"")  # trips the armed crash; platter untouched
    except DiskCrashed:
        pass
    assert replica.crashed


class TestStaleDetection:
    def test_restarted_replica_is_not_served(self):
        disk, (r0, r1) = make_pair()
        disk.write_track(0, b"v1")
        r0.crash_after(0)
        disk.write_track(0, b"v2")  # lands only on r1
        r0.restart()  # r0 now holds checksum-valid v1 — stale
        assert disk.read_track(0).startswith(b"v2")
        assert disk.health[0].write_failures == 1

    def test_stale_replica_is_read_repaired(self):
        disk, (r0, r1) = make_pair()
        disk.write_track(0, b"v1")
        r0.crash_after(0)
        disk.write_track(0, b"v2")
        r0.restart()
        disk.read_track(0)  # serves v2 from r1, repairs r0 in passing
        assert disk.stale_repairs == 1
        assert disk.health[0].repairs == 1
        # the repaired copy is current: r1 can die and v2 survives
        down(r1)
        assert disk.read_track(0).startswith(b"v2")

    def test_all_live_replicas_stale_raises_typed_error(self):
        disk, (r0, r1) = make_pair()
        disk.write_track(0, b"v1")
        r1.crash_after(0)
        disk.write_track(0, b"v2")  # lands only on r0
        r1.restart()  # r1 stale at v1
        down(r0)  # the only current copy is now down
        with pytest.raises(StaleReplicaError):
            disk.read_track(0)

    def test_epoch_does_not_advance_when_no_replica_accepts(self):
        disk, (r0, r1) = make_pair()
        disk.write_track(0, b"v1")
        r0.crash_after(0)
        r1.crash_after(0)
        with pytest.raises(DiskCrashed):
            disk.write_track(0, b"v2")
        r0.restart()
        r1.restart()
        # v1 is still the current epoch everywhere — not stale
        assert disk.read_track(0).startswith(b"v1")

    def test_write_failure_counts_per_replica(self):
        disk, (r0, r1) = make_pair()
        r1.crash_after(0)
        disk.write_track(0, b"v1")
        disk.write_track(1, b"v1")
        assert disk.health[1].write_failures == 2
        assert disk.health[0].write_failures == 0
        assert disk.health[1].failures == 2


class TestRestartStaleness:
    """Per-track epochs survive a *process* restart (a fresh
    ReplicatedDisk over the surviving platters): before the on-platter
    stamps, a restarted process forgot every epoch and could serve a
    checksum-valid-but-stale replica undetected."""

    def make_stale_pair(self):
        disk, (r0, r1) = make_pair()
        disk.write_track(0, b"v1")
        r0.crash_after(0)
        disk.write_track(0, b"v2")  # lands only on r1
        r0.restart()  # r0 now holds checksum-valid v1 — stale
        return r0, r1

    def test_fresh_instance_over_surviving_platters_serves_current(self):
        r0, r1 = self.make_stale_pair()
        restarted = ReplicatedDisk([r0, r1])  # process restart: no memory
        assert restarted.read_track(0).startswith(b"v2")
        assert restarted.stale_repairs == 1  # r0 repaired in passing

    def test_fresh_instance_never_serves_stale_when_current_is_down(self):
        r0, r1 = self.make_stale_pair()
        down(r1)  # the only current copy is unreadable at rederive time
        restarted = ReplicatedDisk([r0, r1])
        # the survivors' highest stamp is v1 — served as a last resort,
        # but the moment r1 is readable again its newer stamp wins
        assert restarted.read_track(0).startswith(b"v1")
        r1.restart()
        fresh = ReplicatedDisk([r0, r1])
        assert fresh.read_track(0).startswith(b"v2")

    def test_writes_after_restart_continue_the_persisted_epoch(self):
        r0, r1 = self.make_stale_pair()
        restarted = ReplicatedDisk([r0, r1])
        # the next write must stamp epoch 3, not restart at 1 — else the
        # stale v1 copy would alias a "current" epoch number
        restarted.write_track(0, b"v3")
        assert restarted.current_epoch_of(0) == 3
        again = ReplicatedDisk([r0, r1])
        assert again.read_track(0).startswith(b"v3")

    def test_stable_store_recovery_over_restarted_volume(self):
        from repro.storage import StableStore

        geometry = DiskGeometry(track_count=256, track_size=512)
        replicas = [SimulatedDisk(geometry) for _ in range(2)]
        volume = ReplicatedDisk(replicas)
        store = StableStore.format(volume)
        replicas[0].crash_after(0)
        store.persist([], tx_time=2)  # epoch 2 lands only on replica 1
        replicas[0].restart()
        reopened = StableStore.open(ReplicatedDisk(replicas))
        assert reopened.commit_manager.current_epoch == 2


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 99)),
        st.tuples(st.just("crash"), st.integers(0, 1)),
        st.tuples(st.just("restart"), st.integers(0, 1)),
        st.tuples(st.just("read"), st.just(0)),
    ),
    max_size=30,
)


class TestNeverServeSuperseded:
    @settings(max_examples=200, deadline=None)
    @given(ops=OPS)
    def test_reads_never_return_superseded_data(self, ops):
        """Model: a read either fails or returns the latest *accepted*
        write, no matter how replicas crash and restart in between."""
        disk, replicas = make_pair()
        committed = None  # latest payload at least one replica accepted
        for op, arg in ops:
            if op == "write":
                payload = b"gen%03d" % arg
                try:
                    disk.write_track(0, payload)
                except DiskCrashed:
                    continue  # nobody accepted: not committed
                committed = payload
            elif op == "crash":
                if not replicas[arg].crashed:
                    down(replicas[arg])
            elif op == "restart":
                if replicas[arg].crashed:
                    replicas[arg].restart()
            else:  # read
                try:
                    data = disk.read_track(0)
                except Exception:
                    continue  # unavailable is allowed; wrong data is not
                if committed is None:
                    # nothing accepted yet: only the unwritten pattern is ok
                    assert data == bytes(len(data))
                else:
                    assert data.startswith(committed)
