"""CommitManager.recover edge cases the ping-pong invariant must survive.

Recovery's contract is "the newest valid root wins, torn roots lose".
Three corners exercise it where the usual happy path never goes: both
slots valid with the *same* epoch, a torn root written over the older
slot, and a crash at every write of the very first commit — where no
previous root exists to fall back on.
"""

import pytest

from repro.errors import DiskCrashed, RecoveryError
from repro.storage import DiskGeometry, SimulatedDisk, StableStore
from repro.storage.commit import ROOT_SLOTS, decode_root_track

GEOMETRY = DiskGeometry(track_count=256, track_size=512)


def fresh_store():
    disk = SimulatedDisk(GEOMETRY)
    return StableStore.format(disk), disk


def slot_epochs(disk):
    """Epoch per root slot; None where the slot holds no valid root."""
    epochs = {}
    for slot in ROOT_SLOTS:
        try:
            epochs[slot] = decode_root_track(disk.read_track(slot))["epoch"]
        except Exception:  # noqa: BLE001 — torn or unwritten slot
            epochs[slot] = None
    return epochs


class TestEqualEpochSlots:
    def test_both_slots_valid_with_equal_epochs_adopt_that_epoch(self):
        store, disk = fresh_store()
        store.persist([], tx_time=2)  # epoch 2 lands on the other slot
        epochs = slot_epochs(disk)
        current = max(ROOT_SLOTS, key=lambda s: epochs[s])
        other = ROOT_SLOTS[1 - current]
        # clone the current root over the stale slot: both now epoch 2
        disk.write_track(other, disk.read_track(current))
        assert slot_epochs(disk) == {0: 2, 1: 2}
        reopened = StableStore.open(disk)
        assert reopened.commit_manager.current_epoch == 2

    def test_commits_continue_cleanly_after_an_equal_epoch_recovery(self):
        store, disk = fresh_store()
        store.persist([], tx_time=2)
        epochs = slot_epochs(disk)
        current = max(ROOT_SLOTS, key=lambda s: epochs[s])
        disk.write_track(ROOT_SLOTS[1 - current], disk.read_track(current))
        reopened = StableStore.open(disk)
        reopened.persist([], tx_time=3)
        # the new root flipped to the other slot; epochs diverge again
        assert StableStore.open(disk).commit_manager.current_epoch == 3


class TestTornOlderSlot:
    def test_torn_root_over_the_older_slot_keeps_the_newest(self):
        store, disk = fresh_store()
        store.persist([], tx_time=2)
        epochs = slot_epochs(disk)
        older = min(ROOT_SLOTS, key=lambda s: epochs[s])
        disk.corrupt_track(older, flip_byte=6)  # a bit-flip inside payload
        reopened = StableStore.open(disk)
        assert reopened.commit_manager.current_epoch == 2

    def test_truncated_root_over_the_older_slot_keeps_the_newest(self):
        store, disk = fresh_store()
        store.persist([], tx_time=2)
        epochs = slot_epochs(disk)
        older = min(ROOT_SLOTS, key=lambda s: epochs[s])
        newer = ROOT_SLOTS[1 - older]
        # a torn re-write: only a prefix of a valid root reached the slot
        disk.write_track(older, disk.read_track(newer)[:12])
        reopened = StableStore.open(disk)
        assert reopened.commit_manager.current_epoch == 2

    def test_both_slots_torn_is_a_typed_recovery_error(self):
        store, disk = fresh_store()
        store.persist([], tx_time=2)
        for slot in ROOT_SLOTS:
            if disk.is_written(slot):
                disk.corrupt_track(slot, flip_byte=6)
        with pytest.raises(RecoveryError):
            StableStore.open(disk)


class TestFirstCommitCrashSweep:
    def test_crash_at_every_write_of_the_first_commit_is_never_torn(self):
        # measure the clean first commit's write count on a probe disk
        probe = SimulatedDisk(GEOMETRY)
        StableStore.format(probe)
        total_writes = probe.stats.writes
        assert total_writes > 2

        outcomes = {"clean": 0, "unborn": 0}
        for crash_index in range(total_writes):
            disk = SimulatedDisk(GEOMETRY)
            disk.crash_after(crash_index)
            with pytest.raises(DiskCrashed):
                StableStore.format(disk)
            disk.restart()
            try:
                reopened = StableStore.open(disk)
            except RecoveryError:
                # the root never landed: the database was never born —
                # allowed, as long as it is this typed error, not torn state
                outcomes["unborn"] += 1
                continue
            assert reopened.commit_manager.current_epoch == 1
            outcomes["clean"] += 1
        # the root write is the atomic commit point: everything before it
        # leaves no database, and nothing in between leaves a torn one
        assert outcomes["unborn"] + outcomes["clean"] == total_writes
