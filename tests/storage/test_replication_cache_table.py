"""Unit tests: replication, object cache, object table."""

import pytest

from repro.core import GemObject
from repro.errors import ChecksumError, DiskCrashed, DiskError, StorageError
from repro.storage import (
    DiskGeometry,
    Location,
    ObjectCache,
    ObjectTable,
    PAGE_SPAN,
    ReplicatedDisk,
    SimulatedDisk,
    StableStore,
)
from repro.storage.object_table import decode_page_directory, encode_page_directory
from repro.storage.replication import EPOCH_HEADER_SIZE


def make_replicas(n=3):
    geometry = DiskGeometry(track_count=64, track_size=256)
    return [SimulatedDisk(geometry) for _ in range(n)]


class TestReplication:
    def test_write_reaches_all_replicas(self):
        replicas = make_replicas()
        volume = ReplicatedDisk(replicas)
        volume.write_track(5, b"data")
        # each platter image carries the epoch stamp, then the payload
        assert all(
            r.read_track(5)[EPOCH_HEADER_SIZE:].startswith(b"data")
            for r in replicas
        )

    def test_read_survives_one_corrupt_replica(self):
        replicas = make_replicas()
        volume = ReplicatedDisk(replicas)
        volume.write_track(5, b"data")
        replicas[0].corrupt_track(5)
        assert volume.read_track(5).startswith(b"data")

    def test_read_repair_fixes_corrupt_copy(self):
        replicas = make_replicas()
        volume = ReplicatedDisk(replicas)
        volume.write_track(5, b"data")
        replicas[0].corrupt_track(5)
        volume.read_track(5)
        assert volume.repairs == 1
        assert replicas[0].read_track(5)[EPOCH_HEADER_SIZE:].startswith(b"data")

    def test_read_survives_downed_replica(self):
        replicas = make_replicas()
        volume = ReplicatedDisk(replicas)
        volume.write_track(5, b"data")
        replicas[0].crash_after(0)
        try:
            replicas[0].write_track(6, b"x")
        except DiskCrashed:
            pass
        assert volume.read_track(5).startswith(b"data")

    def test_all_replicas_corrupt_fails(self):
        replicas = make_replicas(2)
        volume = ReplicatedDisk(replicas)
        volume.write_track(5, b"data")
        for r in replicas:
            r.corrupt_track(5)
        with pytest.raises(ChecksumError):
            volume.read_track(5)

    def test_write_skips_down_replica(self):
        replicas = make_replicas(2)
        volume = ReplicatedDisk(replicas)
        replicas[0].crash_after(0)
        volume.write_track(3, b"ok")  # replica 1 still accepts
        assert replicas[1].is_written(3)

    def test_all_down_write_fails(self):
        replicas = make_replicas(2)
        volume = ReplicatedDisk(replicas)
        for r in replicas:
            r.crash_after(0)
        with pytest.raises(DiskCrashed):
            volume.write_track(3, b"x")

    def test_mismatched_geometry_rejected(self):
        a = SimulatedDisk(DiskGeometry(track_count=64, track_size=256))
        b = SimulatedDisk(DiskGeometry(track_count=32, track_size=256))
        with pytest.raises(DiskError):
            ReplicatedDisk([a, b])

    def test_empty_replica_set_rejected(self):
        with pytest.raises(DiskError):
            ReplicatedDisk([])

    def test_stable_store_runs_on_replicated_volume(self):
        volume = ReplicatedDisk(make_replicas())
        store = StableStore.format(volume)
        assert store.class_named("Object").name == "Object"
        reopened = StableStore.open(volume)
        assert reopened.classes == store.classes


class TestObjectCache:
    def obj(self, oid):
        return GemObject(oid=oid, class_oid=1)

    def test_hit_and_miss_counting(self):
        cache = ObjectCache()
        cache.put(self.obj(1))
        assert cache.get(1) is not None
        assert cache.get(2) is None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = ObjectCache(capacity=2)
        cache.put(self.obj(1))
        cache.put(self.obj(2))
        cache.get(1)          # 1 is now most recent
        cache.put(self.obj(3))
        assert cache.get(2) is None
        assert cache.get(1) is not None

    def test_unbounded_by_default(self):
        cache = ObjectCache()
        for i in range(1000):
            cache.put(self.obj(i))
        assert len(cache) == 1000

    def test_flush(self):
        cache = ObjectCache()
        cache.put(self.obj(1))
        cache.flush()
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ObjectCache(capacity=0)

    def test_reset_stats(self):
        cache = ObjectCache()
        cache.get(5)
        cache.reset_stats()
        assert cache.misses == 0
        assert cache.hit_rate == 0.0


class TestObjectTable:
    def test_set_and_get(self):
        table = ObjectTable()
        table.set_tracks(10, [5, 6])
        assert table.get(10) == Location(tracks=(5, 6))
        assert 10 in table

    def test_missing(self):
        assert ObjectTable().get(10) is None

    def test_track_refcounting(self):
        table = ObjectTable()
        table.set_tracks(1, [5])
        table.set_tracks(2, [5, 6])
        assert table.tracks_in_use() == {5, 6}
        table.set_tracks(1, [7])
        assert table.tracks_in_use() == {5, 6, 7}
        table.set_tracks(2, [7])
        assert table.tracks_in_use() == {7}
        assert not table.track_is_used(5)

    def test_archival(self):
        table = ObjectTable()
        table.set_tracks(1, [5])
        table.set_archived(1, archive_key=42)
        assert table.get(1).archived
        assert table.get(1).archive_key == 42
        assert not table.track_is_used(5)

    def test_empty_tracks_rejected(self):
        with pytest.raises(StorageError):
            ObjectTable().set_tracks(1, [])

    def test_dirty_page_tracking(self):
        table = ObjectTable()
        table.set_tracks(3, [5])
        table.set_tracks(PAGE_SPAN + 1, [6])
        assert table.dirty_pages() == {0, 1}
        table.clear_dirty()
        assert table.dirty_pages() == set()

    def test_page_roundtrip(self):
        table = ObjectTable()
        table.set_tracks(3, [5, 6])
        table.set_archived(7, 99)
        data = table.encode_page(0)
        fresh = ObjectTable()
        assert fresh.load_page(data) == 0
        assert fresh.get(3) == Location(tracks=(5, 6))
        assert fresh.get(7) == Location(archive_key=99)
        assert fresh.get(4) is None
        assert fresh.tracks_in_use() == {5, 6}

    def test_page_directory_roundtrip(self):
        directory = {0: (5,), 3: (9, 10), 7: (12,)}
        assert decode_page_directory(encode_page_directory(directory)) == directory
