"""Unit tests for the compaction pass (storage-level)."""

import pytest

from repro import GemStone
from repro.core import Ref
from repro.storage import ArchiveMedia


@pytest.fixture
def db():
    return GemStone.create(track_count=8192, track_size=1024)


def churn(db, oid, rounds):
    session = db.login()
    for index in range(rounds):
        session.session.bind(oid, "v", f"value-{index}" * 5)
        session.commit()
    session.close()


class TestCompaction:
    def test_reclaims_tracks_after_churn(self, db):
        session = db.login()
        group = session.new("Bag")
        members = []
        for index in range(30):
            member = session.new("Object", v="x")
            session.session.bind(group, session.session.new_alias(), member)
            members.append(member.oid)
        session.assign("group", group)
        session.commit()
        for oid in members[:10]:
            churn(db, oid, 5)
        before = len(db.store.tracks.allocated_tracks())
        reclaimed = db.compact()
        assert reclaimed > 0
        assert len(db.store.tracks.allocated_tracks()) == before - reclaimed

    def test_data_identical_after_compaction(self, db):
        session = db.login()
        obj = session.new("Object", a=1, b="two", c=None)
        session.assign("o", obj)
        session.commit()
        churn(db, obj.oid, 3)
        snapshot = {
            name: list(table.history())
            for name, table in db.store.object(obj.oid).elements.items()
        }
        db.compact()
        reopened = GemStone.open(db.disk)
        loaded = reopened.store.object(obj.oid)
        assert {
            name: list(table.history())
            for name, table in loaded.elements.items()
        } == snapshot

    def test_compaction_is_itself_crash_safe(self, db):
        session = db.login()
        obj = session.new("Object", v="before")
        session.assign("o", obj)
        session.commit()
        churn(db, obj.oid, 4)
        expected = db.store.object(obj.oid).value("v")
        db.disk.crash_after(3)
        with pytest.raises(Exception):
            db.compact()
        db.disk.restart()
        recovered = GemStone.open(db.disk)
        assert recovered.store.object(obj.oid).value("v") == expected

    def test_archived_objects_left_alone(self, db):
        session = db.login()
        obj = session.new("Object", v="archived away")
        session.assign("o", obj)
        session.commit()
        media = ArchiveMedia()
        db.archive_object(obj.oid, media)
        db.compact()
        location = db.store.table.get(obj.oid)
        assert location.archived
        db.store.archive_drive.mount(media)
        db.store.flush_caches()
        assert db.store.object(obj.oid).value("v") == "archived away"

    def test_reachable_objects_recluster(self, db):
        session = db.login()
        parent = session.new("Object")
        children = [session.new("Object", payload="p" * 30) for _ in range(6)]
        for index, child in enumerate(children):
            session.session.bind(parent.oid, f"c{index}", Ref(child.oid))
        session.assign("parent", parent)
        session.commit()
        # scatter the children with individual churn
        for child in children:
            churn(db, child.oid, 3)
        db.compact()
        tracks = [db.store.table.get(c.oid).tracks[0] for c in children]
        assert max(tracks) - min(tracks) <= 2  # adjacent again

    def test_world_and_classes_survive(self, db):
        session = db.login()
        session.execute("""
            Object subclass: #Kept instVarNames: #(x).
            Kept compile: 'x ^x'.
            | k | k := Kept new. k at: 'x' put: 5. World!k := k
        """)
        session.commit()
        db.compact()
        reopened = GemStone.open(db.disk)
        assert reopened.login().execute("World!k x") == 5
