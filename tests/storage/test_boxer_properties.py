"""Property tests: the Boxer packs anything, losslessly."""

from hypothesis import given, settings, strategies as st

from repro.storage import Boxer, assemble, read_entries

records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**32),
        st.binary(min_size=0, max_size=1500),
    ),
    max_size=25,
    unique_by=lambda pair: pair[0],
)


@given(records, st.integers(min_value=128, max_value=2048))
@settings(max_examples=100, deadline=None)
def test_pack_unpack_roundtrip(pairs, track_size):
    boxer = Boxer(track_size)
    result = boxer.pack(pairs)
    # every image fits in a track
    assert all(len(image) <= track_size for image in result.images)
    # every record reassembles byte-for-byte from its placements
    for oid, data in pairs:
        fragments = []
        for image_index in result.placements[oid]:
            fragments.extend(
                f for f in read_entries(result.images[image_index])
                if f.oid == oid
            )
        # fragments of one object may repeat an index only if two of its
        # fragments landed in the same image — dedupe by sequence
        unique = {f.seq: f for f in fragments}
        assert assemble(list(unique.values())) == data


@given(records)
@settings(max_examples=50, deadline=None)
def test_placements_cover_all_oids(pairs):
    boxer = Boxer(512)
    result = boxer.pack(pairs)
    assert set(result.placements) == {oid for oid, _ in pairs}
    for oid, spots in result.placements.items():
        assert spots == sorted(spots)
        assert all(0 <= index < len(result.images) for index in spots)


@given(st.integers(min_value=0, max_value=2**20), st.binary(max_size=8000),
       st.integers(min_value=128, max_value=1024))
@settings(max_examples=50, deadline=None)
def test_split_respects_capacity_and_order(oid, data, track_size):
    boxer = Boxer(track_size)
    fragments = boxer.split(oid, data)
    assert b"".join(f.payload for f in fragments) == data
    assert [f.seq for f in fragments] == list(range(len(fragments)))
    assert all(f.total == len(fragments) for f in fragments)
    assert all(len(f.payload) <= boxer.max_payload() for f in fragments)
