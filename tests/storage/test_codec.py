"""Unit and property tests for the binary codec."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Char, GemClass, GemObject, PrimitiveMethod, Ref, Symbol
from repro.errors import CodecError
from repro.storage import (
    decode_object,
    decode_object_full,
    decode_root,
    encode_object,
    encode_root,
)
from repro.storage.codec import Reader, Writer, decode_value, encode_value


def roundtrip_value(value):
    writer = Writer()
    encode_value(writer, value)
    return decode_value(Reader(writer.getvalue()))


class TestValues:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 2**40, -(2**40), 0.0, 3.5, -1e300,
         "", "hello", "unicodé ✓", Symbol("sel:ector:"), Char("a"), Ref(0), Ref(123456)],
    )
    def test_roundtrip(self, value):
        result = roundtrip_value(value)
        assert result == value
        assert type(result) is type(value)

    def test_bool_not_confused_with_int(self):
        assert roundtrip_value(True) is True
        assert roundtrip_value(1) == 1
        assert not isinstance(roundtrip_value(1), bool)

    def test_symbol_not_confused_with_string(self):
        assert isinstance(roundtrip_value(Symbol("x")), Symbol)
        assert not isinstance(roundtrip_value("x"), Symbol)

    def test_unencodable_rejected(self):
        with pytest.raises(CodecError):
            encode_value(Writer(), object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            decode_value(Reader(b"\xff"))

    def test_truncated_data_rejected(self):
        writer = Writer()
        encode_value(writer, "hello")
        with pytest.raises(CodecError):
            decode_value(Reader(writer.getvalue()[:-2]))


class TestVarints:
    @pytest.mark.parametrize("n", [0, 1, 127, 128, 300, 2**32, 2**60])
    def test_uvarint_roundtrip(self, n):
        writer = Writer()
        writer.uvarint(n)
        assert Reader(writer.getvalue()).uvarint() == n

    def test_negative_uvarint_rejected(self):
        with pytest.raises(CodecError):
            Writer().uvarint(-1)

    @pytest.mark.parametrize("n", [0, -1, 1, -(2**40), 2**40])
    def test_svarint_roundtrip(self, n):
        writer = Writer()
        writer.svarint(n)
        assert Reader(writer.getvalue()).svarint() == n

    def test_small_values_are_one_byte(self):
        writer = Writer()
        writer.uvarint(7)
        assert len(writer.getvalue()) == 1

    def test_overlong_varint_rejected(self):
        with pytest.raises(CodecError):
            Reader(b"\x80" * 11).uvarint()


class TestObjects:
    def test_plain_object_roundtrip(self):
        obj = GemObject(oid=42, class_oid=7, segment_id=3, created_at=5)
        obj.bind("name", "Ellen", time=5)
        obj.bind("salary", 24650, time=5)
        obj.bind("salary", 30000, time=9)
        obj.bind("dept", Ref(99), time=5)
        back = decode_object(encode_object(obj))
        assert back.oid == 42
        assert back.class_oid == 7
        assert back.segment_id == 3
        assert back.created_at == 5
        assert back.value("name") == "Ellen"
        assert back.value_at("salary", 5) == 24650
        assert back.value("salary") == 30000
        assert back.value("dept") == Ref(99)
        assert list(back.history_of("salary")) == [(5, 24650), (9, 30000)]

    def test_empty_object(self):
        obj = GemObject(oid=1, class_oid=2)
        back = decode_object(encode_object(obj))
        assert back.elements == {}

    def test_nil_bindings_survive(self):
        obj = GemObject(oid=1, class_oid=2)
        obj.bind("gone", Ref(5), time=3)
        obj.unbind("gone", time=8)
        back = decode_object(encode_object(obj))
        assert back.value("gone") is None
        assert back.value_at("gone", 5) == Ref(5)

    def test_integer_element_names(self):
        obj = GemObject(oid=1, class_oid=2)
        obj.bind(1, "a", time=1)
        obj.bind(2, "b", time=1)
        back = decode_object(encode_object(obj))
        assert back.value(1) == "a"

    def test_element_order_preserved(self):
        obj = GemObject(oid=1, class_oid=2)
        for name in ("z", "a", "m"):
            obj.bind(name, name, time=1)
        back = decode_object(encode_object(obj))
        assert list(back.elements) == ["z", "a", "m"]

    def test_garbage_rejected(self):
        with pytest.raises(CodecError):
            decode_object(b"XXnot a record")


class _SourcedMethod(PrimitiveMethod):
    """A primitive carrying source text, like a compiled OPAL method."""

    def __init__(self, selector, source):
        super().__init__(selector, lambda m, r: None)
        self.source = source


class TestClassRecords:
    def make_class(self):
        cls = GemClass(
            oid=10, class_oid=2, name="Employee", superclass_oid=1,
            instvar_names=("name", "salary"), segment_id=1, created_at=3,
        )
        cls.define_method(_SourcedMethod("raise:", "raise: amount\n ^amount"))
        cls.define_primitive("name", lambda m, r: None)  # no source: not stored
        cls.define_class_method(_SourcedMethod("new", "new\n ^super new"))
        cls.bind("comment", "people", time=3)
        return cls

    def test_structure_roundtrip(self):
        back = decode_object(encode_object(self.make_class()))
        assert isinstance(back, GemClass)
        assert back.name == "Employee"
        assert back.superclass_oid == 1
        assert back.instvar_names == ("name", "salary")
        assert back.value("comment") == "people"

    def test_root_superclass_roundtrip(self):
        cls = GemClass(oid=1, class_oid=2, name="Object", superclass_oid=None)
        back = decode_object(encode_object(cls))
        assert back.superclass_oid is None

    def test_method_sources_recovered(self):
        _, sources = decode_object_full(encode_object(self.make_class()))
        assert ("instance", "raise:", "raise: amount\n ^amount") in sources
        assert ("class", "new", "new\n ^super new") in sources
        assert all(selector != "name" for _, selector, _ in sources)

    def test_plain_object_has_no_sources(self):
        _, sources = decode_object_full(encode_object(GemObject(1, 2)))
        assert sources == []


class TestRoots:
    def test_roundtrip(self):
        fields = {
            "epoch": 7, "last_tx_time": 123, "next_oid": 5000,
            "alias_counter": 12,
            "object_table_tracks": [5, 9], "allocation_tracks": [11],
            "catalog_tracks": [13, 14],
        }
        assert decode_root(encode_root(fields)) == fields

    def test_empty_track_lists(self):
        fields = {
            "epoch": 1, "last_tx_time": 1, "next_oid": 1, "alias_counter": 0,
            "object_table_tracks": [], "allocation_tracks": [],
            "catalog_tracks": [],
        }
        assert decode_root(encode_root(fields)) == fields

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            decode_root(b"XXXX....")

    def test_catalog_blob_roundtrip(self):
        from repro.storage.codec import decode_catalog, encode_catalog

        catalog = {"world": 2048, "class:Object": 1, "class:Integer": 8}
        assert decode_catalog(encode_catalog(catalog)) == catalog
        assert decode_catalog(encode_catalog({})) == {}


# -- property-based: any storable object round-trips ------------------------

immediates = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False), st.text(max_size=20),
    st.builds(Symbol, st.text(max_size=10)),
    st.builds(Char, st.characters()),
)
element_values = st.one_of(immediates, st.builds(Ref, st.integers(0, 2**40)))
element_names = st.one_of(
    st.text(min_size=1, max_size=12),
    st.integers(min_value=-1000, max_value=10**6),
    st.builds(Symbol, st.text(min_size=1, max_size=8)),
)


@st.composite
def gem_objects(draw):
    obj = GemObject(
        oid=draw(st.integers(0, 2**40)),
        class_oid=draw(st.integers(0, 2**20)),
        segment_id=draw(st.integers(0, 100)),
        created_at=draw(st.integers(0, 1000)),
    )
    for name in draw(st.lists(element_names, max_size=8, unique=True)):
        times = sorted(draw(st.lists(st.integers(0, 500), min_size=1, max_size=5, unique=True)))
        for t in times:
            obj.bind(name, draw(element_values), time=t)
    return obj


@given(gem_objects())
def test_object_roundtrip_property(obj):
    back = decode_object(encode_object(obj))
    assert back.oid == obj.oid
    assert back.class_oid == obj.class_oid
    assert set(back.elements) == set(obj.elements)
    for name, table in obj.elements.items():
        assert list(back.elements[name].history()) == list(table.history())
