"""Unit tests for the simulated disk."""

import pytest

from repro.errors import ChecksumError, DiskCrashed, DiskError
from repro.storage import DiskGeometry, SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk(DiskGeometry(track_count=16, track_size=128))


class TestBasicIO:
    def test_unwritten_track_reads_zeroes(self, disk):
        assert disk.read_track(3) == bytes(128)
        assert not disk.is_written(3)

    def test_write_then_read(self, disk):
        disk.write_track(5, b"hello")
        data = disk.read_track(5)
        assert data.startswith(b"hello")
        assert len(data) == 128
        assert disk.is_written(5)

    def test_whole_track_padding(self, disk):
        disk.write_track(0, b"x")
        assert disk.read_track(0) == b"x" + bytes(127)

    def test_oversized_write_rejected(self, disk):
        with pytest.raises(DiskError):
            disk.write_track(0, bytes(129))

    def test_exact_size_write_accepted(self, disk):
        disk.write_track(0, bytes(128))

    @pytest.mark.parametrize("track", [-1, 16, 1000])
    def test_out_of_range(self, disk, track):
        with pytest.raises(DiskError):
            disk.read_track(track)
        with pytest.raises(DiskError):
            disk.write_track(track, b"")


class TestAccounting:
    def test_counters(self, disk):
        disk.write_track(0, b"a")
        disk.read_track(0)
        disk.read_track(10)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2

    def test_seek_distance_accumulates(self, disk):
        disk.write_track(0, b"a")
        disk.write_track(10, b"b")
        disk.write_track(2, b"c")
        assert disk.stats.seek_distance == 10 + 8

    def test_sequential_cheaper_than_scattered(self):
        geometry = DiskGeometry(track_count=100, track_size=64)
        sequential = SimulatedDisk(geometry)
        scattered = SimulatedDisk(geometry)
        for i in range(20):
            sequential.write_track(i, b"x")
        for i in range(20):
            scattered.write_track((i * 37) % 100, b"x")
        assert sequential.stats.time_units < scattered.stats.time_units

    def test_reset(self, disk):
        disk.write_track(0, b"a")
        disk.stats.reset()
        assert disk.stats.writes == 0
        assert disk.stats.time_units == 0.0


class TestFaultInjection:
    def test_crash_after_n_writes(self, disk):
        disk.crash_after(2)
        disk.write_track(0, b"a")
        disk.write_track(1, b"b")
        with pytest.raises(DiskCrashed):
            disk.write_track(2, b"c")
        assert disk.crashed

    def test_crashing_write_is_lost(self, disk):
        disk.write_track(2, b"old")
        disk.crash_after(0)
        with pytest.raises(DiskCrashed):
            disk.write_track(2, b"new")
        disk.restart()
        assert disk.read_track(2).startswith(b"old")

    def test_all_io_fails_while_down(self, disk):
        disk.crash_after(0)
        with pytest.raises(DiskCrashed):
            disk.write_track(0, b"")
        with pytest.raises(DiskCrashed):
            disk.read_track(0)

    def test_restart_preserves_surviving_tracks(self, disk):
        disk.write_track(0, b"kept")
        disk.crash_after(0)
        with pytest.raises(DiskCrashed):
            disk.write_track(1, b"lost")
        disk.restart()
        assert disk.read_track(0).startswith(b"kept")
        assert not disk.is_written(1)

    def test_cancel_crash(self, disk):
        disk.crash_after(0)
        disk.cancel_crash()
        disk.write_track(0, b"fine")

    def test_corruption_detected_by_checksum(self, disk):
        disk.write_track(4, b"precious")
        disk.corrupt_track(4)
        with pytest.raises(ChecksumError):
            disk.read_track(4)

    def test_corrupting_unwritten_track_rejected(self, disk):
        with pytest.raises(DiskError):
            disk.corrupt_track(9)

    def test_negative_crash_budget_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.crash_after(-1)
