"""Torn-write sweep: crash at *every* write offset of one commit group.

The parametrized sweep below is exhaustive, not sampled — the write
count of the victim commit is measured at import time on a throwaway
clone, and one test case crashes before each of those writes in turn.
Recovery must land the previous epoch with every pre-crash value intact.
"""

import pytest

from repro.core import GemObject
from repro.errors import DiskCrashed
from repro.storage import (
    DiskGeometry,
    Linker,
    SimulatedDisk,
    StableStore,
    Write,
    Creation,
)


def _commit(store, creations=(), writes=()):
    tx_time = store.last_tx_time + 1
    dirty = Linker(store).incorporate(
        [Creation(o) for o in creations], [Write(*w) for w in writes], tx_time
    )
    store.persist(dirty, tx_time)


def _update_writes(oids):
    return [(oid, "v", f"new{i}") for i, oid in enumerate(oids)]


def _prepare():
    """One committed base image + the write count of the victim commit."""
    disk = SimulatedDisk(DiskGeometry(track_count=512, track_size=512))
    store = StableStore.format(disk)
    objs = [
        GemObject(oid=store.allocate_oid(), class_oid=store.classes["Object"])
        for _ in range(4)
    ]
    _commit(store, objs, [(o.oid, "v", f"old{i}") for i, o in enumerate(objs)])
    oids = [o.oid for o in objs]
    base_epoch = store.commit_manager.current_epoch

    probe_disk = disk.clone()
    probe = StableStore.open(probe_disk)
    before = probe_disk.stats.writes
    _commit(probe, writes=_update_writes(oids))
    write_count = probe_disk.stats.writes - before
    return disk, oids, base_epoch, write_count


_DISK, _OIDS, _BASE_EPOCH, _WRITE_COUNT = _prepare()


def test_victim_commit_spans_multiple_tracks():
    # the sweep is only meaningful if the commit group is multi-write
    assert _WRITE_COUNT >= 4


@pytest.mark.parametrize("crash_at", range(_WRITE_COUNT))
def test_crash_at_every_offset_lands_previous_epoch(crash_at):
    disk = _DISK.clone()
    store = StableStore.open(disk)
    disk.crash_after(crash_at)
    with pytest.raises(DiskCrashed):
        _commit(store, writes=_update_writes(_OIDS))
    disk.restart()
    recovered = StableStore.open(disk)
    assert recovered.commit_manager.current_epoch == _BASE_EPOCH
    for index, oid in enumerate(_OIDS):
        assert recovered.object(oid).value("v") == f"old{index}"


def test_crash_after_final_write_lands_new_epoch():
    """One past the sweep: the whole group reached the platter."""
    disk = _DISK.clone()
    store = StableStore.open(disk)
    disk.crash_after(_WRITE_COUNT)
    _commit(store, writes=_update_writes(_OIDS))
    disk.restart()
    recovered = StableStore.open(disk)
    assert recovered.commit_manager.current_epoch == _BASE_EPOCH + 1
    for index, oid in enumerate(_OIDS):
        assert recovered.object(oid).value("v") == f"new{index}"
