"""Integration tests: stable store, commit manager, object table, archive."""

import pytest

from repro.core import GemObject, Ref
from repro.errors import ArchiveError, DiskCrashed, NoSuchObject, RecoveryError
from repro.storage import (
    ArchiveMedia,
    Creation,
    DiskGeometry,
    Linker,
    SimulatedDisk,
    StableStore,
    Write,
)


def small_disk():
    return SimulatedDisk(DiskGeometry(track_count=512, track_size=512))


@pytest.fixture
def store():
    return StableStore.format(small_disk())


def commit(store, creations=(), writes=(), tx_time=None):
    """Drive the Linker + persist pipeline for one transaction."""
    tx_time = tx_time if tx_time is not None else store.last_tx_time + 1
    dirty = Linker(store).incorporate(
        [Creation(o) for o in creations], [Write(*w) for w in writes], tx_time
    )
    store.persist(dirty, tx_time)
    return tx_time


def new_obj(store, class_name="Object"):
    return GemObject(oid=store.allocate_oid(), class_oid=store.classes[class_name])


class TestFormatAndOpen:
    def test_format_commits_bootstrap_classes(self, store):
        assert store.commit_manager.current_epoch == 1
        assert store.contains(store.classes["Object"])

    def test_open_fresh_disk_fails(self):
        with pytest.raises(RecoveryError):
            StableStore.open(small_disk())

    def test_reopen_restores_classes(self, store):
        reopened = StableStore.open(store.disk)
        assert reopened.classes == store.classes
        integer = reopened.class_named("Integer")
        assert integer.superclass(reopened).name == "Number"

    def test_reopen_restores_counters(self, store):
        obj = new_obj(store)
        commit(store, creations=[obj], writes=[(obj.oid, "x", 1)])
        reopened = StableStore.open(store.disk)
        assert reopened.allocate_oid() > obj.oid
        assert reopened.last_tx_time == store.last_tx_time


class TestCommitReload:
    def test_roundtrip_elements(self, store):
        obj = new_obj(store)
        t = commit(store, [obj], [(obj.oid, "name", "Acme"), (obj.oid, "n", 3)])
        reopened = StableStore.open(store.disk)
        loaded = reopened.object(obj.oid)
        assert loaded.value("name") == "Acme"
        assert loaded.created_at == t

    def test_references_survive(self, store):
        parent, child = new_obj(store), new_obj(store)
        commit(store, [parent, child], [(parent.oid, "child", Ref(child.oid)),
                                        (child.oid, "name", "leaf")])
        reopened = StableStore.open(store.disk)
        assert reopened.fetch(reopened.object(parent.oid), "child").value("name") == "leaf"

    def test_history_accumulates_across_commits(self, store):
        obj = new_obj(store)
        t1 = commit(store, [obj], [(obj.oid, "salary", 100)])
        t2 = commit(store, writes=[(obj.oid, "salary", 200)])
        reopened = StableStore.open(store.disk)
        loaded = reopened.object(obj.oid)
        assert loaded.value_at("salary", t1) == 100
        assert loaded.value_at("salary", t2) == 200

    def test_writes_in_one_commit_share_time(self, store):
        a, b = new_obj(store), new_obj(store)
        t = commit(store, [a, b], [(a.oid, "x", 1), (b.oid, "y", 2)])
        assert store.object(a.oid).elements["x"].last_time == t
        assert store.object(b.oid).elements["y"].last_time == t

    def test_large_object_beyond_track_size(self, store):
        """No 64KB ceiling: a multi-kilobyte string spans tracks."""
        obj = new_obj(store)
        big = "x" * (store.disk.track_size * 5)
        commit(store, [obj], [(obj.oid, "doc", big)])
        reopened = StableStore.open(store.disk)
        assert reopened.object(obj.oid).value("doc") == big

    def test_many_objects(self, store):
        objs = [new_obj(store) for _ in range(300)]
        commit(store, objs, [(o.oid, "i", i) for i, o in enumerate(objs)])
        reopened = StableStore.open(store.disk)
        assert reopened.object(objs[250].oid).value("i") == 250

    def test_cold_read_goes_to_disk(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", 1)])
        store.cache.flush()
        reads_before = store.disk.stats.reads
        store.object(obj.oid)
        assert store.disk.stats.reads > reads_before

    def test_warm_read_avoids_disk(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", 1)])
        store.object(obj.oid)
        reads_before = store.disk.stats.reads
        store.object(obj.oid)
        assert store.disk.stats.reads == reads_before

    def test_missing_oid(self, store):
        with pytest.raises(NoSuchObject):
            store.object(999999)


class TestSafeWrites:
    def test_crash_mid_group_preserves_old_state(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", "old")])
        store.disk.crash_after(1)
        with pytest.raises(DiskCrashed):
            commit(store, writes=[(obj.oid, "x", "new")])
        store.disk.restart()
        recovered = StableStore.open(store.disk)
        assert recovered.object(obj.oid).value("x") == "old"

    @pytest.mark.parametrize("crash_at", [0, 1, 2, 3, 5, 8])
    def test_all_or_nothing_at_every_crash_point(self, crash_at):
        """E8 core invariant: each crash point yields old or new, never mixed."""
        store = StableStore.format(small_disk())
        a, b = new_obj(store), new_obj(store)
        commit(store, [a, b], [(a.oid, "v", "old-a"), (b.oid, "v", "old-b")])
        store.disk.crash_after(crash_at)
        committed = True
        try:
            commit(store, writes=[(a.oid, "v", "new-a"), (b.oid, "v", "new-b")])
        except DiskCrashed:
            committed = False
        store.disk.restart()
        recovered = StableStore.open(store.disk)
        va = recovered.object(a.oid).value("v")
        vb = recovered.object(b.oid).value("v")
        if committed:
            assert (va, vb) == ("new-a", "new-b")
        else:
            assert (va, vb) == ("old-a", "old-b")

    def test_epoch_advances_per_commit(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", 1)])
        first = store.commit_manager.current_epoch
        commit(store, writes=[(obj.oid, "x", 2)])
        assert store.commit_manager.current_epoch == first + 1

    def test_corrupt_newest_root_falls_back(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", "first")])
        # find the slot the last commit used and corrupt it
        slot = store.commit_manager._current_slot
        store.disk.corrupt_track(slot, flip_byte=2)
        recovered = StableStore.open(store.disk)
        # falls back to the previous root: the object may not exist there
        assert recovered.commit_manager.current_epoch < store.commit_manager.current_epoch

    def test_tracks_reclaimed_after_commit(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", "a" * 200)])
        allocated_after_first = len(store.tracks.allocated_tracks())
        for i in range(10):
            commit(store, writes=[(obj.oid, "x", f"value-{i}" * 20)])
        # rewriting the same object should not leak tracks without bound
        growth = len(store.tracks.allocated_tracks()) - allocated_after_first
        assert growth < 10


class TestArchive:
    def test_archive_and_fetch_via_mounted_media(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", "precious")])
        media = ArchiveMedia("tape-1")
        store.archive_object(obj.oid, media)
        store.cache.flush()
        with pytest.raises(ArchiveError):
            store.object(obj.oid)
        store.archive_drive.mount(media)
        assert store.object(obj.oid).value("x") == "precious"

    def test_archive_state_survives_reopen(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", "precious")])
        media = ArchiveMedia()
        store.archive_object(obj.oid, media)
        commit(store, writes=[])  # persist the table change
        reopened = StableStore.open(store.disk)
        with pytest.raises(ArchiveError):
            reopened.object(obj.oid)
        reopened.archive_drive.mount(media)
        assert reopened.object(obj.oid).value("x") == "precious"

    def test_double_archive_rejected(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", 1)])
        media = ArchiveMedia()
        store.archive_object(obj.oid, media)
        with pytest.raises(ArchiveError):
            store.archive_object(obj.oid, media)

    def test_unmount_revokes_access(self, store):
        obj = new_obj(store)
        commit(store, [obj], [(obj.oid, "x", 1)])
        media = ArchiveMedia()
        store.archive_object(obj.oid, media)
        store.archive_drive.mount(media)
        store.cache.flush()
        store.object(obj.oid)
        store.cache.flush()
        store.archive_drive.unmount()
        with pytest.raises(ArchiveError):
            store.object(obj.oid)


class TestLinkerOrdering:
    def test_parent_packs_before_child(self, store):
        parent, child = new_obj(store), new_obj(store)
        dirty = Linker(store).incorporate(
            [Creation(child), Creation(parent)],
            [Write(parent.oid, "child", Ref(child.oid)), Write(child.oid, "x", 1)],
            tx_time=2,
        )
        oids = [o.oid for o in dirty]
        assert oids.index(parent.oid) < oids.index(child.oid)

    def test_cycles_do_not_hang(self, store):
        a, b = new_obj(store), new_obj(store)
        dirty = Linker(store).incorporate(
            [Creation(a), Creation(b)],
            [Write(a.oid, "peer", Ref(b.oid)), Write(b.oid, "peer", Ref(a.oid))],
            tx_time=2,
        )
        assert {o.oid for o in dirty} == {a.oid, b.oid}

    def test_tree_children_cluster_on_nearby_tracks(self, store):
        root = new_obj(store)
        children = [new_obj(store) for _ in range(8)]
        writes = [Write(root.oid, f"c{i}", Ref(c.oid)) for i, c in enumerate(children)]
        writes += [Write(c.oid, "payload", "d" * 40) for c in children]
        dirty = Linker(store).incorporate(
            [Creation(root)] + [Creation(c) for c in children], writes, tx_time=2
        )
        store.persist(dirty, 2)
        tracks = {store.table.get(c.oid).tracks[0] for c in children}
        # 9 small objects should land on very few, adjacent tracks
        assert max(tracks) - min(tracks) <= 2


class TestStorageReportDiskHealth:
    def test_plain_disk_adds_no_health_keys(self, store):
        report = store.storage_report()
        assert "resilience_retries" not in report
        assert "replication_repairs" not in report

    def test_resilient_stack_counters_are_surfaced(self):
        from repro.faults import FaultClock, FaultPlan, FaultSpec, FaultyDisk
        from repro.faults.resilience import ResilientDisk

        clock = FaultClock()
        plan = FaultPlan(seed=3, spec=FaultSpec(transient_rate=0.5))
        stack = ResilientDisk(
            FaultyDisk(small_disk(), plan, clock), clock, max_retries=6
        )
        store = StableStore.format(stack)
        obj = new_obj(store)
        commit(store, creations=[obj], writes=[(obj.oid, "x", 1)])
        report = store.storage_report()
        assert report["resilience_retries"] == stack.retries > 0
        assert report["resilience_backoff_time"] == stack.backoff_time
        assert report["resilience_degraded"] is False
        assert report["faults_transient"] == stack.inner.transient_errors > 0

    def test_replica_health_is_reported_per_replica(self):
        from repro.storage import ReplicatedDisk

        replicas = [small_disk() for _ in range(3)]
        volume = ReplicatedDisk(replicas)
        store = StableStore.format(volume)
        obj = new_obj(store)
        commit(store, creations=[obj], writes=[(obj.oid, "x", 1)])
        # damage one replica so a read fails checksum and gets repaired
        track = store.table.get(obj.oid).tracks[0]
        replicas[0].corrupt_track(track, flip_byte=5)
        store.cache.evict(obj.oid)
        store.flush_caches()
        store.object(obj.oid)
        report = store.storage_report()
        assert report["replication_repairs"] == volume.repairs >= 1
        assert report["replica0_read_failures"] >= 1
        assert report["replica0_repairs"] >= 1
        assert report["replica1_read_failures"] == 0
        assert "replica2_repairs" in report
