"""Unit tests for the Boxer and the Track Manager."""

import pytest

from repro.errors import DiskError, StorageError
from repro.storage import (
    Boxer,
    DiskGeometry,
    Fragment,
    RESERVED_TRACKS,
    SimulatedDisk,
    TrackManager,
    assemble,
    read_entries,
)
from repro.storage.boxer import TrackImageBuilder, find_fragment


class TestBoxerPacking:
    def test_small_records_share_a_track(self):
        boxer = Boxer(track_size=512)
        records = [(i, bytes([i]) * 20) for i in range(5)]
        result = boxer.pack(records)
        assert len(result.images) == 1
        assert all(result.placements[i] == [0] for i in range(5))

    def test_order_preserved_within_track(self):
        boxer = Boxer(track_size=512)
        result = boxer.pack([(3, b"a" * 10), (1, b"b" * 10), (2, b"c" * 10)])
        oids = [f.oid for f in read_entries(result.images[0])]
        assert oids == [3, 1, 2]

    def test_overflow_starts_new_track(self):
        boxer = Boxer(track_size=128)
        records = [(i, bytes(60)) for i in range(4)]
        result = boxer.pack(records)
        assert len(result.images) > 1
        # every record still single-fragment
        for i in range(4):
            assert len(result.placements[i]) == 1

    def test_large_object_fragments_across_tracks(self):
        """Objects may exceed a track: no 64KB-style ceiling."""
        boxer = Boxer(track_size=256)
        big = bytes(range(256)) * 8  # 2048 bytes >> track
        result = boxer.pack([(7, big)])
        assert len(result.placements[7]) > 1
        fragments = [
            f
            for image in result.images
            for f in read_entries(image)
            if f.oid == 7
        ]
        assert assemble(fragments) == big

    def test_fragments_land_in_recorded_images(self):
        boxer = Boxer(track_size=256)
        big = bytes(1000)
        result = boxer.pack([(1, b"xx"), (7, big), (2, b"yy")])
        for seq, image_index in enumerate(result.placements[7]):
            found = find_fragment(result.images[image_index], 7, seq)
            assert found.total == len(result.placements[7])

    def test_duplicate_oid_rejected(self):
        boxer = Boxer(track_size=256)
        with pytest.raises(Exception):
            boxer.pack([(1, b"a"), (1, b"b")])

    def test_empty_pack(self):
        result = Boxer(track_size=256).pack([])
        assert result.images == []
        assert result.placements == {}

    def test_tiny_track_size_rejected(self):
        with pytest.raises(ValueError):
            Boxer(track_size=10)

    def test_images_fit_in_track(self):
        boxer = Boxer(track_size=200)
        records = [(i, bytes(i * 13 % 190)) for i in range(30)]
        result = boxer.pack(records)
        assert all(len(image) <= 200 for image in result.images)


class TestTrackImages:
    def test_read_entries_stops_at_terminator(self):
        builder = TrackImageBuilder(128)
        builder.add(Fragment(5, 0, 1, b"abc"))
        image = builder.finish() + b"\x07garbage"
        entries = list(read_entries(image))
        assert len(entries) == 1
        assert entries[0].payload == b"abc"

    def test_assemble_rejects_incomplete_chain(self):
        with pytest.raises(Exception):
            assemble([Fragment(1, 0, 3, b"a"), Fragment(1, 2, 3, b"c")])

    def test_assemble_orders_by_seq(self):
        data = assemble([Fragment(1, 1, 2, b"b"), Fragment(1, 0, 2, b"a")])
        assert data == b"ab"


@pytest.fixture
def tm():
    return TrackManager(SimulatedDisk(DiskGeometry(track_count=32, track_size=128)))


class TestTrackManager:
    def test_root_slots_pre_allocated(self, tm):
        assert set(RESERVED_TRACKS) <= tm.allocated_tracks()

    def test_allocate_prefers_contiguous(self, tm):
        run = tm.allocate(4)
        assert run == [2, 3, 4, 5]

    def test_allocate_skips_allocated(self, tm):
        first = tm.allocate(2)
        second = tm.allocate(2)
        assert not set(first) & set(second)

    def test_release_and_reuse(self, tm):
        run = tm.allocate(3)
        tm.release(run)
        assert tm.allocate(3) == run

    def test_cannot_release_reserved(self, tm):
        with pytest.raises(StorageError):
            tm.release([0])

    def test_disk_full(self, tm):
        with pytest.raises(StorageError):
            tm.allocate(100)

    def test_fragmented_allocation_falls_back(self, tm):
        a = tm.allocate(28)       # nearly fill
        tm.release(a[::2])        # free every other track
        run = tm.allocate(3)      # no contiguous run of 3 exists
        assert len(run) == 3
        assert len(set(run)) == 3

    def test_write_respects_reserved(self, tm):
        with pytest.raises(DiskError):
            tm.write(0, b"x")

    def test_write_group_in_ascending_order(self, tm):
        tm.write_group({9: b"c", 3: b"a", 5: b"b"})
        # elevator order => head ends at the highest track
        assert tm.disk.read_track(3).startswith(b"a")
        assert tm.disk.stats.writes == 3

    def test_bitmap_roundtrip(self, tm):
        tm.allocate(5)
        saved = tm.bitmap_bytes()
        fresh = TrackManager(SimulatedDisk(DiskGeometry(track_count=32, track_size=128)))
        fresh.load_bitmap(saved)
        assert fresh.allocated_tracks() == tm.allocated_tracks()

    def test_split_join_bitmap(self, tm):
        tm.allocate(7)
        chunks = tm.split_bitmap()
        assert tm.join_bitmap(chunks) == tm.bitmap_bytes()

    def test_read_many_deduplicates(self, tm):
        run = tm.allocate(2)
        tm.write(run[0], b"x")
        result = tm.read_many([run[0], run[0], run[1]])
        assert set(result) == set(run)
