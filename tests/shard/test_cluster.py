"""ShardedGemStone: routing, fast path, 2PC commit/abort, conflicts."""

import pytest

from repro.errors import (
    SessionClosed,
    ShardRoutingError,
    ShardUnavailable,
    TransactionConflict,
)
from repro.shard import ShardedGemStone
from repro.shard.partition import shard_of


def keys_on_distinct_shards(shard_count, n=2):
    """World binding names hashing to *n* different shards."""
    picked, owners = [], set()
    i = 0
    while len(picked) < n:
        key = f"key{i}"
        owner = shard_of(key, shard_count)
        if owner not in owners:
            owners.add(owner)
            picked.append(key)
        i += 1
    return picked


class TestRoutingAndFastPath:
    def test_single_shard_transaction_skips_the_coordinator(self):
        cluster = ShardedGemStone(shard_count=3)
        session = cluster.login()
        session.execute("World!solo := 42")
        session.commit()
        assert cluster.single_shard_commits == 1
        assert cluster.cross_shard_commits == 0
        assert cluster.coordinator.log.commits_recorded == 0

    def test_cross_shard_statement_is_rejected_typed(self):
        cluster = ShardedGemStone(shard_count=2)
        session = cluster.login()
        a, b = keys_on_distinct_shards(2)
        with pytest.raises(ShardRoutingError):
            session.execute(f"World!{a} := World!{b}")

    def test_values_are_readable_from_any_session(self):
        cluster = ShardedGemStone(shard_count=3)
        writer = cluster.login()
        for i in range(6):
            writer.execute(f"World!val{i} := {i * 10}")
        writer.commit()
        reader = cluster.login()
        assert [reader.execute(f"World!val{i}") for i in range(6)] == [
            0, 10, 20, 30, 40, 50,
        ]


class TestCrossShardCommit:
    def test_two_shard_commit_is_atomic_and_logged_then_forgotten(self):
        cluster = ShardedGemStone(shard_count=2)
        session = cluster.login()
        a, b = keys_on_distinct_shards(2)
        session.execute(f"World!{a} := 'left'")
        session.execute(f"World!{b} := 'right'")
        session.commit()
        assert cluster.cross_shard_commits == 1
        # fully acknowledged: the decision log entry was forgotten
        assert cluster.coordinator.log.commits_recorded == 1
        assert cluster.coordinator.log.pending() == {}
        reader = cluster.login()
        assert reader.execute(f"World!{a}") == "left"
        assert reader.execute(f"World!{b}") == "right"

    def test_read_only_transaction_commits_without_phase_two(self):
        cluster = ShardedGemStone(shard_count=2)
        writer = cluster.login()
        a, b = keys_on_distinct_shards(2)
        writer.execute(f"World!{a} := 1")
        writer.execute(f"World!{b} := 2")
        writer.commit()
        reader = cluster.login()
        reader.execute(f"World!{a}")
        reader.execute(f"World!{b}")
        recorded = cluster.coordinator.log.commits_recorded
        reader.commit()  # both participants vote yes read-only
        assert cluster.coordinator.log.commits_recorded == recorded

    def test_conflicting_cross_shard_commit_aborts_everywhere(self):
        cluster = ShardedGemStone(shard_count=2)
        setup = cluster.login()
        a, b = keys_on_distinct_shards(2)
        setup.execute(f"World!{a} := 0")
        setup.execute(f"World!{b} := 0")
        setup.commit()

        first = cluster.login()
        second = cluster.login()
        for session, bump in ((first, 1), (second, 10)):
            session.execute(f"World!{a} := (World!{a}) + {bump}")
            session.execute(f"World!{b} := (World!{b}) + {bump}")
        first.commit()
        with pytest.raises(TransactionConflict):
            second.commit()
        # the loser left no partial state on either shard
        reader = cluster.login()
        assert reader.execute(f"World!{a}") == 1
        assert reader.execute(f"World!{b}") == 1
        assert cluster.in_doubt() == {}

    def test_abort_rolls_back_every_participant(self):
        cluster = ShardedGemStone(shard_count=2)
        session = cluster.login()
        a, b = keys_on_distinct_shards(2)
        session.execute(f"World!{a} := 'x'")
        session.execute(f"World!{b} := 'y'")
        session.abort()
        reader = cluster.login()
        assert reader.execute(f"World!{a}") is None
        assert reader.execute(f"World!{b}") is None

    def test_empty_commit_is_a_noop(self):
        cluster = ShardedGemStone(shard_count=2)
        assert cluster.login().commit() is None


class TestSessionLifecycle:
    def test_closed_session_rejects_execution(self):
        cluster = ShardedGemStone(shard_count=2)
        session = cluster.login()
        session.close()
        with pytest.raises(SessionClosed):
            session.execute("World!x := 1")

    def test_context_manager_discards_in_flight_work(self):
        cluster = ShardedGemStone(shard_count=2)
        with cluster.login() as session:
            session.execute("World!temp := 1")
        assert cluster.login().execute("World!temp") is None

    def test_opal_computation_round_trips_the_wire(self):
        cluster = ShardedGemStone(shard_count=2)
        session = cluster.login()
        session.execute("""
            | s |
            s := Set new.
            #(1 2 3 4 5) do: [:n | s add: n].
            World!numbers := s
        """)
        session.commit()
        reader = cluster.login()
        assert reader.execute(
            "(World!numbers select: [:n | n > 2]) size"
        ) == 3


class TestRetryBackoff:
    """Channel retries pace through govern's jittered backoff policy."""

    def test_cluster_channels_share_a_seeded_policy(self):
        from repro.govern import CommitPolicy

        cluster = ShardedGemStone(shard_count=2)
        assert isinstance(cluster.retry_policy, CommitPolicy)
        for channel in cluster.exec_channels:
            assert channel.policy is cluster.retry_policy

    def test_dead_worker_retries_back_off_exponentially(self):
        cluster = ShardedGemStone(shard_count=2, deadline=100.0)
        session = cluster.login()
        cluster.workers[0].alive = False
        cluster.workers[1].alive = False
        before = cluster.clock.now
        with pytest.raises(ShardUnavailable):
            for i in range(99):  # first statement to hit a dead worker
                session.execute(f"World!bk{i} := 1")
        channel = next(c for c in cluster.exec_channels if c.retries)
        # 4 retries at base 1.0, factor 2.0: at least 1+2+4+8 units,
        # strictly more than the flat retry_delay pacing would spend
        elapsed = cluster.clock.now - before
        assert channel.retries == channel.max_attempts - 1
        assert elapsed >= 15.0
