"""The 2PC crash sweep and its CLI reproducer, as a fast regression."""

import json

from repro.shard.__main__ import main as shard_main
from repro.shard.soak import run_shard_soak


class TestSweep:
    def test_small_sweep_holds_every_invariant(self):
        report = run_shard_soak(seed=11, shards=2, transactions=4, stride=2)
        assert report.ok, [f.describe() for f in report.failures]
        assert report.kill_points_run > 0
        assert report.acked_checked > 0
        assert report.liveness_commits == report.kill_points_run

    def test_digest_is_json_ready(self):
        report = run_shard_soak(seed=11, shards=2, transactions=3, stride=4)
        digest = json.loads(json.dumps(report.digest()))
        assert digest["ok"] is True
        assert digest["seed"] == 11

    def test_every_failure_carries_a_reproducer(self):
        report = run_shard_soak(seed=11, shards=2, transactions=3, stride=4)
        for failure in report.failures:
            assert "python -m repro.shard" in failure.reproducer


class TestCli:
    def test_single_kill_replay_exits_zero(self, capsys):
        assert shard_main(["--seed", "11", "--shards", "2",
                           "--transactions", "4", "--kill", "0"]) == 0
        assert "ok: zero acked loss" in capsys.readouterr().out

    def test_json_digest_output(self, capsys):
        assert shard_main(["--seed", "11", "--shards", "2",
                           "--transactions", "4", "--kill", "1",
                           "--json"]) == 0
        digest = json.loads(capsys.readouterr().out.split("\nok:")[0])
        assert digest["ok"] is True

    def test_out_of_range_kill_is_a_usage_error(self, capsys):
        assert shard_main(["--seed", "11", "--shards", "2",
                           "--transactions", "4", "--kill", "99999"]) == 2
        assert "error:" in capsys.readouterr().out
