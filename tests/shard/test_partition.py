"""Partitioning: stable hashing and single-shard statement routing."""

import pytest

from repro.errors import ShardRoutingError
from repro.shard.partition import route_statement, shard_of, statement_keys


class TestShardOf:
    def test_placement_is_stable_across_calls(self):
        assert shard_of("employees", 4) == shard_of("employees", 4)

    def test_placement_is_content_hashed_not_runtime_hashed(self):
        # sha-256 based: the same key lands on the same shard in every
        # process, which is what lets a restarted worker find its data.
        # Pin one value so an accidental algorithm change is loud.
        assert shard_of("employees", 4) == int.from_bytes(
            __import__("hashlib").sha256(b"employees").digest()[:8], "big"
        ) % 4

    def test_every_shard_is_reachable(self):
        owners = {shard_of(f"key{i}", 3) for i in range(64)}
        assert owners == {0, 1, 2}

    def test_single_shard_owns_everything(self):
        assert shard_of("anything", 1) == 0

    def test_zero_shards_rejected(self):
        with pytest.raises(ShardRoutingError):
            shard_of("key", 0)


class TestStatementKeys:
    def test_extracts_world_bindings_in_order(self):
        source = "World!a := World!b + World!a"
        assert statement_keys(source) == ["a", "b"]

    def test_no_bindings(self):
        assert statement_keys("3 + 4") == []


class TestRouteStatement:
    def test_bindingless_statement_routes_to_shard_zero(self):
        assert route_statement("3 + 4", 4) == 0

    def test_single_binding_routes_to_its_owner(self):
        assert route_statement("World!x := 1", 5) == shard_of("x", 5)

    def test_cross_shard_statement_is_rejected_with_placements(self):
        # find two keys on different shards
        keys = ["k%d" % i for i in range(32)]
        a = keys[0]
        b = next(k for k in keys if shard_of(k, 2) != shard_of(a, 2))
        with pytest.raises(ShardRoutingError) as excinfo:
            route_statement(f"World!{a} := World!{b}", 2)
        assert a in str(excinfo.value) and b in str(excinfo.value)

    def test_everything_routes_somewhere_on_one_shard(self):
        assert route_statement("World!a := World!b", 1) == 0
