"""Worker-crash matrix over real processes (satellite of repro.net).

Each case SIGKILLs a real worker process at one named 2PC window — the
wire windows around PREPARE/VOTE/DECIDE_ACK plus the durability
windows inside the worker — then recovers the cluster and proves the
decision log resolves every gtid: nothing stays in doubt, the killed
transaction is atomically all-present or all-absent, an acked commit
is never lost, and the recovered cluster still commits cross-shard.
"""

from __future__ import annotations

import pytest

from repro.errors import GemStoneError
from repro.shard.partition import shard_of
from repro.shard.procs import ProcCluster, run_proc_soak
from repro.shard.soak import WindowKiller

VICTIM = 0

#: every window a worker can die at, each (name, nth occurrence)
WINDOWS = [
    ("wire.prepare_received", 0),  # PREPARE arrived, nothing happened
    ("prepare.before_persist", 0),  # validated, record not yet durable
    ("prepare.after_persist", 0),  # record durable, vote never sent
    ("wire.vote_sent", 0),  # vote on the wire, decision pending
    ("decide.before_apply", 0),  # decision received, not yet applied
    ("decide.after_apply", 0),  # applied durably, ack never sent
    ("wire.decide_ack_sent", 0),  # ack on the wire, then death
]


def _cross_shard_keys(prefix: str, shards: int = 2) -> dict[int, str]:
    """One key per shard, so the transaction is genuinely cross-shard."""
    keys: dict[int, str] = {}
    probe = 0
    while len(keys) < shards:
        key = f"{prefix}{probe}"
        keys.setdefault(shard_of(key, shards), key)
        probe += 1
    return keys


def _await_death(proc) -> bool:
    if proc.process is not None:
        proc.process.join(timeout=3.0)
    return not proc.alive


@pytest.mark.parametrize("window,nth", WINDOWS, ids=[w for w, _ in WINDOWS])
def test_worker_sigkill_at_window_recovers(window, nth):
    cluster = ProcCluster(
        shard_count=2, worker_kill_windows={VICTIM: (window, nth)}
    )
    try:
        keys = _cross_shard_keys("mx")
        session = cluster.login()
        acked = False
        try:
            for _shard, key in sorted(keys.items()):
                session.execute(f"World!{key} := 'v_{key}'")
            session.commit()
            acked = True
        except GemStoneError:
            try:
                session.abort()
            except GemStoneError:
                pass
        assert _await_death(cluster.procs[VICTIM]), (
            f"worker survived its armed window {window}"
        )

        cluster.recover()

        # the decision log resolved every gtid: nothing left in doubt
        for shard_id in range(cluster.shard_count):
            status = cluster.status(shard_id)
            assert status["in_doubt"] == []
            assert status["durable_prepared"] == []

        # atomicity (and zero acked loss)
        checker = cluster.login()
        values = {
            key: checker.execute(f"World!{key}") for key in keys.values()
        }
        checker.abort()
        landed = [k for k, v in values.items() if v == f"v_{k}"]
        assert len(landed) in (0, len(values)), (
            f"half-committed after {window}: {values}"
        )
        if acked:
            assert len(landed) == len(values), (
                f"acked transaction lost after {window}: {values}"
            )

        # liveness: the recovered cluster commits fresh cross-shard work
        live = cluster.login()
        for _shard, key in sorted(_cross_shard_keys("lv").items()):
            live.execute(f"World!{key} := 'alive'")
        live.commit()
    finally:
        cluster.close()


def test_coordinator_death_resolves_from_log():
    """Kill the coordinator right after the decision persist: the client
    is told in-doubt, and recovery must land the logged commit."""
    killer = WindowKiller(None)
    # find the coord.after_decision_persist window index with a dry run
    cluster = ProcCluster(shard_count=2, coordinator_killer=killer)
    try:
        session = cluster.login()
        for _shard, key in sorted(_cross_shard_keys("dry").items()):
            session.execute(f"World!{key} := 'x'")
        session.commit()
        target = next(
            i for i, (name, _v) in enumerate(killer.log)
            if name == "coord.after_decision_persist"
        )
    finally:
        cluster.close()

    cluster = ProcCluster(
        shard_count=2, coordinator_killer=WindowKiller(target)
    )
    try:
        keys = _cross_shard_keys("cd")
        session = cluster.login()
        for _shard, key in sorted(keys.items()):
            session.execute(f"World!{key} := 'v_{key}'")
        with pytest.raises(GemStoneError):
            session.commit()
        assert not cluster.coordinator.alive

        cluster.recover()  # restarts the coordinator from its log file

        checker = cluster.login()
        values = {
            key: checker.execute(f"World!{key}") for key in keys.values()
        }
        checker.abort()
        assert all(values[k] == f"v_{k}" for k in values), (
            f"logged commit not delivered after coordinator restart: {values}"
        )
        assert cluster.in_doubt() == {}
    finally:
        cluster.close()


def test_sigterm_drains_cleanly():
    """SIGTERM is a graceful drain: exit 0, platter intact."""
    cluster = ProcCluster(shard_count=2)
    try:
        session = cluster.login()
        for _shard, key in sorted(_cross_shard_keys("dr").items()):
            session.execute(f"World!{key} := 'kept'")
        session.commit()
    finally:
        exitcodes = cluster.close(drain=True, cleanup=False)
    assert exitcodes == [0, 0]

    # the drained platters reopen with the committed state
    import shutil

    recovered = ProcCluster(shard_count=2, base_dir=cluster.base_dir)
    try:
        checker = recovered.login()
        for key in _cross_shard_keys("dr").values():
            assert checker.execute(f"World!{key}") == "kept"
        checker.abort()
    finally:
        recovered.close()
        shutil.rmtree(cluster.base_dir, ignore_errors=True)


def test_proc_sweep_smoke():
    """A strided slice of the full SIGKILL sweep stays invariant-clean."""
    report = run_proc_soak(stride=7)
    assert report.ok, [f.describe() for f in report.failures]
    assert report.kill_points_run >= 5
    assert report.liveness_commits == report.kill_points_run
