"""The durable decision log: presumed abort, safe writes, restartability."""

from repro.shard.decisions import DecisionLog
from repro.storage.disk import DiskGeometry, SimulatedDisk


def fresh_disk(tracks=128, size=512):
    return SimulatedDisk(DiskGeometry(track_count=tracks, track_size=size))


class TestPresumedAbort:
    def test_unknown_gtid_resolves_to_abort(self):
        log = DecisionLog.create(fresh_disk())
        assert log.decision("g0.99") is False

    def test_recorded_commit_resolves_to_commit(self):
        log = DecisionLog.create(fresh_disk())
        log.record_commit("g0.1", [0, 2])
        assert log.decision("g0.1") is True
        assert log.pending() == {"g0.1": (0, 2)}

    def test_forgotten_commit_presumes_abort_again(self):
        # after every participant acked, the entry is dropped: nobody
        # can ever ask again, so ABORT is a safe (if moot) answer
        log = DecisionLog.create(fresh_disk())
        log.record_commit("g0.1", [1])
        log.forget("g0.1")
        assert log.decision("g0.1") is False
        assert log.pending() == {}

    def test_forget_of_unknown_gtid_is_idempotent(self):
        log = DecisionLog.create(fresh_disk())
        log.forget("g0.404")
        assert log.forgotten == 0


class TestDurability:
    def test_decisions_survive_reopen(self):
        disk = fresh_disk()
        log = DecisionLog.create(disk)
        log.record_commit("g0.1", [0, 1])
        log.record_commit("g0.2", [2])
        log.forget("g0.2")
        reopened = DecisionLog.open(disk)
        assert reopened.decision("g0.1") is True
        assert reopened.decision("g0.2") is False
        assert reopened.pending() == {"g0.1": (0, 1)}

    def test_empty_log_reopens_empty(self):
        disk = fresh_disk()
        DecisionLog.create(disk)
        assert DecisionLog.open(disk).pending() == {}

    def test_many_entries_span_multiple_tracks(self):
        disk = fresh_disk(tracks=256, size=64)  # tiny tracks force chunking
        log = DecisionLog.create(disk)
        for i in range(20):
            log.record_commit(f"g0.{i}", [i % 3, 3])
        reopened = DecisionLog.open(disk)
        assert len(reopened.pending()) == 20
        assert reopened.decision("g0.19") is True

    def test_report_counters(self):
        log = DecisionLog.create(fresh_disk())
        log.record_commit("g0.1", [0])
        log.forget("g0.1")
        report = log.report()
        assert report["commits_recorded"] == 1
        assert report["forgotten"] == 1
        assert report["pending"] == 0
