"""Crash-and-restart: in-doubt resolution against the decision log."""

import pytest

from repro.errors import TransactionInDoubt
from repro.shard import ShardedGemStone, WindowKiller
from repro.shard.partition import shard_of


def cross_shard_keys(shard_count, n=2):
    picked, owners = [], set()
    i = 0
    while len(picked) < n:
        key = f"rk{i}"
        owner = shard_of(key, shard_count)
        if owner not in owners:
            owners.add(owner)
            picked.append(key)
        i += 1
    return picked


def window_census(drive):
    """Run *drive* against an unarmed killer; the ordered window log."""
    killer = WindowKiller(None)
    cluster = ShardedGemStone(shard_count=2, killer=killer)
    drive(cluster)
    return killer.log


def restart(cluster):
    recovered = ShardedGemStone(
        worker_disks=[worker.disk for worker in cluster.workers],
        decision_disk=cluster.decision_disk,
        generation=cluster.generation + 1,
    )
    stats = recovered.recover()
    return recovered, stats


class TestParticipantCrash:
    def drive(self, cluster):
        session = cluster.login()
        a, b = cross_shard_keys(2)
        session.execute(f"World!{a} := 'A'")
        session.execute(f"World!{b} := 'B'")
        session.commit()

    def kill_at(self, window_name):
        census = window_census(self.drive)
        return next(
            i for i, (name, _victim) in enumerate(census)
            if name == window_name
        )

    def run_killed(self, kill_at):
        killer = WindowKiller(kill_at)
        cluster = ShardedGemStone(shard_count=2, killer=killer)
        session = cluster.login()
        a, b = cross_shard_keys(2)
        session.execute(f"World!{a} := 'A'")
        session.execute(f"World!{b} := 'B'")
        outcome = None
        try:
            session.commit()
            outcome = "acked"
        except Exception as error:  # noqa: BLE001 — the point of the test
            outcome = type(error).__name__
        return cluster, killer, outcome, (a, b)

    def test_crash_after_prepare_persist_resolves_on_restart(self):
        cluster, killer, outcome, (a, b) = self.run_killed(
            self.kill_at("prepare.after_persist")
        )
        assert killer.fired is not None
        recovered, stats = restart(cluster)
        assert recovered.in_doubt() == {}
        reader = recovered.login()
        values = {reader.execute(f"World!{key}") for key in (a, b)}
        # atomic either way: both landed or neither did
        assert values in ({"A", "B"}, {None})

    def test_crash_before_prepare_persist_presumes_abort(self):
        cluster, killer, outcome, (a, b) = self.run_killed(
            self.kill_at("prepare.before_persist")
        )
        assert outcome != "acked"
        recovered, stats = restart(cluster)
        assert recovered.in_doubt() == {}
        reader = recovered.login()
        # nothing was logged: the dead participant's half must be absent
        values = {reader.execute(f"World!{key}") for key in (a, b)}
        assert values in ({"A", "B"}, {None})

    def test_crash_before_decide_apply_commits_via_resolve(self):
        # the decision was logged before the participant died applying
        # it, so restart must land the transaction on the commit side
        cluster, killer, outcome, (a, b) = self.run_killed(
            self.kill_at("decide.before_apply")
        )
        recovered, stats = restart(cluster)
        assert stats["resolved"] >= 1
        assert recovered.in_doubt() == {}
        reader = recovered.login()
        assert reader.execute(f"World!{a}") == "A"
        assert reader.execute(f"World!{b}") == "B"


class TestCoordinatorCrash:
    def test_mid_decide_crash_reports_in_doubt_then_commits(self):
        census = window_census(TestParticipantCrash().drive)
        kill_at = next(
            i for i, (name, victim) in enumerate(census)
            if name == "coord.mid_decide"
        )
        killer = WindowKiller(kill_at)
        cluster = ShardedGemStone(shard_count=2, killer=killer)
        session = cluster.login()
        a, b = cross_shard_keys(2)
        session.execute(f"World!{a} := 'A'")
        session.execute(f"World!{b} := 'B'")
        with pytest.raises(TransactionInDoubt):
            session.commit()
        # the decision WAS logged before the crash: restart commits it
        recovered, stats = restart(cluster)
        assert recovered.in_doubt() == {}
        assert recovered.coordinator.log.pending() == {}
        reader = recovered.login()
        assert reader.execute(f"World!{a}") == "A"
        assert reader.execute(f"World!{b}") == "B"

    def test_crash_before_decision_persist_presumes_abort(self):
        census = window_census(TestParticipantCrash().drive)
        kill_at = next(
            i for i, (name, victim) in enumerate(census)
            if name == "coord.before_decision_persist"
        )
        killer = WindowKiller(kill_at)
        cluster = ShardedGemStone(shard_count=2, killer=killer)
        session = cluster.login()
        a, b = cross_shard_keys(2)
        session.execute(f"World!{a} := 'A'")
        session.execute(f"World!{b} := 'B'")
        with pytest.raises(TransactionInDoubt):
            session.commit()
        recovered, stats = restart(cluster)
        assert recovered.in_doubt() == {}
        reader = recovered.login()
        # nothing reached the log: presumed abort on every shard
        assert reader.execute(f"World!{a}") is None
        assert reader.execute(f"World!{b}") is None

    def test_recovered_cluster_accepts_new_cross_shard_commits(self):
        census = window_census(TestParticipantCrash().drive)
        kill_at = next(
            i for i, (name, _v) in enumerate(census)
            if name == "coord.mid_decide"
        )
        killer = WindowKiller(kill_at)
        cluster = ShardedGemStone(shard_count=2, killer=killer)
        session = cluster.login()
        a, b = cross_shard_keys(2)
        session.execute(f"World!{a} := 'A'")
        session.execute(f"World!{b} := 'B'")
        with pytest.raises(TransactionInDoubt):
            session.commit()
        recovered, _stats = restart(cluster)
        fresh = recovered.login()
        c, d = cross_shard_keys(2, n=2)
        fresh.execute(f"World!{c} := 'C2'")
        fresh.execute(f"World!{d} := 'D2'")
        fresh.commit()
        reader = recovered.login()
        assert reader.execute(f"World!{c}") == "C2"
        assert reader.execute(f"World!{d}") == "D2"
