"""Unit and property tests for the B+tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.directories import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(5) == []
        assert 5 not in tree
        assert list(tree.items()) == []
        assert tree.min_key() is None
        assert tree.max_key() is None

    def test_insert_and_search(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        assert tree.search(5) == ["a"]
        assert 5 in tree
        assert len(tree) == 1

    def test_duplicate_keys_bucket(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert sorted(tree.search(5)) == ["a", "b"]
        assert len(tree) == 2

    def test_min_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_many_inserts_force_splits(self):
        tree = BPlusTree(order=4)
        for i in range(200):
            tree.insert(i, i * 10)
        assert tree.depth() > 1
        for i in range(200):
            assert tree.search(i) == [i * 10]

    def test_reverse_insert_order(self):
        tree = BPlusTree(order=4)
        for i in reversed(range(100)):
            tree.insert(i, i)
        assert [k for k, _ in tree.items()] == list(range(100))

    def test_min_max(self):
        tree = BPlusTree(order=4)
        for i in (5, 1, 9, 3):
            tree.insert(i, i)
        assert tree.min_key() == 1
        assert tree.max_key() == 9


class TestRangeScan:
    def make(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 2):  # evens
            tree.insert(i, f"v{i}")
        return tree

    def test_closed_range(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_open_ends(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(10, 20, include_low=False,
                                              include_high=False)] == [12, 14, 16, 18]

    def test_unbounded_low(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(None, 6)] == [0, 2, 4, 6]

    def test_unbounded_high(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(94, None)] == [94, 96, 98]

    def test_bounds_not_present(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(9, 15)] == [10, 12, 14]

    def test_empty_range(self):
        tree = self.make()
        assert list(tree.range_scan(13, 13)) == []

    def test_duplicates_all_yielded(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert len(list(tree.range_scan(0, 10))) == 2


class TestRemoval:
    def test_remove_value(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.remove(5, "a")
        assert tree.search(5) == ["b"]
        assert len(tree) == 1

    def test_remove_missing(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        assert not tree.remove(5, "zzz")
        assert not tree.remove(6, "a")
        assert len(tree) == 1

    def test_remove_all(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.remove_all(5) == 2
        assert 5 not in tree
        assert len(tree) == 0

    def test_remove_then_scan_skips(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(i, i)
        for i in range(0, 50, 3):
            tree.remove(i, i)
        expected = [i for i in range(50) if i % 3 != 0]
        assert [k for k, _ in tree.items()] == expected


# -- property tests against a dict-of-lists model ----------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove"]),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=200,
)


@given(ops)
@settings(max_examples=100)
def test_btree_matches_dict_model(operations):
    tree = BPlusTree(order=4)
    model: dict[int, list[int]] = {}
    for op, key, value in operations:
        if op == "insert":
            tree.insert(key, value)
            model.setdefault(key, []).append(value)
        else:
            removed = tree.remove(key, value)
            bucket = model.get(key, [])
            if value in bucket:
                assert removed
                bucket.remove(value)
                if not bucket:
                    del model[key]
            else:
                assert not removed
    assert len(tree) == sum(len(b) for b in model.values())
    for key in range(51):
        assert sorted(tree.search(key)) == sorted(model.get(key, []))
    scanned = [k for k, _ in tree.items()]
    assert scanned == sorted(scanned)
    expected_keys = sorted(k for k, b in model.items() if b)
    assert sorted(set(scanned)) == expected_keys


@given(
    st.lists(st.integers(0, 1000), min_size=1, max_size=150),
    st.integers(0, 1000),
    st.integers(0, 1000),
)
def test_range_scan_matches_filter(keys, a, b):
    low, high = min(a, b), max(a, b)
    tree = BPlusTree(order=6)
    for k in keys:
        tree.insert(k, k)
    result = [k for k, _ in tree.range_scan(low, high)]
    assert result == sorted(k for k in keys if low <= k <= high)
