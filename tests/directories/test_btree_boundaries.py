"""B+tree split/merge boundaries + directory temporal-edge regressions.

The first half pins the structural edges of :class:`BPlusTree`: the
exact insert that forces a leaf split, separator placement, the leaf
chain after cascading splits, and draining buckets back to empty.  The
second half pins two directory behaviors the differential oracle
surfaced: reads pinned *before* a directory was built must fall back to
the base history, and no-value discriminators land in the UNKEYED
bucket (reachable via ``lookup_unkeyed``) rather than vanishing.
"""

import pytest

from repro.core import MemoryObjectManager
from repro.directories import BPlusTree, Directory, DirectoryManager


ORDER = 4  # the minimum legal order: boundaries arrive fastest


class TestLeafSplitBoundary:
    def test_exactly_at_capacity_does_not_split(self):
        tree = BPlusTree(order=ORDER)
        for i in range(ORDER):
            tree.insert(i, i)
        assert tree.depth() == 1

    def test_one_past_capacity_splits_once(self):
        tree = BPlusTree(order=ORDER)
        for i in range(ORDER + 1):
            tree.insert(i, i)
        assert tree.depth() == 2
        assert list(tree.keys()) == list(range(ORDER + 1))

    def test_split_separator_is_first_key_of_right_leaf(self):
        tree = BPlusTree(order=ORDER)
        for i in range(ORDER + 1):
            tree.insert(i, i)
        root = tree._root
        separator = root.keys[0]
        assert root.children[1].keys[0] == separator
        # every key in the left leaf is strictly below the separator
        assert all(k < separator for k in root.children[0].keys)

    def test_duplicate_bucket_survives_a_split_intact(self):
        tree = BPlusTree(order=ORDER)
        for _ in range(3):
            tree.insert(2, "dup")
        for i in range(ORDER + 1):
            tree.insert(10 + i, i)
        assert tree.search(2) == ["dup", "dup", "dup"]
        assert len(tree) == 3 + ORDER + 1

    def test_leaf_chain_stays_ordered_after_cascading_splits(self):
        tree = BPlusTree(order=ORDER)
        for i in reversed(range(100)):  # adversarial: descending inserts
            tree.insert(i, i)
        assert list(tree.keys()) == list(range(100))
        assert tree.depth() >= 3  # the root itself must have split
        # range_scan walks the leaf chain across every split boundary
        assert [k for k, _v in tree.range_scan(0, 99)] == list(range(100))

    def test_range_scan_brackets_align_with_leaf_edges(self):
        tree = BPlusTree(order=ORDER)
        for i in range(20):
            tree.insert(i, i)
        root = tree._root
        edge = root.children[-1].keys[0] if root.keys else 10
        inclusive = [k for k, _ in tree.range_scan(edge, edge)]
        assert inclusive == [edge]
        exclusive = [
            k for k, _ in tree.range_scan(edge, edge + 2, include_low=False)
        ]
        assert exclusive == [edge + 1, edge + 2]


class TestRemovalBoundary:
    def test_draining_a_bucket_removes_the_key(self):
        tree = BPlusTree(order=ORDER)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a")
        assert 1 in tree
        assert tree.remove(1, "b")
        assert 1 not in tree
        assert not tree.remove(1, "b")  # already gone

    def test_emptied_leaves_stay_scannable(self):
        tree = BPlusTree(order=ORDER)
        for i in range(30):
            tree.insert(i, i)
        for i in range(10, 20):  # drain one interior region entirely
            assert tree.remove_all(i) == 1
        assert len(tree) == 20
        assert [k for k, _ in tree.range_scan(0, 29)] == (
            list(range(10)) + list(range(20, 30))
        )
        assert tree.min_key() == 0
        assert tree.max_key() == 29

    def test_removing_the_extremes_moves_min_and_max(self):
        tree = BPlusTree(order=ORDER)
        for i in range(12):
            tree.insert(i, i)
        tree.remove_all(0)
        tree.remove_all(11)
        assert tree.min_key() == 1
        assert tree.max_key() == 10

    def test_insertion_order_does_not_change_the_contents(self):
        import random

        rng = random.Random(2026)
        keys = list(range(60))
        shuffled = keys[:]
        rng.shuffle(shuffled)
        ascending, shuffled_tree = BPlusTree(order=ORDER), BPlusTree(order=ORDER)
        for k in keys:
            ascending.insert(k, k * 2)
        for k in shuffled:
            shuffled_tree.insert(k, k * 2)
        assert list(ascending.items()) == list(shuffled_tree.items())


@pytest.fixture
def om():
    return MemoryObjectManager()


def employees(om, salaries):
    emps = om.instantiate("Object")
    members = []
    for i, salary in enumerate(salaries):
        fields = {"name": f"e{i}"}
        if salary is not None:
            fields["salary"] = salary
        member = om.instantiate("Object", **fields)
        om.bind(emps, om.new_alias(), member)
        members.append(member)
    return emps, members


class TestPreCreationReads:
    """A directory built at T answers queries pinned before T.

    Found by the differential oracle: optimized plans returned [] for
    times predating ``build()`` while scans returned the base data.  The
    directory now detects pre-build times and falls back to a
    brute-force walk of the owner's history.
    """

    def test_lookup_before_build_time_uses_the_base_history(self, om):
        emps, members = employees(om, [100, 200])
        early = om.now
        om.tick()
        om.tick()
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        assert d.build_time == om.now
        assert d.lookup(200, early) == [members[1].oid]
        assert d.historical_lookups == 1

    def test_range_before_build_time(self, om):
        emps, members = employees(om, [100, 200, 300])
        early = om.now
        om.tick()
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        assert list(d.range(150, 250, early)) == [members[1].oid]

    def test_before_the_data_existed_is_empty(self, om):
        genesis = om.now
        om.tick()
        emps, _members = employees(om, [100])
        om.tick()
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        assert d.lookup(100, genesis) == []

    def test_at_and_after_build_time_uses_the_index(self, om):
        emps, members = employees(om, [100])
        om.tick()
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        assert d.lookup(100, om.now) == [members[0].oid]
        assert d.lookup(100, None) == [members[0].oid]
        assert d.historical_lookups == 0


class TestUnkeyedBucket:
    def test_unresolvable_discriminators_are_reachable(self, om):
        emps, members = employees(om, [100, None, None])
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        assert sorted(d.lookup_unkeyed(None)) == sorted(
            m.oid for m in members[1:]
        )
        assert d.lookup(100, None) == [members[0].oid]

    def test_unkeyed_before_build_falls_back_too(self, om):
        emps, members = employees(om, [None])
        early = om.now
        om.tick()
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        assert d.lookup_unkeyed(early) == [members[0].oid]

    def test_binding_the_field_moves_a_member_out_of_unkeyed(self, om):
        emps, members = employees(om, [None])
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        dm = DirectoryManager(om)
        dm._by_owner[emps.oid] = [d]
        dm._all.append(d)
        t = om.tick()
        om.bind(members[0], "salary", 500)
        from repro.storage.linker import Write

        dm.on_commit(t, [], [Write(members[0].oid, "salary", 500)], [])
        assert d.lookup_unkeyed(None) == []
        assert d.lookup(500, None) == [members[0].oid]
