"""Tests for time-aware directories and the Directory Manager."""

import pytest

from repro.concurrency import SessionObjectManager, TransactionManager
from repro.core import MemoryObjectManager, Ref
from repro.directories import Directory, DirectoryManager, UNKEYED, normalize_key
from repro.errors import DirectoryError
from repro.storage import DiskGeometry, SimulatedDisk, StableStore


class TestNormalizeKey:
    def test_type_ranking_total_order(self):
        keys = [normalize_key(v) for v in (None, False, 2.5, 3, "a", Ref(9))]
        assert sorted(keys) == keys  # already rank-ordered

    def test_numbers_compare_across_int_float(self):
        assert normalize_key(2) < normalize_key(2.5) < normalize_key(3)

    def test_unindexable_rejected(self):
        with pytest.raises(DirectoryError):
            normalize_key(object())

    def test_unkeyed_sorts_after_everything(self):
        assert UNKEYED > normalize_key(Ref(10**9))


@pytest.fixture
def om():
    return MemoryObjectManager()


def build_employees(om, salaries):
    emps = om.instantiate("Object")
    members = []
    for i, salary in enumerate(salaries):
        member = om.instantiate("Object", name=f"e{i}", salary=salary)
        om.bind(emps, om.new_alias(), member)
        members.append(member)
    return emps, members


class TestDirectoryOnMemoryStore:
    def test_build_and_lookup(self, om):
        emps, members = build_employees(om, [100, 200, 200, 300])
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        assert set(d.lookup(200)) == {members[1].oid, members[2].oid}
        assert d.lookup(999) == []

    def test_range(self, om):
        emps, members = build_employees(om, [100, 200, 300, 400])
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        found = list(d.range(150, 350))
        assert found == [members[1].oid, members[2].oid]

    def test_unkeyed_members_still_tracked(self, om):
        emps = om.instantiate("Object")
        member = om.instantiate("Object", name="no-salary")
        om.bind(emps, om.new_alias(), member)
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        assert d.is_member(member.oid)
        assert list(d.range(0, 10**9)) == []

    def test_rekey_keeps_history(self, om):
        emps, members = build_employees(om, [100])
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        t0 = om.now
        om.tick()
        om.bind(members[0], "salary", 500)
        d.rekey_member(om, members[0].oid, om.now)
        assert d.lookup(500) == [members[0].oid]
        assert d.lookup(100) == []
        # the past state still finds the old key (interval stamping)
        assert d.lookup(100, time=t0) == [members[0].oid]
        assert d.lookup(500, time=t0) == []

    def test_remove_member_closes_interval(self, om):
        emps, members = build_employees(om, [100])
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        t0 = om.now
        om.tick()
        d.remove_member(om, members[0].oid, om.now)
        assert d.lookup(100) == []
        assert d.lookup(100, time=t0) == [members[0].oid]

    def test_nested_discriminator_dependencies(self, om):
        """Name!Last as discriminator: inner object changes re-key."""
        emps = om.instantiate("Object")
        name = om.instantiate("Object", First="Ellen", Last="Burns")
        member = om.instantiate("Object", Name=name)
        om.bind(emps, om.new_alias(), member)
        d = Directory(emps.oid, "Name!Last")
        d.build(om, om.now)
        assert d.lookup("Burns") == [member.oid]
        assert member.oid in d.depends_on(name.oid)
        om.tick()
        om.bind(name, "Last", "Peters")
        d.rekey_member(om, member.oid, om.now)
        assert d.lookup("Peters") == [member.oid]
        assert d.lookup("Burns") == []

    def test_member_appears_on_two_branches_across_time(self, om):
        """The paper's nested-discriminator headache, verified directly."""
        emps, members = build_employees(om, [100])
        d = Directory(emps.oid, "salary")
        d.build(om, om.now)
        t_old = om.now
        om.tick()
        om.bind(members[0], "salary", 200)
        d.rekey_member(om, members[0].oid, om.now)
        # same member reachable under both keys, at the right times
        assert d.lookup(100, time=t_old) == [members[0].oid]
        assert d.lookup(200) == [members[0].oid]
        assert d.entry_count() == 2


@pytest.fixture
def txn_setup():
    store = StableStore.format(
        SimulatedDisk(DiskGeometry(track_count=2048, track_size=1024))
    )
    tm = TransactionManager(store)
    dm = DirectoryManager(store)
    tm.add_commit_listener(dm.on_commit)
    return store, tm, dm


def new_session(store, tm):
    return SessionObjectManager(store, tm)


class TestDirectoryManagerAtCommit:
    def test_created_directory_indexes_existing_members(self, txn_setup):
        store, tm, dm = txn_setup
        s = new_session(store, tm)
        emps = s.instantiate("Object")
        e1 = s.instantiate("Object", salary=100)
        s.bind(emps, "m1", e1)
        s.commit()
        d = dm.create_directory(Ref(emps.oid), "salary")
        assert d.lookup(100) == [e1.oid]

    def test_commit_adds_new_members(self, txn_setup):
        store, tm, dm = txn_setup
        s = new_session(store, tm)
        emps = s.instantiate("Object")
        s.commit()
        d = dm.create_directory(Ref(emps.oid), "salary")
        e = s.instantiate("Object", salary=250)
        s.bind(emps.oid, "m1", e)
        s.commit()
        assert d.lookup(250) == [e.oid]

    def test_commit_removes_departed_members(self, txn_setup):
        store, tm, dm = txn_setup
        s = new_session(store, tm)
        emps = s.instantiate("Object")
        e = s.instantiate("Object", salary=250)
        s.bind(emps, "m1", e)
        s.commit()
        d = dm.create_directory(Ref(emps.oid), "salary")
        s.unbind(emps.oid, "m1")  # departure: nil binding
        t = s.commit()
        assert d.lookup(250) == []
        assert d.lookup(250, time=t - 1) == [e.oid]

    def test_commit_rekeys_on_discriminator_write(self, txn_setup):
        store, tm, dm = txn_setup
        s = new_session(store, tm)
        emps = s.instantiate("Object")
        e = s.instantiate("Object", salary=100)
        s.bind(emps, "m1", e)
        s.commit()
        d = dm.create_directory(Ref(emps.oid), "salary")
        s.bind(e.oid, "salary", 175)
        s.commit()
        assert d.lookup(175) == [e.oid]
        assert d.lookup(100) == []

    def test_nested_discriminator_rekeyed_through_inner_object(self, txn_setup):
        store, tm, dm = txn_setup
        s = new_session(store, tm)
        emps = s.instantiate("Object")
        name = s.instantiate("Object", Last="Burns")
        e = s.instantiate("Object", Name=name)
        s.bind(emps, "m1", e)
        s.commit()
        d = dm.create_directory(Ref(emps.oid), "Name!Last")
        s.bind(name.oid, "Last", "Peters")
        s.commit()
        assert d.lookup("Peters") == [e.oid]
        assert d.lookup("Burns") == []

    def test_member_replacement_swaps_entries(self, txn_setup):
        store, tm, dm = txn_setup
        s = new_session(store, tm)
        emps = s.instantiate("Object")
        e1 = s.instantiate("Object", salary=100)
        s.bind(emps, "slot", e1)
        s.commit()
        d = dm.create_directory(Ref(emps.oid), "salary")
        e2 = s.instantiate("Object", salary=900)
        s.bind(emps.oid, "slot", e2)
        s.commit()
        assert d.lookup(100) == []
        assert d.lookup(900) == [e2.oid]

    def test_duplicate_directory_rejected(self, txn_setup):
        store, tm, dm = txn_setup
        s = new_session(store, tm)
        emps = s.instantiate("Object")
        s.commit()
        dm.create_directory(Ref(emps.oid), "salary")
        with pytest.raises(DirectoryError):
            dm.create_directory(Ref(emps.oid), "salary")

    def test_hints_translated(self, txn_setup):
        store, tm, dm = txn_setup
        s = new_session(store, tm)
        emps = s.instantiate("Object")
        e = s.instantiate("Object", salary=5)
        s.bind(emps, "m1", e)
        s.commit()
        d = dm.apply_hint(f"{emps.oid} on salary")
        assert d.lookup(5) == [e.oid]

    def test_malformed_hint_rejected(self, txn_setup):
        _, _, dm = txn_setup
        with pytest.raises(DirectoryError):
            dm.apply_hint("nonsense")
        with pytest.raises(DirectoryError):
            dm.apply_hint("12 on ")

    def test_definitions_roundtrip(self, txn_setup):
        store, tm, dm = txn_setup
        s = new_session(store, tm)
        emps = s.instantiate("Object")
        e = s.instantiate("Object", salary=7)
        s.bind(emps, "m1", e)
        s.commit()
        dm.create_directory(Ref(emps.oid), "salary", name="bySalary")
        defs = dm.export_definitions()
        dm2 = DirectoryManager(store)
        dm2.import_definitions(defs)
        rebuilt = dm2.find_directory(emps.oid, "salary")
        assert rebuilt is not None
        assert rebuilt.lookup(7) == [e.oid]
        assert rebuilt.name == "bySalary"
