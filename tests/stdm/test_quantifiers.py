"""Existential and universal quantifiers inside conditions."""

import pytest

from repro.core import MemoryObjectManager
from repro.stdm import (
    Const,
    Exists,
    ForAll,
    QueryContext,
    SetQuery,
    translate,
    variables,
)


@pytest.fixture
def om():
    return MemoryObjectManager()


def collection(om, *values):
    obj = om.instantiate("Object")
    for value in values:
        om.bind(obj, om.new_alias(), value)
    return obj


class TestExists:
    def test_basic(self, om):
        numbers = collection(om, 1, 5, 9)
        x = variables("x")[0]
        expr = Exists("x", Const(numbers), x > 7)
        assert expr.evaluate(QueryContext(om), {}) is True
        expr = Exists("x", Const(numbers), x > 100)
        assert expr.evaluate(QueryContext(om), {}) is False

    def test_empty_source_is_false(self, om):
        empty = collection(om)
        x = variables("x")[0]
        assert Exists("x", Const(empty), x.eq(x)).evaluate(
            QueryContext(om), {}
        ) is False

    def test_shadowing_outer_binding(self, om):
        numbers = collection(om, 1, 2)
        x = variables("x")[0]
        expr = Exists("x", Const(numbers), x.eq(2))
        # an outer x must not leak in or out
        bindings = {"x": 999}
        assert expr.evaluate(QueryContext(om), bindings) is True
        assert bindings["x"] == 999

    def test_free_vars_exclude_bound(self, om):
        x, y = variables("x", "y")
        expr = Exists("x", y.path("items"), x > y.path("limit"))
        assert expr.free_vars() == {"y"}


class TestForAll:
    def test_basic(self, om):
        numbers = collection(om, 2, 4, 6)
        x = variables("x")[0]
        ctx = QueryContext(om)
        assert ForAll("x", Const(numbers), x > 1).evaluate(ctx, {}) is True
        assert ForAll("x", Const(numbers), x > 3).evaluate(ctx, {}) is False

    def test_vacuous_truth(self, om):
        empty = collection(om)
        x = variables("x")[0]
        assert ForAll("x", Const(empty), x > 100).evaluate(
            QueryContext(om), {}
        ) is True


class TestQuantifiedQueries:
    def build_departments(self, om):
        """Departments whose every manager is senior (the relational
        two-quantifier headache, section 5.2, as one construct)."""
        def dept(name, seniorities):
            managers = om.instantiate("Object")
            for years in seniorities:
                member = om.instantiate("Object", years=years)
                om.bind(managers, om.new_alias(), member)
            return om.instantiate("Object", Name=name, Managers=managers)

        return collection(
            om,
            dept("AllSenior", [10, 12]),
            dept("Mixed", [15, 2]),
            dept("NoManagers", []),
        )

    def test_departments_where_all_managers_senior(self, om):
        departments = self.build_departments(om)
        d, m = variables("d", "m")
        query = SetQuery(
            result=d.path("Name"),
            binders=[(d, Const(departments))],
            condition=ForAll("m", d.path("Managers"), m.path("years") >= 5),
        )
        results = sorted(query.evaluate(QueryContext(om)))
        assert results == ["AllSenior", "NoManagers"]  # vacuous truth

    def test_departments_with_some_junior_manager(self, om):
        departments = self.build_departments(om)
        d, m = variables("d", "m")
        query = SetQuery(
            result=d.path("Name"),
            binders=[(d, Const(departments))],
            condition=Exists("m", d.path("Managers"), m.path("years") < 5),
        )
        assert query.evaluate(QueryContext(om)) == ["Mixed"]

    def test_quantifiers_translate_through_algebra(self, om):
        departments = self.build_departments(om)
        d = variables("d")[0]
        m = variables("m")[0]
        query = SetQuery(
            result=d.path("Name"),
            binders=[(d, Const(departments))],
            condition=ForAll("m", d.path("Managers"), m.path("years") >= 5),
        )
        reference = query.evaluate(QueryContext(om))
        assert translate(query).run(QueryContext(om)) == reference
