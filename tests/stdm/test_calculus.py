"""Tests for set-calculus semantics (the reference evaluator)."""

import pytest

from repro.core import MemoryObjectManager, Ref
from repro.errors import CalculusError
from repro.stdm import (
    Apply,
    Const,
    LabeledSet,
    NOVALUE,
    QueryContext,
    SetQuery,
    Var,
    value_equal,
    variables,
)


class TestExpressions:
    def setup_method(self):
        self.om = MemoryObjectManager()
        self.ctx = QueryContext(self.om)

    def test_const_and_var(self):
        assert Const(5).evaluate(self.ctx, {}) == 5
        assert Var("x").evaluate(self.ctx, {"x": 7}) == 7

    def test_unbound_var(self):
        with pytest.raises(CalculusError):
            Var("x").evaluate(self.ctx, {})

    def test_path_apply(self):
        obj = self.om.instantiate("Object", Salary=100)
        e = Var("e")
        assert e.path("Salary").evaluate(self.ctx, {"e": obj}) == 100

    def test_path_apply_missing_is_novalue(self):
        obj = self.om.instantiate("Object")
        assert Var("e").path("Salary").evaluate(
            self.ctx, {"e": obj}
        ) is NOVALUE

    def test_path_through_simple_value_is_novalue(self):
        obj = self.om.instantiate("Object", x=3)
        assert Var("e").path("x!y").evaluate(self.ctx, {"e": obj}) is NOVALUE

    def test_nested_path(self):
        name = self.om.instantiate("Object", Last="Burns")
        obj = self.om.instantiate("Object", Name=name)
        assert Var("e").path("Name!Last").evaluate(
            self.ctx, {"e": obj}
        ) == "Burns"

    def test_arithmetic(self):
        e = Var("e")
        expr = e * 2 + Const(1)
        assert expr.evaluate(self.ctx, {"e": 10}) == 21
        expr = 0.5 * Var("e")
        assert expr.evaluate(self.ctx, {"e": 10}) == 5.0

    def test_arithmetic_novalue_propagates(self):
        obj = self.om.instantiate("Object")
        expr = Var("e").path("missing") * 2
        assert expr.evaluate(self.ctx, {"e": obj}) is NOVALUE

    def test_comparisons(self):
        ctx, b = self.ctx, {"x": 5}
        assert (Var("x") > 4).evaluate(ctx, b)
        assert (Var("x") >= 5).evaluate(ctx, b)
        assert not (Var("x") < 5).evaluate(ctx, b)
        assert (Var("x") <= 5).evaluate(ctx, b)
        assert Var("x").eq(5).evaluate(ctx, b)
        assert Var("x").ne(4).evaluate(ctx, b)

    def test_comparisons_with_novalue_fail(self):
        obj = self.om.instantiate("Object")
        b = {"e": obj}
        missing = Var("e").path("nope")
        assert not (missing > 1).evaluate(self.ctx, b)
        assert not (missing < 1).evaluate(self.ctx, b)
        assert not missing.eq(1).evaluate(self.ctx, b)
        assert not missing.ne(1).evaluate(self.ctx, b)

    def test_connectives(self):
        t, f = Const(True), Const(False)
        assert (t & t).evaluate(self.ctx, {})
        assert not (t & f).evaluate(self.ctx, {})
        assert (t | f).evaluate(self.ctx, {})
        assert (~f).evaluate(self.ctx, {})

    def test_membership_in_gsdm_set(self):
        coll = self.om.instantiate("Object")
        self.om.bind(coll, self.om.new_alias(), "Sales")
        expr = Const("Sales").in_(Const(coll))
        assert expr.evaluate(self.ctx, {})
        assert not Const("HR").in_(Const(coll)).evaluate(self.ctx, {})

    def test_membership_by_identity_for_objects(self):
        member = self.om.instantiate("Object")
        twin = self.om.instantiate("Object")  # equivalent, not identical
        coll = self.om.instantiate("Object")
        self.om.bind(coll, self.om.new_alias(), member)
        assert Const(member).in_(Const(coll)).evaluate(self.ctx, {})
        assert not Const(twin).in_(Const(coll)).evaluate(self.ctx, {})

    def test_membership_in_labeled_set_and_list(self):
        assert Const(1).in_(Const(LabeledSet.of(1, 2))).evaluate(self.ctx, {})
        assert Const(1).in_(Const([1, 2])).evaluate(self.ctx, {})

    def test_subset_single_construct(self):
        """Section 5.2: subset needs one construct, not two quantifiers."""
        a = self.om.instantiate("Object")
        b = self.om.instantiate("Object")
        for v in ("x", "y"):
            self.om.bind(a, self.om.new_alias(), v)
        for v in ("x", "y", "z"):
            self.om.bind(b, self.om.new_alias(), v)
        assert Const(a).subset_of(Const(b)).evaluate(self.ctx, {})
        assert not Const(b).subset_of(Const(a)).evaluate(self.ctx, {})

    def test_apply_general_computation(self):
        nearest_payday = Apply(lambda d: d + (5 - d % 5) % 5, Var("d"))
        assert nearest_payday.evaluate(self.ctx, {"d": 13}) == 15

    def test_free_vars(self):
        e, d = variables("e", "d")
        expr = (e.path("Salary") > Const(0.1) * d.path("Budget"))
        assert expr.free_vars() == {"e", "d"}

    def test_value_equal_mixes_refs_and_objects(self):
        obj = self.om.instantiate("Object")
        assert value_equal(obj, Ref(obj.oid))
        assert value_equal(Ref(obj.oid), obj)
        assert not value_equal(obj, 5)
        assert value_equal(3, 3)


class TestSetQuery:
    def test_paper_query(self, acme):
        """The section 5.1 employees/managers/10%-of-budget query."""
        e, d, m = variables("e", "d", "m")
        query = SetQuery(
            result={"Emp": e.path("Name!Last"), "Mgr": m},
            binders=[
                (e, Const(acme.employees)),
                (d, Const(acme.departments)),
                (m, d.path("Managers")),
            ],
            condition=(
                d.path("Name").in_(e.path("Depts"))
                & (e.path("Salary") > Const(0.10) * d.path("Budget"))
            ),
        )
        results = query.evaluate(QueryContext(acme.om))
        # Peters: in Sales, 24000 > 14200 -> two managers.
        # Earner: in Research, 30000 > 25650 -> one manager.
        # Burns: Marketing matches no department.
        assert sorted((r["Emp"], r["Mgr"]) for r in results) == [
            ("Earner", "Carter"),
            ("Peters", "Nathen"),
            ("Peters", "Roberts"),
        ]

    def test_dependent_binder(self, acme):
        d, m = variables("d", "m")
        query = SetQuery(
            result=m,
            binders=[(d, Const(acme.departments)), (m, d.path("Managers"))],
        )
        assert sorted(query.evaluate(QueryContext(acme.om))) == [
            "Carter", "Nathen", "Roberts",
        ]

    def test_no_condition_is_product(self, acme):
        e, d = variables("e", "d")
        query = SetQuery(
            result=Const(1),
            binders=[(e, Const(acme.employees)), (d, Const(acme.departments))],
        )
        assert len(query.evaluate(QueryContext(acme.om))) == 6

    def test_scoping_checked_at_construction(self, acme):
        e, d = variables("e", "d")
        with pytest.raises(CalculusError):
            SetQuery(result=e, binders=[(e, d.path("Managers"))])
        with pytest.raises(CalculusError):
            SetQuery(result=d, binders=[(e, Const(acme.employees))])
        with pytest.raises(CalculusError):
            SetQuery(result=e, binders=[(e, Const(acme.employees))],
                     condition=d.path("Name").eq("x"))

    def test_evaluation_at_past_time(self, acme):
        om = acme.om
        t0 = om.now
        om.tick()
        om.bind(acme.peters, "Salary", 99000)
        e, = variables("e")
        query = SetQuery(
            result=e.path("Name!Last"),
            binders=[(e, Const(acme.employees))],
            condition=(e.path("Salary") > 50000),
        )
        assert query.evaluate(QueryContext(om)) == ["Peters"]
        assert query.evaluate(QueryContext(om, time=t0)) == []

    def test_members_of_plain_values_rejected(self):
        om = MemoryObjectManager()
        ctx = QueryContext(om)
        with pytest.raises(CalculusError):
            list(ctx.members(42))

    def test_members_of_nil_is_empty(self):
        om = MemoryObjectManager()
        ctx = QueryContext(om)
        assert list(ctx.members(None)) == []
