"""The batched columnar executor: equivalence, accounting, and modes.

Every plan must produce byte-identical results under ``mode="row"`` and
``mode="vectorized"``, with identical ``rows_out`` counters, identical
``explain()`` output shapes, and identical fuel charges — batching is an
execution strategy, never a semantics change.
"""

import pytest

from repro.core import MemoryObjectManager
from repro.directories import DirectoryManager
from repro.stdm import (
    BindingBatch,
    Const,
    QueryContext,
    SetQuery,
    deduplicate,
    difference,
    executor_mode,
    intersection,
    optimize,
    set_executor_mode,
    translate,
    union,
    variables,
)
from repro.stdm.algebra import DEFAULT_BATCH_SIZE, collect_operators


def run_modes(query, om, dm=None, time=None):
    """The same query through fresh plans in both executor modes."""
    row = translate(query).run(QueryContext(om, time, dm), mode="row")
    vec = translate(query).run(QueryContext(om, time, dm), mode="vectorized")
    return row, vec


def big_collection(om, count, *, every=1):
    """``count`` employees; every ``every``-th one gets a Bonus element."""
    employees = om.instantiate("Object")
    for i in range(count):
        emp = om.instantiate("Object", Salary=i * 10, Rank=i % 7)
        if i % every == 0:
            om.bind(emp, "Bonus", i)
        om.bind(employees, om.new_alias(), emp)
    return employees


class TestModeSwitch:
    def test_default_is_vectorized(self):
        assert executor_mode() == "vectorized"

    def test_set_returns_previous_and_restores(self):
        previous = set_executor_mode("row")
        try:
            assert previous == "vectorized"
            assert executor_mode() == "row"
        finally:
            set_executor_mode(previous)
        assert executor_mode() == "vectorized"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            set_executor_mode("simd")
        with pytest.raises(ValueError):
            e, = variables("e")
            q = SetQuery(result=e, binders=[(e, Const([1]))])
            translate(q).run(QueryContext(MemoryObjectManager()), mode="gpu")

    def test_global_mode_drives_run(self, acme):
        e, = variables("e")
        query = SetQuery(
            result=e.path("Name!Last"), binders=[(e, Const(acme.employees))]
        )
        previous = set_executor_mode("row")
        try:
            row_default = translate(query).run(QueryContext(acme.om))
        finally:
            set_executor_mode(previous)
        vec_default = translate(query).run(QueryContext(acme.om))
        assert row_default == vec_default


class TestEquivalence:
    def test_paper_query_identical(self, acme):
        e, d, m = variables("e", "d", "m")
        query = SetQuery(
            result={"Emp": e.path("Name!Last"), "Mgr": m},
            binders=[
                (e, Const(acme.employees)),
                (d, Const(acme.departments)),
                (m, d.path("Managers")),
            ],
            condition=(
                d.path("Name").in_(e.path("Depts"))
                & (e.path("Salary") > Const(0.10) * d.path("Budget"))
            ),
        )
        row, vec = run_modes(query, acme.om)
        assert row == vec
        assert row == query.evaluate(QueryContext(acme.om))

    def test_missing_elements_yield_novalue_in_batches(self, acme):
        om = MemoryObjectManager()
        employees = big_collection(om, 40, every=3)
        e, = variables("e")
        query = SetQuery(
            result=e.path("Salary"),
            binders=[(e, Const(employees))],
            condition=(e.path("Bonus") > 30),  # NOVALUE on 2/3 of rows
        )
        row, vec = run_modes(query, om)
        assert row == vec
        assert row == query.evaluate(QueryContext(om))

    def test_multiple_batches(self):
        om = MemoryObjectManager()
        employees = big_collection(om, DEFAULT_BATCH_SIZE + 40)
        e, = variables("e")
        query = SetQuery(
            result=e.path("Salary"),
            binders=[(e, Const(employees))],
            condition=(e.path("Rank").eq(3)),
        )
        row, vec = run_modes(query, om)
        assert row == vec
        assert len(row) == (DEFAULT_BATCH_SIZE + 40 + 3) // 7

    def test_boolean_connectives_preserve_semantics(self):
        om = MemoryObjectManager()
        employees = big_collection(om, 50, every=4)
        e, = variables("e")
        query = SetQuery(
            result=e.path("Salary"),
            binders=[(e, Const(employees))],
            condition=(
                ((e.path("Rank") > 2) & (e.path("Bonus") > 8))
                | e.path("Salary").eq(0)
            ),
        )
        row, vec = run_modes(query, om)
        assert row == vec
        assert row == query.evaluate(QueryContext(om))

    def test_dict_results_batched(self, acme):
        e, = variables("e")
        query = SetQuery(
            result={"last": e.path("Name!Last"), "pay": e.path("Salary")},
            binders=[(e, Const(acme.employees))],
        )
        row, vec = run_modes(query, acme.om)
        assert row == vec
        assert all(set(r) == {"last", "pay"} for r in vec)


class TestAccounting:
    def test_rows_out_identical_across_modes(self, acme):
        e, d = variables("e", "d")

        def build():
            return SetQuery(
                result=e.path("Name!Last"),
                binders=[
                    (e, Const(acme.employees)), (d, Const(acme.departments))
                ],
                condition=(e.path("Salary") > 24000) & (d.path("Budget") > 0),
            )

        row_plan = translate(build())
        row_plan.run(QueryContext(acme.om), mode="row")
        vec_plan = translate(build())
        vec_plan.run(QueryContext(acme.om), mode="vectorized")
        row_counts = [op.rows_out for op in collect_operators(row_plan)]
        vec_counts = [op.rows_out for op in collect_operators(vec_plan)]
        assert row_counts == vec_counts
        assert row_plan.explain() == vec_plan.explain()

    def test_fuel_charges_identical_across_modes(self):
        om = MemoryObjectManager()
        employees = big_collection(om, 30, every=2)
        e, d = variables("e", "d")
        departments = big_collection(om, 5)
        query = SetQuery(
            result=e.path("Salary"),
            binders=[(e, Const(employees)), (d, Const(departments))],
            condition=(e.path("Rank") > d.path("Rank")),
        )
        row_ctx = QueryContext(om)
        translate(query).run(row_ctx, mode="row")
        vec_ctx = QueryContext(om)
        translate(query).run(vec_ctx, mode="vectorized")
        assert row_ctx.examined == vec_ctx.examined > 0

    def test_index_scan_batched_matches_row(self, acme):
        om = MemoryObjectManager()
        employees = big_collection(om, 60)
        dm = DirectoryManager(om)
        dm.create_directory(employees, "Salary")
        e, = variables("e")
        query = SetQuery(
            result=e.path("Salary"),
            binders=[(e, Const(employees))],
            condition=(e.path("Salary") > 400),
        )
        plan_row, _ = optimize(query, dm)
        plan_vec, _ = optimize(query, dm)
        row = plan_row.run(QueryContext(om, None, dm), mode="row")
        vec = plan_vec.run(QueryContext(om, None, dm), mode="vectorized")
        assert sorted(row) == sorted(vec)
        assert plan_row.rows_out == plan_vec.rows_out


class TestBindingBatch:
    def test_round_trip_rows(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        batch = BindingBatch.from_rows(rows)
        assert batch.size == 2
        assert batch.rows() == rows

    def test_select_projects_columns(self):
        batch = BindingBatch.from_rows(
            [{"a": i} for i in range(6)]
        ).select([1, 4])
        assert batch.rows() == [{"a": 1}, {"a": 4}]


class TestHashedSetOps:
    def test_large_union_identity_semantics(self):
        om = MemoryObjectManager()
        objs = [om.instantiate("Object") for _ in range(500)]
        merged = union(objs, objs[250:] + objs[:10])
        assert merged == objs

    def test_intersection_and_difference_scale(self):
        left = list(range(1000))
        assert intersection(left, list(range(500, 1500))) == list(
            range(500, 1000)
        )
        assert difference(left, list(range(500))) == list(range(500, 1000))

    def test_unhashable_members_still_dedupe(self):
        assert union([[1], [2]], [[1], [3]]) == [[1], [2], [3]]
        assert deduplicate([[1], [1], [2]]) == [[1], [2]]
        assert intersection([[1], [2]], [[2], [3]]) == [[2]]
        assert difference([[1], [2]], [[2]]) == [[1]]

    def test_mixed_hashable_and_not(self):
        assert union([1, [2]], [[2], 1, 3]) == [1, [2], 3]
