"""Translation and optimization: equivalence with the calculus evaluator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MemoryObjectManager, Ref
from repro.directories import DirectoryManager
from repro.errors import TranslationError
from repro.stdm import (
    BindScan,
    Const,
    Filter,
    IndexEq,
    IndexRange,
    QueryContext,
    SetQuery,
    Var,
    conjuncts,
    deduplicate,
    difference,
    intersection,
    optimize,
    translate,
    union,
    variables,
)
from repro.stdm.algebra import collect_operators
from repro.stdm.translate import filters_in


def run_both(query, om, time=None, dm=None):
    """Evaluate via calculus and via translated algebra; both result lists."""
    reference = query.evaluate(QueryContext(om, time))
    plan = translate(query)
    algebra = plan.run(QueryContext(om, time, dm))
    return reference, algebra


class TestTranslation:
    def test_paper_query_equivalent(self, acme):
        e, d, m = variables("e", "d", "m")
        query = SetQuery(
            result={"Emp": e.path("Name!Last"), "Mgr": m},
            binders=[
                (e, Const(acme.employees)),
                (d, Const(acme.departments)),
                (m, d.path("Managers")),
            ],
            condition=(
                d.path("Name").in_(e.path("Depts"))
                & (e.path("Salary") > Const(0.10) * d.path("Budget"))
            ),
        )
        reference, algebra = run_both(query, acme.om)
        assert reference == algebra

    def test_selection_pushdown(self, acme):
        """A conjunct on e alone must sit below the d scan."""
        e, d = variables("e", "d")
        query = SetQuery(
            result=e,
            binders=[(e, Const(acme.employees)), (d, Const(acme.departments))],
            condition=(e.path("Salary") > 24500) & (d.path("Budget") > 0),
        )
        plan = translate(query)
        operators = collect_operators(plan)
        # walk the spine: Construct, Filter(d), BindScan(d), Filter(e), BindScan(e), Unit
        kinds = [type(op).__name__ for op in operators]
        assert kinds == [
            "ConstructResult", "Filter", "BindScan", "Filter", "BindScan", "Unit",
        ]
        # the lower filter touches only e
        lower_filter = operators[3]
        assert lower_filter.predicate.free_vars() == {"e"}

    def test_pushdown_reduces_rows(self, acme):
        e, d = variables("e", "d")
        query = SetQuery(
            result=e,
            binders=[(e, Const(acme.employees)), (d, Const(acme.departments))],
            condition=(e.path("Salary") > 100000),
        )
        plan = translate(query)
        plan.run(QueryContext(acme.om))
        scans = [op for op in collect_operators(plan) if isinstance(op, BindScan)]
        d_scan = next(op for op in scans if op.var == "d")
        assert d_scan.rows_out == 0  # filter cut everything before d

    def test_filters_all_attached(self, acme):
        e, = variables("e")
        query = SetQuery(
            result=e,
            binders=[(e, Const(acme.employees))],
            condition=(e.path("Salary") > 1) & (e.path("Salary") < 10**9),
        )
        plan = translate(query)
        assert len(list(filters_in(plan))) == 2

    def test_conjuncts_flattening(self):
        a, b, c = (Const(True), Const(False), Const(True))
        expr = (a & b) & c
        assert len(conjuncts(expr)) == 3
        assert conjuncts(None) == []

    def test_empty_binders(self):
        query = SetQuery(result=Const(42), binders=[])
        assert translate(query).run(QueryContext(MemoryObjectManager())) == [42]

    def test_bad_scoping_raises(self, acme):
        # bypass SetQuery validation to hit the translator's own check
        from repro.stdm.calculus import Binder

        query = SetQuery(result=Const(1), binders=[])
        query.binders = [Binder("e", Var("ghost").path("xs"))]
        with pytest.raises(TranslationError):
            translate(query)


class TestOptimizer:
    def make_indexed(self, acme):
        dm = DirectoryManager(acme.om)
        dm.create_directory(acme.employees, "Salary")
        return dm

    def query_salary_above(self, acme, threshold):
        e, = variables("e")
        return SetQuery(
            result=e.path("Name!Last"),
            binders=[(e, Const(acme.employees))],
            condition=(e.path("Salary") > threshold),
        )

    def test_index_chosen_for_range(self, acme):
        dm = self.make_indexed(acme)
        plan, choices = optimize(self.query_salary_above(acme, 24500), dm)
        assert len(choices) == 1
        assert choices[0].kind == "range"
        assert any(isinstance(op, IndexRange) for op in collect_operators(plan))
        assert not any(isinstance(op, BindScan) for op in collect_operators(plan))

    def test_index_plan_equivalent(self, acme):
        dm = self.make_indexed(acme)
        query = self.query_salary_above(acme, 24500)
        reference = query.evaluate(QueryContext(acme.om))
        plan, _ = optimize(query, dm)
        assert sorted(plan.run(QueryContext(acme.om, None, dm))) == sorted(reference)

    def test_equality_uses_index_eq(self, acme):
        dm = self.make_indexed(acme)
        e, = variables("e")
        query = SetQuery(
            result=e.path("Name!Last"),
            binders=[(e, Const(acme.employees))],
            condition=e.path("Salary").eq(24000),
        )
        plan, choices = optimize(query, dm)
        assert choices[0].kind == "eq"
        assert any(isinstance(op, IndexEq) for op in collect_operators(plan))
        assert plan.run(QueryContext(acme.om)) == ["Peters"]

    def test_reversed_comparison_also_matches(self, acme):
        dm = self.make_indexed(acme)
        e, = variables("e")
        query = SetQuery(
            result=e.path("Name!Last"),
            binders=[(e, Const(acme.employees))],
            condition=(Const(24500) < e.path("Salary")),
        )
        plan, choices = optimize(query, dm)
        assert len(choices) == 1
        assert sorted(plan.run(QueryContext(acme.om))) == ["Burns", "Earner"]

    def test_no_directory_falls_back_to_scan(self, acme):
        dm = DirectoryManager(acme.om)  # no directories registered
        plan, choices = optimize(self.query_salary_above(acme, 0), dm)
        assert choices == []
        assert any(isinstance(op, BindScan) for op in collect_operators(plan))

    def test_wrong_path_falls_back(self, acme):
        dm = DirectoryManager(acme.om)
        dm.create_directory(acme.employees, "Name!Last")
        plan, choices = optimize(self.query_salary_above(acme, 0), dm)
        assert choices == []

    def test_dependent_binder_never_indexed(self, acme):
        dm = self.make_indexed(acme)
        d, m = variables("d", "m")
        query = SetQuery(
            result=m,
            binders=[(d, Const(acme.departments)), (m, d.path("Managers"))],
            condition=m.eq("Carter"),
        )
        plan, choices = optimize(query, dm)
        assert choices == []
        assert sorted(plan.run(QueryContext(acme.om))) == ["Carter"]

    def test_remaining_conjuncts_still_filter(self, acme):
        dm = self.make_indexed(acme)
        e, = variables("e")
        query = SetQuery(
            result=e.path("Name!Last"),
            binders=[(e, Const(acme.employees))],
            condition=(e.path("Salary") > 100) & (e.path("Name!First").eq("Big")),
        )
        plan, choices = optimize(query, dm)
        assert len(choices) == 1
        assert any(isinstance(op, Filter) for op in collect_operators(plan))
        assert plan.run(QueryContext(acme.om)) == ["Earner"]

    def test_index_scans_fewer_rows(self, acme):
        dm = self.make_indexed(acme)
        query = self.query_salary_above(acme, 29000)
        scan_plan = translate(query)
        scan_plan.run(QueryContext(acme.om))
        opt_plan, _ = optimize(query, dm)
        opt_plan.run(QueryContext(acme.om))
        scan_rows = sum(op.rows_out for op in collect_operators(scan_plan))
        opt_rows = sum(op.rows_out for op in collect_operators(opt_plan))
        assert opt_rows < scan_rows

    def test_optimized_plan_respects_time(self, acme):
        om = acme.om
        dm = self.make_indexed(acme)
        t0 = om.now
        om.tick()
        om.bind(acme.peters, "Salary", 99000)
        # keep the directory in sync the way commits would
        directory = dm.find_directory(acme.employees.oid, "Salary")
        directory.rekey_member(om, acme.peters.oid, om.now)
        query = self.query_salary_above(acme, 50000)
        plan, choices = optimize(query, dm)
        assert len(choices) == 1
        assert plan.run(QueryContext(om)) == ["Peters"]
        past_plan, _ = optimize(query, dm)
        assert past_plan.run(QueryContext(om, time=t0)) == []


class TestSetOperations:
    def test_union_dedupes_by_identity(self):
        om = MemoryObjectManager()
        a = om.instantiate("Object")
        b = om.instantiate("Object")
        assert union([a, b], [a]) == [a, b]
        assert union([a], [b]) == [a, b]

    def test_intersection_and_difference(self):
        om = MemoryObjectManager()
        a, b, c = (om.instantiate("Object") for _ in range(3))
        assert intersection([a, b], [Ref(b.oid), c]) == [b]
        assert difference([a, b], [Ref(b.oid)]) == [a]

    def test_mixed_immediates(self):
        assert union([1, 2], [2, 3]) == [1, 2, 3]
        assert deduplicate([1, 1, "x", "x"]) == [1, "x"]


# -- property test: calculus == algebra on random databases ------------------

@st.composite
def random_database(draw):
    om = MemoryObjectManager()
    n_emps = draw(st.integers(1, 8))
    n_depts = draw(st.integers(1, 4))
    dept_names = [f"D{i}" for i in range(n_depts)]
    departments = om.instantiate("Object")
    for name in dept_names:
        dept = om.instantiate(
            "Object", Name=name, Budget=draw(st.integers(0, 1000))
        )
        om.bind(departments, om.new_alias(), dept)
    employees = om.instantiate("Object")
    for i in range(n_emps):
        depts = om.instantiate("Object")
        for name in draw(st.lists(st.sampled_from(dept_names), max_size=3,
                                  unique=True)):
            om.bind(depts, om.new_alias(), name)
        emp = om.instantiate(
            "Object", Salary=draw(st.integers(0, 1000)), Depts=depts
        )
        if draw(st.booleans()):  # optional element sometimes missing
            om.bind(emp, "Bonus", draw(st.integers(0, 100)))
        om.bind(employees, om.new_alias(), emp)
    return om, employees, departments


@given(random_database(), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_translation_equivalence_property(db, threshold):
    om, employees, departments = db
    e, d = variables("e", "d")
    query = SetQuery(
        result={"s": e.path("Salary"), "b": d.path("Budget")},
        binders=[(e, Const(employees)), (d, Const(departments))],
        condition=(
            d.path("Name").in_(e.path("Depts"))
            & (e.path("Salary") > threshold)
        ) | (e.path("Bonus") > 50),
    )
    reference = query.evaluate(QueryContext(om))
    algebra = translate(query).run(QueryContext(om))
    assert reference == algebra


@given(random_database(), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_optimizer_equivalence_property(db, threshold):
    om, employees, departments = db
    dm = DirectoryManager(om)
    dm.create_directory(employees, "Salary")
    e, = variables("e")
    query = SetQuery(
        result=e.path("Salary"),
        binders=[(e, Const(employees))],
        condition=(e.path("Salary") > threshold),
    )
    reference = sorted(query.evaluate(QueryContext(om)))
    plan, choices = optimize(query, dm)
    assert len(choices) == 1
    assert sorted(plan.run(QueryContext(om))) == reference
