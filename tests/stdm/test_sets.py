"""Tests for pure STDM labeled sets and the GSDM bridge."""

import pytest

from repro.core import MemoryObjectManager
from repro.errors import CalculusError
from repro.stdm import LabeledSet, format_set, materialize, snapshot


class TestConstruction:
    def test_of_with_labels(self):
        dept = LabeledSet.of(Name="Sales", Budget=142000)
        assert dept["Name"] == "Sales"
        assert dept["Budget"] == 142000

    def test_unlabeled_values_get_aliases(self):
        managers = LabeledSet.of("Nathen", "Roberts")
        assert len(managers) == 2
        assert sorted(managers.values()) == ["Nathen", "Roberts"]
        assert all(isinstance(n, str) for n in managers.names())

    def test_aliases_are_unique(self):
        s = LabeledSet()
        a1 = s.add("x")
        a2 = s.add("y")
        assert a1 != a2

    def test_from_nested(self):
        data = {"Name": {"First": "Ellen"}, "Phones": [3949, 3862]}
        s = LabeledSet.from_nested(data)
        assert s.navigate("Name!First") == "Ellen"
        assert sorted(s["Phones"].values()) == [3862, 3949]

    def test_no_duplicate_element_names(self):
        s = LabeledSet()
        s["x"] = 1
        s["x"] = 2  # replaces, like a mapping
        assert s["x"] == 2
        assert len(s) == 1

    def test_integer_element_names_model_arrays(self):
        """Section 5.2: arrays are sets with numbers as element names."""
        rows = LabeledSet({1: LabeledSet.of("Anders", "Roberts"),
                           2: LabeledSet.of("Roberts", "Ching")})
        assert "Anders" in rows[1].values()

    def test_bad_element_name(self):
        with pytest.raises(CalculusError):
            LabeledSet()[1.5] = "x"


class TestNavigation:
    def make_acme(self):
        return LabeledSet.from_nested({
            "Departments": {
                "A12": {"Name": "Sales",
                        "Managers": ["Nathen", "Roberts"],
                        "Budget": 142000},
                "A16": {"Name": "Research",
                        "Managers": ["Carter"],
                        "Budget": 256500},
            },
            "Employees": {
                "E62": {"Name": {"First": "Ellen", "Last": "Burns"},
                        "Salary": 24650, "Depts": ["Marketing"]},
            },
        })

    def test_paper_path_examples(self):
        acme = self.make_acme()
        managers = acme.navigate("Departments!A16!Managers")
        assert managers.values() == ["Carter"]
        name = acme.navigate("Employees!E62!Name")
        assert name["First"] == "Ellen"

    def test_missing_component(self):
        with pytest.raises(CalculusError):
            self.make_acme().navigate("Departments!A99")

    def test_through_simple_value(self):
        with pytest.raises(CalculusError):
            self.make_acme().navigate("Departments!A12!Budget!x")

    def test_integer_path_component(self):
        s = LabeledSet({1: LabeledSet.of("a")})
        assert s.navigate("1").values() == ["a"]


class TestEquality:
    def test_structural_equivalence(self):
        a = LabeledSet.of(Name="Sales")
        b = LabeledSet.of(Name="Sales")
        assert a == b
        assert a is not b

    def test_label_mismatch(self):
        assert LabeledSet.of(Name="Sales") != LabeledSet.of(Title="Sales")

    def test_nested(self):
        a = LabeledSet.of(Name=LabeledSet.of(First="E"))
        b = LabeledSet.of(Name=LabeledSet.of(First="E"))
        c = LabeledSet.of(Name=LabeledSet.of(First="X"))
        assert a == b
        assert a != c

    def test_has_member(self):
        s = LabeledSet.of("Nathen", "Roberts")
        assert s.has_member("Nathen")
        assert not s.has_member("Carter")

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(LabeledSet())


class TestFormatting:
    def test_paper_notation(self):
        dept = LabeledSet.of(Name="Sales", Budget=142000)
        assert format_set(dept) == "{Name: 'Sales', Budget: 142000}"

    def test_wide_sets_wrap(self):
        s = LabeledSet({f"element_{i}": "a long value here" for i in range(6)})
        assert "\n" in format_set(s)


class TestBridge:
    def test_materialize_gives_identity(self):
        om = MemoryObjectManager()
        data = LabeledSet.of(Name="Sales", Managers=LabeledSet.of("Nathen"))
        obj = materialize(om, data)
        assert om.value_at(obj, "Name") == "Sales"
        managers = om.fetch(obj, "Managers")
        assert managers.oid != obj.oid

    def test_snapshot_round_trip(self):
        om = MemoryObjectManager()
        data = LabeledSet.from_nested(
            {"Name": {"First": "Ellen"}, "Salary": 24650}
        )
        obj = materialize(om, data)
        assert snapshot(om, obj) == data

    def test_snapshot_respects_time(self):
        om = MemoryObjectManager()
        obj = materialize(om, LabeledSet.of(Salary=100))
        t0 = om.now
        om.tick()
        om.bind(obj, "Salary", 200)
        assert snapshot(om, obj)["Salary"] == 200
        assert snapshot(om, obj, time=t0)["Salary"] == 100

    def test_snapshot_rejects_cycles(self):
        om = MemoryObjectManager()
        a = om.instantiate("Object")
        b = om.instantiate("Object", peer=a)
        om.bind(a, "peer", b)
        with pytest.raises(CalculusError):
            snapshot(om, a)

    def test_materialize_plain_python(self):
        om = MemoryObjectManager()
        obj = materialize(om, {"xs": [1, 2]})
        xs = om.fetch(obj, "xs")
        assert sorted(v for _, v in xs.items_at()) == [1, 2]
