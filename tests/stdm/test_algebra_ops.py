"""Unit tests for algebra plan mechanics and materialized set operations."""

import pytest

from repro.core import MemoryObjectManager
from repro.stdm import (
    BindScan,
    Const,
    ConstructResult,
    Filter,
    QueryContext,
    Unit,
    Var,
    deduplicate,
    difference,
    intersection,
    union,
    variables,
)
from repro.stdm.algebra import collect_operators, plan_depth


@pytest.fixture
def om():
    return MemoryObjectManager()


def make_set(om, *values):
    obj = om.instantiate("Object")
    for value in values:
        om.bind(obj, om.new_alias(), value)
    return obj


class TestPlanMechanics:
    def test_unit_yields_one_empty_binding(self, om):
        assert Unit().run(QueryContext(om)) == [{}]

    def test_bindscan_streams_members(self, om):
        collection = make_set(om, 1, 2, 3)
        plan = BindScan(Unit(), "x", Const(collection))
        rows = plan.run(QueryContext(om))
        assert [r["x"] for r in rows] == [1, 2, 3]

    def test_filter_counts_rows(self, om):
        collection = make_set(om, 1, 2, 3, 4)
        x = Var("x")
        plan = Filter(BindScan(Unit(), "x", Const(collection)), x > 2)
        plan.run(QueryContext(om))
        assert plan.rows_out == 2
        assert plan.child.rows_out == 4

    def test_reset_counters(self, om):
        collection = make_set(om, 1, 2)
        plan = BindScan(Unit(), "x", Const(collection))
        plan.run(QueryContext(om))
        plan.reset_counters()
        assert all(op.rows_out == 0 for op in collect_operators(plan))

    def test_explain_includes_counters(self, om):
        collection = make_set(om, 1)
        plan = ConstructResult(
            BindScan(Unit(), "x", Const(collection)), Var("x")
        )
        plan.run(QueryContext(om))
        text = plan.explain()
        assert "rows_out=1" in text
        assert "BindScan" in text
        assert "Unit" in text

    def test_plan_depth(self, om):
        collection = make_set(om, 1)
        plan = ConstructResult(
            Filter(BindScan(Unit(), "x", Const(collection)), Const(True)),
            Var("x"),
        )
        assert plan_depth(plan) == 4

    def test_plans_are_restartable(self, om):
        collection = make_set(om, 1, 2)
        plan = ConstructResult(
            BindScan(Unit(), "x", Const(collection)), Var("x")
        )
        ctx = QueryContext(om)
        assert plan.run(ctx) == plan.run(ctx) == [1, 2]

    def test_bindings_do_not_leak_between_rows(self, om):
        outer = make_set(om, 1, 2)
        inner = make_set(om, 10)
        x, y = variables("x", "y")
        plan = ConstructResult(
            BindScan(BindScan(Unit(), "x", Const(outer)), "y", Const(inner)),
            x + y,
        )
        assert plan.run(QueryContext(om)) == [11, 12]


class TestSetOperations:
    def test_union_preserves_left_order(self):
        assert union([3, 1], [2, 1]) == [3, 1, 2]

    def test_union_of_empties(self):
        assert union([], []) == []

    def test_intersection_keeps_left_duplicates(self):
        assert intersection([1, 1, 2], [1]) == [1, 1]

    def test_difference(self):
        assert difference([1, 2, 3], [2]) == [1, 3]
        assert difference([], [1]) == []

    def test_dedup_by_object_identity(self, om):
        a = om.instantiate("Object")
        b = om.instantiate("Object")
        from repro.core import Ref

        assert deduplicate([a, Ref(a.oid), b]) == [a, b]

    def test_classic_identities(self):
        a, b = [1, 2, 3], [2, 3, 4]
        assert sorted(union(intersection(a, b), difference(a, b))) == a
