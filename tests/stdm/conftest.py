"""Shared fixtures: the section 5.1 Acme database fragment."""

import pytest

from repro.core import MemoryObjectManager


class AcmeFixture:
    """The paper's Departments/Employees fragment as GSDM objects."""

    def __init__(self):
        om = MemoryObjectManager()
        self.om = om
        self.sales = self._set(om, Name="Sales", Budget=142000,
                               Managers=self._coll(om, "Nathen", "Roberts"))
        self.research = self._set(om, Name="Research", Budget=256500,
                                  Managers=self._coll(om, "Carter"))
        self.departments = self._coll(om, self.sales, self.research)
        self.burns = self._set(
            om, Name=self._set(om, First="Ellen", Last="Burns"),
            Salary=24650, Depts=self._coll(om, "Marketing"),
        )
        self.peters = self._set(
            om, Name=self._set(om, First="Robert", Last="Peters"),
            Salary=24000, Depts=self._coll(om, "Sales", "Planning"),
        )
        self.earner = self._set(
            om, Name=self._set(om, First="Big", Last="Earner"),
            Salary=30000, Depts=self._coll(om, "Research"),
        )
        self.employees = self._coll(om, self.burns, self.peters, self.earner)

    @staticmethod
    def _set(om, **elements):
        obj = om.instantiate("Object")
        for name, value in elements.items():
            om.bind(obj, name, value)
        return obj

    @staticmethod
    def _coll(om, *members):
        obj = om.instantiate("Object")
        for member in members:
            om.bind(obj, om.new_alias(), member)
        return obj


@pytest.fixture
def acme():
    return AcmeFixture()
