"""Tests for the relational encodings of section 5.2 (experiments E3/E4)."""

import pytest

from repro.errors import CalculusError
from repro.stdm import (
    LabeledSet,
    flatten_set_valued,
    relation_to_set,
    set_to_relation,
    unflatten_to_sets,
)


class TestRelationAsSet:
    def test_paper_example(self):
        """Relation {(1,3,4), (1,5,4)} over A,B,C — the paper's table."""
        encoded = relation_to_set(["A", "B", "C"], [(1, 3, 4), (1, 5, 4)])
        assert encoded["T1"] == LabeledSet({"A": 1, "B": 3, "C": 4})
        assert encoded["T2"] == LabeledSet({"A": 1, "B": 5, "C": 4})

    def test_roundtrip(self):
        attrs = ["A", "B", "C"]
        rows = [(1, 3, 4), (1, 5, 4), (2, 2, 2)]
        back_attrs, back_rows = set_to_relation(relation_to_set(attrs, rows))
        assert back_attrs == attrs
        assert back_rows == rows

    def test_empty_relation(self):
        attrs, rows = set_to_relation(relation_to_set(["A"], []))
        assert rows == []

    def test_arity_mismatch_rejected(self):
        with pytest.raises(CalculusError):
            relation_to_set(["A", "B"], [(1,)])

    def test_heterogeneous_tuples_rejected(self):
        bad = LabeledSet({
            "T1": LabeledSet({"A": 1}),
            "T2": LabeledSet({"B": 2}),
        })
        with pytest.raises(CalculusError):
            set_to_relation(bad)

    def test_extra_attribute_rejected(self):
        bad = LabeledSet({
            "T1": LabeledSet({"A": 1}),
            "T2": LabeledSet({"A": 2, "B": 3}),
        })
        with pytest.raises(CalculusError):
            set_to_relation(bad)

    def test_non_tuple_member_rejected(self):
        with pytest.raises(CalculusError):
            set_to_relation(LabeledSet({"T1": 42}))


class TestChildrenFlattening:
    def robert(self):
        """The paper's Robert Peters example, verbatim."""
        return LabeledSet.from_nested({
            "Name": {"First": "Robert", "Last": "Peters"},
            "Children": ["Olivia", "Dale", "Paul"],
        })

    def test_flatten_produces_three_tuples(self):
        attrs, rows = flatten_set_valued(
            [self.robert()], ["Name!First", "Name!Last"], "Children", "Child"
        )
        assert attrs == ["First", "Last", "Child"]
        assert sorted(rows) == [
            ("Robert", "Peters", "Dale"),
            ("Robert", "Peters", "Olivia"),
            ("Robert", "Peters", "Paul"),
        ]

    def test_redundancy_is_unavoidable(self):
        """Scalar values repeat once per child — the paper's point."""
        _attrs, rows = flatten_set_valued(
            [self.robert()], ["Name!First"], "Children", "Child"
        )
        firsts = [row[0] for row in rows]
        assert firsts == ["Robert"] * 3

    def test_unflatten_recovers_the_set_as_an_entity(self):
        attrs, rows = flatten_set_valued(
            [self.robert()], ["Name!First", "Name!Last"], "Children", "Child"
        )
        entities = unflatten_to_sets(attrs, rows, ["First", "Last"], "Child",
                                     "Children")
        assert len(entities) == 1
        children = entities[0]["Children"]
        assert sorted(children.values()) == ["Dale", "Olivia", "Paul"]

    def test_multiple_entities_keep_separate_sets(self):
        family2 = LabeledSet.from_nested({
            "Name": {"First": "Ellen", "Last": "Burns"},
            "Children": ["Ada"],
        })
        attrs, rows = flatten_set_valued(
            [self.robert(), family2], ["Name!First", "Name!Last"],
            "Children", "Child",
        )
        assert len(rows) == 4
        entities = unflatten_to_sets(attrs, rows, ["First", "Last"], "Child",
                                     "Children")
        sizes = sorted(len(e["Children"]) for e in entities)
        assert sizes == [1, 3]

    def test_flatten_non_set_attribute_rejected(self):
        entity = LabeledSet.of(Name="x", Children=3)
        with pytest.raises(CalculusError):
            flatten_set_valued([entity], ["Name"], "Children", "Child")

    def test_unflatten_unknown_column_rejected(self):
        with pytest.raises(CalculusError):
            unflatten_to_sets(["A"], [], ["Nope"], "A", "Xs")
