"""Join fusion: hash joins, index nested-loop joins, and their edges.

The optimizer must turn equality join conjuncts into sub-quadratic
operators (``HashJoin``, or ``IndexEq`` probes when a directory covers
the member side) while preserving exact calculus semantics — including
NOVALUE failing *every* comparison and unhashable join keys.
"""

import pytest

from repro.core import MemoryObjectManager
from repro.directories import DirectoryManager
from repro.stdm import (
    Apply,
    BindScan,
    Const,
    HashJoin,
    IndexEq,
    QueryContext,
    SetQuery,
    optimize,
    translate,
    variables,
)
from repro.stdm.algebra import collect_operators
from repro.stdm.translate import match_join_conjunct


@pytest.fixture
def company():
    """Employees referencing departments by name; some rows incomplete."""
    om = MemoryObjectManager()
    departments = om.instantiate("Object")
    dept_names = ["Sales", "Research", "Planning", "Marketing"]
    for i, name in enumerate(dept_names):
        staff = om.instantiate("Object")
        for member in (name + "-lead", name + "-deputy"):
            om.bind(staff, om.new_alias(), member)
        dept = om.instantiate(
            "Object", Name=name, Budget=(i + 1) * 1000, Staff=staff
        )
        om.bind(departments, om.new_alias(), dept)
    nameless = om.instantiate("Object", Budget=9)  # no Name element
    om.bind(departments, om.new_alias(), nameless)
    employees = om.instantiate("Object")
    for i in range(24):
        emp = om.instantiate("Object", Salary=i * 100)
        if i % 4 != 3:  # every 4th employee has no DeptName
            om.bind(emp, "DeptName", dept_names[i % len(dept_names)])
        om.bind(employees, om.new_alias(), emp)
    return om, employees, departments


def join_query(employees, departments, condition_builder):
    d, e = variables("d", "e")
    return SetQuery(
        result={"pay": e.path("Salary"), "budget": d.path("Budget")},
        binders=[(d, Const(departments)), (e, Const(employees))],
        condition=condition_builder(d, e),
    )


def check_all_paths(query, om, dm=None):
    """Reference vs fused plan in both executor modes; returns the plan."""
    reference = sorted(
        map(repr, query.evaluate(QueryContext(om)))
    )
    plan, choices = optimize(query, dm)
    fused_row = sorted(
        map(repr, plan.run(QueryContext(om, None, dm), mode="row"))
    )
    plan2, _ = optimize(query, dm)
    fused_vec = sorted(
        map(repr, plan2.run(QueryContext(om, None, dm), mode="vectorized"))
    )
    assert fused_row == reference
    assert fused_vec == reference
    return plan, choices


class TestHashJoin:
    def test_equality_conjunct_fuses(self, company):
        om, employees, departments = company
        query = join_query(
            employees, departments,
            lambda d, e: e.path("DeptName").eq(d.path("Name")),
        )
        plan, choices = check_all_paths(query, om)
        assert any(c.kind == "hash" for c in choices)
        joins = [
            op for op in collect_operators(plan) if isinstance(op, HashJoin)
        ]
        assert len(joins) == 1
        assert joins[0].var == "e"

    def test_join_rows_subquadratic(self, company):
        om, employees, departments = company
        query = join_query(
            employees, departments,
            lambda d, e: e.path("DeptName").eq(d.path("Name")),
        )
        plan, _ = optimize(query, None)
        results = plan.run(QueryContext(om))
        join = next(
            op for op in collect_operators(plan) if isinstance(op, HashJoin)
        )
        # the join emits only matches — never the 24×5 cross product
        assert join.rows_out == len(results) == 18
        assert join.rows_out < 24 * 5
        assert f"[rows_out={join.rows_out}]" in plan.explain()

    def test_remaining_conjuncts_filter_above_join(self, company):
        om, employees, departments = company
        query = join_query(
            employees, departments,
            lambda d, e: (
                e.path("DeptName").eq(d.path("Name"))
                & (e.path("Salary") > 1000)
            ),
        )
        plan, choices = check_all_paths(query, om)
        assert any(c.kind == "hash" for c in choices)

    def test_novalue_member_keys_never_match(self, company):
        om, employees, departments = company
        # employees without DeptName and the nameless department both
        # carry NOVALUE keys; neither may pair with anything
        query = join_query(
            employees, departments,
            lambda d, e: e.path("DeptName").eq(d.path("Name")),
        )
        plan, _ = optimize(query, None)
        rows = plan.run(QueryContext(om))
        assert all(row["budget"] != 9 for row in rows)
        assert len(rows) == 18  # 6 of 24 employees lack DeptName

    def test_novalue_inequality_not_fused_still_fails(self, company):
        om, employees, departments = company
        # `!=` is not a join conjunct, and NOVALUE fails it too: rows
        # with a missing DeptName must not leak through the negation
        query = join_query(
            employees, departments,
            lambda d, e: e.path("DeptName").ne(d.path("Name")),
        )
        plan, choices = check_all_paths(query, om)
        assert not any(c.kind == "hash" for c in choices)
        rows = plan.run(QueryContext(om))
        assert all(row["budget"] != 9 for row in rows)

    def test_self_join(self, company):
        om, employees, _ = company
        a, b = variables("a", "b")
        query = SetQuery(
            result={"x": a.path("Salary"), "y": b.path("Salary")},
            binders=[(a, Const(employees)), (b, Const(employees))],
            condition=a.path("DeptName").eq(b.path("DeptName")),
        )
        plan, choices = check_all_paths(query, om)
        assert any(c.kind == "hash" for c in choices)

    def test_unhashable_join_keys_fall_back_to_scan_matching(self, company):
        om, employees, departments = company
        wrap = lambda value: [value]  # noqa: E731 — list keys are unhashable
        query = join_query(
            employees, departments,
            lambda d, e: Apply(wrap, e.path("DeptName")).eq(
                Apply(wrap, d.path("Name"))
            ),
        )
        plan, choices = check_all_paths(query, om)
        assert any(c.kind == "hash" for c in choices)
        join = next(
            op for op in collect_operators(plan) if isinstance(op, HashJoin)
        )
        assert join.rows_out == 18

    def test_dependent_source_never_fused(self, company):
        om, employees, departments = company
        d, m = variables("d", "m")
        query = SetQuery(
            result=m,
            binders=[(d, Const(departments)), (m, d.path("Staff"))],
            # join-shaped conjunct, but m's source depends on d: the
            # optimizer must leave it as a dependent scan + filter
            condition=m.eq(d.path("Name")),
        )
        plan, choices = check_all_paths(query, om)
        assert not any(
            isinstance(op, HashJoin) for op in collect_operators(plan)
        )

    def test_describe_names_both_keys(self, company):
        om, employees, departments = company
        query = join_query(
            employees, departments,
            lambda d, e: e.path("DeptName").eq(d.path("Name")),
        )
        plan, _ = optimize(query, None)
        join = next(
            op for op in collect_operators(plan) if isinstance(op, HashJoin)
        )
        assert "HashJoin" in join.describe()
        assert "e" in join.describe()


class TestIndexNestedLoop:
    def test_directory_beats_hash_join(self, company):
        om, employees, departments = company
        dm = DirectoryManager(om)
        dm.create_directory(employees, "DeptName")
        query = join_query(
            employees, departments,
            lambda d, e: e.path("DeptName").eq(d.path("Name")),
        )
        plan, choices = check_all_paths(query, om, dm)
        operators = collect_operators(plan)
        assert any(isinstance(op, IndexEq) for op in operators)
        assert not any(isinstance(op, HashJoin) for op in operators)
        assert not any(
            isinstance(op, BindScan) and op.var == "e" for op in operators
        )

    def test_index_probe_rows_subquadratic(self, company):
        om, employees, departments = company
        dm = DirectoryManager(om)
        dm.create_directory(employees, "DeptName")
        query = join_query(
            employees, departments,
            lambda d, e: e.path("DeptName").eq(d.path("Name")),
        )
        plan, _ = optimize(query, dm)
        results = plan.run(QueryContext(om, None, dm))
        probe = next(
            op for op in collect_operators(plan) if isinstance(op, IndexEq)
        )
        assert probe.rows_out == len(results) == 18
        assert probe.rows_out < 24 * 5


class TestMatchJoinConjunct:
    def setup_method(self):
        self.d, self.e = variables("d", "e")

    def test_accepts_equality_across_bindings(self):
        conjunct = self.e.path("DeptName").eq(self.d.path("Name"))
        match = match_join_conjunct(conjunct, "e", {"d"})
        assert match is not None
        member_key, probe_key = match
        assert member_key.free_vars() == {"e"}
        assert probe_key.free_vars() == {"d"}

    def test_accepts_swapped_sides(self):
        conjunct = self.d.path("Name").eq(self.e.path("DeptName"))
        assert match_join_conjunct(conjunct, "e", {"d"}) is not None

    def test_rejects_inequality(self):
        conjunct = self.e.path("DeptName").ne(self.d.path("Name"))
        assert match_join_conjunct(conjunct, "e", {"d"}) is None

    def test_rejects_constant_probe_side(self):
        conjunct = self.e.path("DeptName").eq("Sales")
        assert match_join_conjunct(conjunct, "e", {"d"}) is None

    def test_rejects_unbound_probe_vars(self):
        conjunct = self.e.path("DeptName").eq(self.d.path("Name"))
        assert match_join_conjunct(conjunct, "e", set()) is None

    def test_rejects_single_variable_both_sides(self):
        conjunct = self.e.path("A").eq(self.e.path("B"))
        assert match_join_conjunct(conjunct, "e", {"d"}) is None
