"""Tier-1 differential smoke: hundreds of generated queries, four ways.

The committed seed range must stay green: every generated query returns
identical rows from the naive reference evaluator, an uncached algebra
translation, a warm plan-memo, and a fresh index-aware optimization.
"""

from repro.check import generate_case, run_differential_range
from repro.obs import MetricsRegistry

#: the committed smoke seed — changing it invalidates the claim below
SMOKE_SEED = 2026
SMOKE_CASES = 200


def test_smoke_seed_range_has_zero_mismatches():
    report = run_differential_range(SMOKE_SEED, SMOKE_CASES)
    assert report.ok, report.mismatches[0].describe()
    # the acceptance bar: hundreds of queries, each evaluated at least
    # twice (eval epochs), each time across all four paths
    assert report.queries >= 200
    assert report.evaluations >= 2 * report.queries
    assert report.cases == SMOKE_CASES


def test_memo_path_actually_hits():
    report = run_differential_range(SMOKE_SEED, 50)
    assert report.ok
    # queries re-evaluated at a later epoch with no directory churn in
    # between must be served from the memo, not re-planned
    assert report.memo_hits > 0
    assert report.memo_misses > 0


def test_generation_is_deterministic():
    assert generate_case(SMOKE_SEED, 7) == generate_case(SMOKE_SEED, 7)
    assert generate_case(SMOKE_SEED, 7) != generate_case(SMOKE_SEED, 8)
    assert generate_case(SMOKE_SEED, 7) != generate_case(SMOKE_SEED + 1, 7)


def test_run_is_deterministic():
    first = run_differential_range(SMOKE_SEED, 20)
    second = run_differential_range(SMOKE_SEED, 20)
    assert (first.cases, first.queries, first.evaluations) == (
        second.cases, second.queries, second.evaluations
    )
    assert first.memo_hits == second.memo_hits
    assert first.memo_misses == second.memo_misses


def test_oracle_counters_reach_the_registry():
    registry = MetricsRegistry()
    report = run_differential_range(SMOKE_SEED, 10, registry=registry)
    counters = registry.snapshot()["counters"]
    assert counters["check.diff.cases"] == report.cases == 10
    assert counters["check.diff.evaluations"] == report.evaluations
    assert counters["check.diff.queries"] == report.queries
    assert "check.diff.mismatches" not in counters  # clean run


def test_generated_universe_exercises_the_interesting_shapes():
    """The stream must contain quantifiers, pins, drops and records."""
    has = {"exists_or_forall": False, "pins": False, "drop": False,
           "record": False, "two_binders": False}

    def walk(node):
        if not isinstance(node, tuple) or not node:
            return
        if node[0] in ("exists", "forall"):
            has["exists_or_forall"] = True
        if node[0] == "path":
            if any(at is not None for _name, at in node[2]):
                has["pins"] = True
        for child in node[1:]:
            if isinstance(child, tuple):
                walk(child)

    for index in range(60):
        spec = generate_case(SMOKE_SEED, index)
        if any(e[0] == "drop" for e in spec.dir_events):
            has["drop"] = True
        for query in spec.queries:
            if len(query.binders) > 1:
                has["two_binders"] = True
            if query.result[0] == "record":
                has["record"] = True
            if query.condition is not None:
                walk(query.condition)
    missing = [k for k, v in has.items() if not v]
    assert not missing, f"generator never produced: {missing}"
