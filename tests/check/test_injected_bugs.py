"""The oracle must catch deliberately-injected bugs (and shrink them).

Two test-only bugs ride in the harness itself:

* ``PlanMemo(ignore_epochs=True)`` — the memo key omits the class and
  directory epochs, so dropped directories keep being probed by cached
  plans (the classic plan-cache staleness bug);
* ``skip_maintenance=True`` — commits skip directory maintenance, so
  indexes silently go stale against the base data.

Each must be detected within the committed smoke seed range and shrink
to a strictly smaller reproducer that still fails.
"""

from repro.check import generate_case, run_differential_range, shrink_case
from repro.check.differential import PlanMemo, run_differential_case
from repro.check.report import describe_case


SMOKE_SEED = 2026
HUNT_CASES = 100


def hunt(**kwargs):
    return run_differential_range(
        SMOKE_SEED, HUNT_CASES, stop_at_first=True, **kwargs
    )


def test_clean_configuration_is_green():
    assert hunt().ok


def test_stale_plan_memo_is_caught():
    report = hunt(ignore_epochs=True)
    assert not report.ok, "epoch-less memo keying must be detected"
    mismatch = report.mismatches[0]
    assert mismatch.bug == "stale-memo"
    assert "dropped directories" in mismatch.detail or mismatch.divergent_paths()


def test_skipped_maintenance_is_caught():
    report = hunt(skip_maintenance=True)
    assert not report.ok, "skipping directory maintenance must be detected"
    assert report.mismatches[0].bug == "skip-maintenance"
    # this bug diverges behaviorally: index-served rows disagree
    assert "memoized" in report.mismatches[0].divergent_paths() or \
        "optimized" in report.mismatches[0].divergent_paths()


def test_stale_memo_failure_shrinks_to_a_minimal_reproducer():
    report = hunt(ignore_epochs=True)
    failing = report.mismatches[0]
    spec = generate_case(SMOKE_SEED, failing.case_index)

    def still_fails(candidate):
        rerun = run_differential_case(
            candidate, memo=PlanMemo(ignore_epochs=True), stop_at_first=True
        )
        return not rerun.ok

    assert still_fails(spec)
    shrunk = shrink_case(spec, still_fails)
    assert still_fails(shrunk), "shrinking must preserve the failure"
    assert shrunk.size_measure() < spec.size_measure()
    # the shrunk case keeps only what the staleness needs: the directory
    # create/drop pair and a query evaluated on both sides of the drop
    assert len(shrunk.queries) == 1
    assert any(e[0] == "drop" for e in shrunk.dir_events)
    assert describe_case(shrunk)  # renders without error


def test_shrinking_is_deterministic():
    report = hunt(ignore_epochs=True)
    spec = generate_case(SMOKE_SEED, report.mismatches[0].case_index)

    def still_fails(candidate):
        rerun = run_differential_case(
            candidate, memo=PlanMemo(ignore_epochs=True), stop_at_first=True
        )
        return not rerun.ok

    assert shrink_case(spec, still_fails) == shrink_case(spec, still_fails)
