"""Tier-1 interleaving smoke: deterministic OCC schedule exploration.

Three-session sampled interleavings plus the exhaustive two-session
enumeration: committed histories must replay serially to the same final
state, aborted sessions must leave no partial state, and the whole
exploration must be a pure function of its seed (digest-equal reruns).
"""

import pytest

from repro.check import run_schedule_case, run_schedule_range
from repro.check.schedule import exhaustive_two_session_schedules
from repro.db import GemStone
from repro.obs import MetricsRegistry

SMOKE_SEED = 2026


def fresh_database():
    return GemStone.create(track_count=512, track_size=2048)


@pytest.fixture(scope="module")
def database():
    return fresh_database()


def test_three_session_samples_are_serializable(database):
    report = run_schedule_range(database, SMOKE_SEED, 8)
    assert report.ok, report.problems[0]
    assert report.samples == 8
    # the sampled schedules must actually exercise OCC: some sessions
    # commit first try, others conflict and retry
    assert report.commits >= 8
    assert report.aborts > 0


def test_exhaustive_two_session_enumeration(database):
    report = exhaustive_two_session_schedules(database, SMOKE_SEED)
    assert report.ok, report.problems[0]
    # C(8, 4) = 70 distinct interleavings of two 3-op sessions + commits
    assert report.samples == 70
    assert report.commits == 140  # every session commits after retries


def test_schedules_are_deterministic():
    # fresh database per run: oids, commit times, and therefore the
    # whole event log must reproduce exactly
    first = run_schedule_case(fresh_database(), SMOKE_SEED, 3)
    second = run_schedule_case(fresh_database(), SMOKE_SEED, 3)
    assert first.digest == second.digest
    assert (first.steps, first.commits, first.aborts) == (
        second.steps, second.commits, second.aborts
    )
    other = run_schedule_case(fresh_database(), SMOKE_SEED, 4)
    assert other.digest != first.digest


def test_schedule_counters_reach_the_registry(database):
    registry = MetricsRegistry()
    report = run_schedule_range(database, SMOKE_SEED + 1, 2, registry=registry)
    assert report.ok
    counters = registry.snapshot()["counters"]
    assert counters["check.schedule.samples"] == 2
    assert counters["check.schedule.commits"] == report.commits
    assert "check.schedule.violations" not in counters
