"""Every oracle failure prints a copy-pasteable reproducer that re-fails.

The contract: a failure report embeds ``python -m repro.check --seed N
--case K [--bug B]``; running exactly that command reproduces the
failure (exit 1), and running a passing case exits 0.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

from repro.check import run_differential_range

SMOKE_SEED = 2026
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def run_cli(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.check", *args],
        capture_output=True, text=True, env=env, timeout=120,
    )


def test_passing_case_exits_zero():
    result = run_cli(["--seed", str(SMOKE_SEED), "--case", "0"])
    assert result.returncode == 0, result.stdout + result.stderr
    assert "ok:" in result.stdout


def test_failure_report_embeds_its_own_reproducer():
    report = run_differential_range(
        SMOKE_SEED, 100, ignore_epochs=True, stop_at_first=True
    )
    assert not report.ok, "injected stale-memo bug must produce a failure"
    description = report.mismatches[0].describe()
    assert "reproduce with:" in description
    command = re.search(r"python -m repro\.check [^\n]+", description).group(0)
    assert f"--seed {SMOKE_SEED}" in command
    assert "--bug stale-memo" in command


def test_printed_reproducer_re_fails():
    report = run_differential_range(
        SMOKE_SEED, 100, ignore_epochs=True, stop_at_first=True
    )
    command = re.search(
        r"python -m repro\.check ([^\n]+)",
        report.mismatches[0].describe(),
    ).group(1)
    result = run_cli(command.split())
    assert result.returncode == 1, result.stdout + result.stderr
    assert "mismatch" in result.stdout


#: first case of the smoke seed that trips the injected stale-memo bug
#: (a directory drop followed by a re-query; re-pin when the generator
#: stream changes)
STALE_MEMO_CASE = 11


def test_cli_shrink_prints_a_minimal_case():
    result = run_cli([
        "--seed", str(SMOKE_SEED), "--case", str(STALE_MEMO_CASE),
        "--bug", "stale-memo", "--shrink",
    ])
    assert result.returncode == 1
    assert "shrunk reproducer:" in result.stdout
    assert f"case seed=2026 index={STALE_MEMO_CASE}" in result.stdout


def test_temporal_and_schedule_cli_modes():
    temporal = run_cli(
        ["--seed", str(SMOKE_SEED), "--case", "1", "--oracle", "temporal"]
    )
    assert temporal.returncode == 0, temporal.stdout + temporal.stderr
    schedule = run_cli(
        ["--seed", str(SMOKE_SEED), "--case", "1", "--oracle", "schedule"]
    )
    assert schedule.returncode == 0, schedule.stdout + schedule.stderr
    assert "serializable" in schedule.stdout
