"""The multiprocess differential oracle: three stacks, zero divergence."""

from __future__ import annotations

from repro.check.cluster import run_cluster_case
from repro.check.__main__ import main as check_main


def test_cluster_case_agrees_across_all_three_stacks():
    report = run_cluster_case(2026, 0)
    assert report.ok, [m.describe() for m in report.mismatches]
    assert report.statements > 0
    assert report.commits > 0
    # the workload must actually exercise real cross-process 2PC
    assert report.cross_shard_commits > 0


def test_cluster_oracle_cli_reproducer_exits_zero(capsys):
    assert check_main(
        ["--oracle", "cluster", "--seed", "2026", "--case", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "agree across" in out
