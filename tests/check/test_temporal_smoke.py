"""Tier-1 temporal smoke: 50 random histories against a brute-force shadow.

Every ``@T`` path read, TimeDial-pinned read, and raw association-table
read must agree with the shadow at every probe time, and SafeTime must
clamp a skewed provider to the commit ceiling.
"""

import pytest

from repro.check import run_temporal_case, run_temporal_range
from repro.db import GemStone

SMOKE_SEED = 2026


@pytest.fixture(scope="module")
def database():
    # one database shared by all histories: cases are namespaced by
    # (seed, case) so their world bindings never collide
    return GemStone.create(track_count=512, track_size=2048)


def test_fifty_histories_agree_with_the_shadow(database):
    report = run_temporal_range(database, SMOKE_SEED, 50)
    assert report.ok, report.problems[0]
    assert report.histories == 50
    assert report.commits == 300
    assert report.reads > 5000  # three read modes per object/field/probe
    assert report.clamps == 50  # one deliberate skewed-provider clamp each


def test_probe_times_cover_boundaries(database):
    # a single case still probes before creation, at every commit time,
    # and just before/after each — the off-by-one surface
    report = run_temporal_case(database, SMOKE_SEED, case=997)
    assert report.ok, report.problems[0]
    assert report.reads >= 3 * 6  # at minimum: one object, one field


def test_counters_flow_into_observability(database):
    before = database.observability()["counters"]["counters"].get(
        "check.temporal.histories", 0
    )
    report = run_temporal_case(database, SMOKE_SEED, case=998)
    assert report.ok
    counters = database.observability()["counters"]["counters"]
    assert counters["check.temporal.histories"] == before + 1
    assert counters["check.temporal.reads"] >= report.reads
    assert counters["check.temporal.clamps"] >= 1
    assert "check.temporal.mismatches" not in counters
