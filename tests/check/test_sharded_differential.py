"""The sharded store as a differential execution mode: OPAL through the
cluster front end must be observation-identical to one monolithic store.
"""

from repro.check import run_soak
from repro.check.sharded import (
    generate_shard_workload,
    run_sharded_case,
    run_sharded_range,
)
from repro.shard.partition import route_statement


class TestWorkloadGenerator:
    def test_deterministic_per_seed(self):
        a = generate_shard_workload(5, 1, shards=3, transactions=6)
        b = generate_shard_workload(5, 1, shards=3, transactions=6)
        assert a == b

    def test_every_statement_routes_to_one_shard(self):
        for case in range(4):
            workload = generate_shard_workload(
                9, case, shards=4, transactions=8
            )
            for statements in workload:
                for source in statements:
                    route_statement(source, 4)  # raises if multi-shard

    def test_seeds_differ(self):
        a = generate_shard_workload(1, 0, shards=3, transactions=6)
        b = generate_shard_workload(2, 0, shards=3, transactions=6)
        assert a != b


class TestShardedOracle:
    def test_case_agrees_with_the_baseline(self):
        report = run_sharded_case(2026, 0)
        assert report.ok, [m.describe() for m in report.mismatches]
        assert report.statements > 0
        assert report.commits > 0

    def test_range_exercises_cross_shard_commits(self):
        report = run_sharded_range(2026, 3)
        assert report.ok, [m.describe() for m in report.mismatches]
        assert report.cross_shard_commits > 0

    def test_failure_prints_a_reproducer(self):
        report = run_sharded_case(2026, 1)
        # fabricate a mismatch path check without breaking the store
        from repro.check.sharded import ShardMismatch

        text = ShardMismatch(
            seed=2026, case=1, transaction=3,
            what="statement 0 value", baseline=1, sharded=2,
        ).describe()
        assert "python -m repro.check --seed 2026 --case 1" in text
        assert "--oracle sharded" in text
        assert report.ok

    def test_soak_folds_in_the_sharded_oracle(self):
        metrics = run_soak(
            2026, diff_cases=2, temporal_cases=1,
            schedule_cases=1, sharded_cases=1,
        )
        assert metrics["sharded_statements"] > 0
        assert metrics["problems"] == 0
