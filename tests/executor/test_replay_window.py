"""The bounded ``(channel, seq)`` replay window and response correlation.

The original replay cache remembered exactly one sealed response (the
last sequence number served).  Under pipelining that is a double-apply
bug: a duplicate COMMIT delayed past one intervening EXECUTE no longer
matches the remembered seq, fails the "is this a resend?" check, and is
*applied a second time* — committing work the client never asked to
commit.  These tests pin the fix: a bounded window keyed by
``(channel, seq)`` that replays any recently-sealed response, plus the
host-side discipline of correlating responses by seq instead of
dropping whatever arrives out of order.
"""

import pytest

from repro import GemStone
from repro.executor import HostConnection, ReplayWindow, make_link
from repro.executor import protocol
from repro.executor.protocol import FrameType


@pytest.fixture
def db():
    return GemStone.create(track_count=1024, track_size=1024)


class TestReplayWindowUnit:
    def test_miss_then_hit(self):
        window = ReplayWindow(4)
        assert window.lookup(None, 1) is None
        window.store(None, 1, b"answer")
        assert window.lookup(None, 1) == b"answer"
        assert window.replays == 1

    def test_unsequenced_frames_are_never_cached(self):
        window = ReplayWindow(4)
        assert window.lookup(None, None) is None
        window.store(None, None, b"ignored")
        assert window.lookup(None, None) is None
        assert window.replays == 0

    def test_channels_do_not_collide(self):
        window = ReplayWindow(4)
        window.store(0, 7, b"stream zero")
        window.store(1, 7, b"stream one")
        assert window.lookup(0, 7) == b"stream zero"
        assert window.lookup(1, 7) == b"stream one"

    def test_eviction_is_fifo_and_bounded(self):
        window = ReplayWindow(2)
        window.store(None, 1, b"one")
        window.store(None, 2, b"two")
        window.store(None, 3, b"three")  # evicts seq 1
        assert window.lookup(None, 1) is None
        assert window.lookup(None, 2) == b"two"
        assert window.lookup(None, 3) == b"three"


class TestDelayedDuplicateCommit:
    def test_duplicate_commit_after_intervening_execute_replays(self, db):
        """The headline regression: COMMIT seq N redelivered after
        EXECUTE seq N+1 must replay, not commit the uncommitted work."""
        conn = HostConnection(db)
        conn.login("DataCurator", "swordfish")
        executor = conn.executor
        host, gem = make_link()
        increment = protocol.encode_execute(
            "World!n := (World!n ifNil: [0]) + 1"
        )
        commit = protocol.encode_seq(
            1002, protocol.encode_simple(FrameType.COMMIT)
        )
        host.send(protocol.encode_seq(1001, increment))
        host.send(commit)  # commits World!n = 1
        host.send(protocol.encode_seq(1003, increment))  # uncommitted: n = 2
        executor.serve(gem)
        host.receive()
        first_commit = host.receive()
        host.receive()
        # the network redelivers the old COMMIT *after* seq 3 was served;
        # the single-entry cache would apply it again and commit n = 2
        host.send(commit)
        executor.serve(gem)
        assert host.receive() == first_commit
        assert executor.replays == 1
        # drop the in-progress increment, then read what was committed
        host.send(protocol.encode_seq(
            1004, protocol.encode_simple(FrameType.ABORT)
        ))
        host.send(protocol.encode_seq(
            1005, protocol.encode_execute("World!n")
        ))
        executor.serve(gem)
        host.receive()
        readback = protocol.decode_frame(host.receive())
        assert readback.fields["value"] == 1  # the duplicate did not commit

    def test_any_window_entry_replays_not_just_the_last(self, db):
        conn = HostConnection(db)
        conn.login("DataCurator", "swordfish")
        executor = conn.executor
        host, gem = make_link()
        envelopes = [
            protocol.encode_seq(seq, protocol.encode_execute(f"{seq} + 0"))
            for seq in (1001, 1002, 1003)
        ]
        for envelope in envelopes:
            host.send(envelope)
        executor.serve(gem)
        originals = [host.receive() for _ in envelopes]
        for envelope in reversed(envelopes):  # resend all, oldest last
            host.send(envelope)
        executor.serve(gem)
        replayed = [host.receive() for _ in envelopes]
        assert replayed == list(reversed(originals))
        assert executor.replays == 3

    def test_window_eviction_bounds_executor_memory(self, db):
        conn = HostConnection(db)
        conn.login("DataCurator", "swordfish")
        executor = conn.executor
        capacity = executor.replay.capacity
        host, gem = make_link()
        for seq in range(1001, 1001 + capacity + 1):  # one past capacity
            host.send(protocol.encode_seq(
                seq, protocol.encode_execute("1 + 1")
            ))
        executor.serve(gem)
        assert len(executor.replay._responses) == capacity
        # seq 1001 was evicted: a resend is *applied*, not replayed
        before = executor.replays
        host.send(protocol.encode_seq(
            1001, protocol.encode_execute("1 + 1")
        ))
        executor.serve(gem)
        assert executor.replays == before


class TestHostCorrelation:
    def test_out_of_order_response_is_stashed_not_dropped(self, db):
        """A response for a different seq must be filed for its own
        requester; the old client dropped it and timed out."""
        conn = HostConnection(db)
        conn.login("DataCurator", "swordfish")
        # hand-deliver two responses in reversed order
        gem_to_host = conn._gem_end
        gem_to_host.send(protocol.encode_seq(
            conn._seq + 2, protocol.encode_result(2, "2")
        ))
        gem_to_host.send(protocol.encode_seq(
            conn._seq + 1, protocol.encode_result(1, "1")
        ))
        first = conn._receive_matching(conn._seq + 1)
        assert first is not None and first.fields["value"] == 1
        # the overtaking response was stashed, not discarded
        second = conn._receive_matching(conn._seq + 2)
        assert second is not None and second.fields["value"] == 2

    def test_stash_is_bounded(self, db):
        from repro.executor.executor import _RESPONSE_STASH_LIMIT

        conn = HostConnection(db)
        conn.login("DataCurator", "swordfish")
        gem_to_host = conn._gem_end
        base = conn._seq + 100
        for offset in range(_RESPONSE_STASH_LIMIT + 5):
            gem_to_host.send(protocol.encode_seq(
                base + offset, protocol.encode_result(offset, str(offset))
            ))
        gem_to_host.send(protocol.encode_seq(
            conn._seq + 1, protocol.encode_result(-1, "match")
        ))
        match = conn._receive_matching(conn._seq + 1)
        assert match is not None
        assert len(conn._responses) <= _RESPONSE_STASH_LIMIT
