"""Typed-error rehydration: unknown classes degrade to a typed FatalError.

Regression for the cross-version wire contract: an error class the
receiving side does not know (a newer peer's type, or garbage) must
come back as a *typed* :class:`~repro.errors.FatalError` with the
original name preserved — never a ``KeyError``/``AttributeError`` on
the receiving side, and never a bare retryable guess.
"""

from repro import errors
from repro.executor import protocol


class TestKnownClasses:
    def test_known_error_class_rehydrates_as_itself(self):
        error = protocol.rehydrate_error("TransactionConflict", "overlap")
        assert isinstance(error, errors.TransactionConflict)
        assert "overlap" in str(error)

    def test_shard_errors_rehydrate_typed(self):
        error = protocol.rehydrate_error("ShardUnavailable", "no reply")
        assert isinstance(error, errors.ShardUnavailable)
        assert isinstance(error, errors.RetryableError)


class TestUnknownClasses:
    def test_unknown_class_degrades_to_typed_fatal(self):
        error = protocol.rehydrate_error("FutureQuantumError", "entangled")
        assert isinstance(error, errors.FatalError)
        assert not isinstance(error, errors.RetryableError)

    def test_original_name_is_preserved(self):
        error = protocol.rehydrate_error("FutureQuantumError", "entangled")
        assert error.original_class == "FutureQuantumError"
        assert "FutureQuantumError" in str(error)
        assert "entangled" in str(error)

    def test_non_error_module_attribute_is_not_instantiated(self):
        # names that exist in the errors module but are not GemStone
        # error classes must take the fallback path, not be called
        error = protocol.rehydrate_error("annotations", "sneaky")
        assert isinstance(error, errors.FatalError)

    def test_fallback_is_still_a_gemstone_error(self):
        # retry/abort policy upstream catches GemStoneError; the
        # fallback must stay inside that taxonomy
        error = protocol.rehydrate_error("NoSuchErrorClass", "boom")
        assert isinstance(error, errors.GemStoneError)
