"""Tests for the Executor protocol and host link."""

import pytest

from repro import GemStone, GemStoneError
from repro.core import Ref
from repro.errors import ProtocolError
from repro.executor import FrameType, HostConnection, make_link
from repro.executor import protocol


@pytest.fixture
def db():
    return GemStone.create(track_count=1024, track_size=1024)


@pytest.fixture
def conn(db):
    connection = HostConnection(db)
    connection.login("DataCurator", "swordfish")
    return connection


class TestLink:
    def test_frames_round_trip(self):
        a, b = make_link()
        a.send(b"hello")
        a.send(b"world")
        assert b.receive() == b"hello"
        assert b.receive() == b"world"
        assert b.receive() is None

    def test_duplex(self):
        a, b = make_link()
        a.send(b"ping")
        b.send(b"pong")
        assert b.receive() == b"ping"
        assert a.receive() == b"pong"

    def test_empty_frame_allowed_on_wire(self):
        a, b = make_link()
        a.send(b"")
        assert b.receive() == b""

    def test_close(self):
        a, b = make_link()
        a.close()
        assert b.peer_closed
        with pytest.raises(ProtocolError):
            a.send(b"x")

    def test_accounting(self):
        a, _ = make_link()
        a.send(b"12345")
        assert a.frames_sent == 1
        assert a.bytes_sent == 9


class TestProtocolCodec:
    def test_login_roundtrip(self):
        frame = protocol.decode_frame(protocol.encode_login("u", "p"))
        assert frame.type is FrameType.LOGIN
        assert frame.fields == {"user": "u", "password": "p"}

    def test_execute_roundtrip(self):
        frame = protocol.decode_frame(protocol.encode_execute("3 + 4"))
        assert frame.fields["source"] == "3 + 4"

    def test_result_with_immediate(self):
        frame = protocol.decode_frame(protocol.encode_result(42, "42"))
        assert frame.fields["value"] == 42
        assert frame.fields["display"] == "42"
        assert frame.fields["wire_value"]

    def test_result_with_object_becomes_ref(self, db):
        session = db.login()
        obj = session.new("Object")
        frame = protocol.decode_frame(
            protocol.encode_result(obj, "an Object")
        )
        assert frame.fields["value"] == Ref(obj.oid)

    def test_error_roundtrip(self):
        frame = protocol.decode_frame(protocol.encode_error("Kind", "msg"))
        assert frame.type is FrameType.ERROR
        assert frame.fields["error_class"] == "Kind"

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"\xff")
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"")


class TestHostConnection:
    def test_execute_immediate(self, conn):
        value, display = conn.execute("3 + 4")
        assert value == 7
        assert display == "7"

    def test_execute_object_returns_ref_and_display(self, conn):
        value, display = conn.execute("| o | o := Object new. o at: 'x' put: 1. o")
        assert isinstance(value, Ref)
        assert "Object" in display

    def test_blocks_of_source(self, conn):
        """The unit of communication is a block of OPAL source."""
        conn.execute("""
            Object subclass: #Counter instVarNames: #(n).
            Counter compile: 'n ^n'.
            Counter compile: 'bump n := (n isNil ifTrue: [0] ifFalse: [n]) + 1'
        """)
        value, _ = conn.execute(
            "| c | c := Counter new. c bump. c bump. c bump. c n"
        )
        assert value == 3

    def test_errors_come_back_as_frames(self, conn):
        with pytest.raises(GemStoneError, match="frobnicate"):
            conn.execute("3 frobnicate")
        # session survives the error
        assert conn.execute("1 + 1")[0] == 2

    def test_parse_error_reported(self, conn):
        with pytest.raises(GemStoneError):
            conn.execute("x := ")

    def test_commit_and_visibility(self, db):
        writer = HostConnection(db)
        writer.login("DataCurator", "swordfish")
        reader = HostConnection(db)
        reader.login("DataCurator", "swordfish")
        writer.execute("World!shared := 99")
        assert writer.commit() is not None
        assert reader.execute("World!shared")[0] == 99

    def test_conflict_reported_as_none(self, db):
        a = HostConnection(db)
        a.login("DataCurator", "swordfish")
        b = HostConnection(db)
        b.login("DataCurator", "swordfish")
        a.execute("World!x := 0")
        assert a.commit() is not None
        b.abort()
        a.execute("World!x := World!x + 1")
        b.execute("World!x := World!x + 1")
        assert a.commit() is not None
        assert b.commit() is None  # conflict

    def test_abort(self, conn):
        conn.execute("World!x := 5")
        conn.abort()
        assert conn.execute("World!x")[0] is None

    def test_bad_login(self, db):
        connection = HostConnection(db)
        with pytest.raises(GemStoneError):
            connection.login("DataCurator", "wrong")

    def test_execute_before_login_rejected(self, db):
        connection = HostConnection(db)
        with pytest.raises(GemStoneError):
            connection.execute("1")

    def test_logout_ends_session(self, conn):
        conn.logout()
        assert conn.session_id is None
        with pytest.raises(GemStoneError):
            conn.execute("1")
