"""SEQ channels: two logical streams multiplexed over one exactly-once
link, reconnecting mid-conversation without replay-cache collisions.

A shard worker's link carries session statements (channel 0) and 2PC
control (channel 1); the DR wire can carry SHIP frames next to either.
Each stream numbers its own sequence space, so after a reconnect both
streams resend their last unacknowledged envelope — with seq-only cache
keys, stream A's resend could be answered with stream B's cached
response.  These tests pin the ``(channel, seq)`` keying at every
layer: the envelope codec, the DR receiver, and the shard RPC server.
"""

from repro.dr.log import DeltaRecord, SnapshotRecord, encode_record
from repro.dr.ship import LogReceiver
from repro.dr.store import ReplicaLogStore
from repro.executor import protocol
from repro.executor.link import make_link
from repro.executor.protocol import FrameType
from repro.shard.worker import ShardWorker


def ship_envelope(seq, channel, epoch):
    record = encode_record(
        DeltaRecord(
            epoch=epoch, root_slot=0,
            root_image=b"root%d" % epoch, writes=((7, b"data"),),
        )
    )
    return protocol.encode_seq(seq, protocol.encode_ship(record),
                               channel=channel)


def bootstrapped_store():
    """A replica store with its birth snapshot already applied."""
    store = ReplicaLogStore()
    store.append(encode_record(SnapshotRecord(
        epoch=0, track_count=4, track_size=64, tracks=((0, b"seed"),),
    )))
    return store


class TestEnvelope:
    def test_channel_round_trips(self):
        raw = protocol.encode_seq(5, protocol.encode_ship_status(), channel=3)
        frame = protocol.decode_frame(raw)
        assert frame.seq == 5
        assert frame.channel == 3

    def test_absent_channel_decodes_none(self):
        raw = protocol.encode_seq(5, protocol.encode_ship_status())
        assert protocol.decode_frame(raw).channel is None

    def test_channel_composes_with_deadline_and_request_id(self):
        raw = protocol.encode_seq(
            9, protocol.encode_ship_status(),
            deadline=42.5, request_id=17, channel=2,
        )
        frame = protocol.decode_frame(raw)
        assert (frame.seq, frame.deadline, frame.request_id, frame.channel) \
            == (9, 42.5, 17, 2)


class TestReceiverReplayCache:
    def test_same_seq_on_two_channels_does_not_collide(self):
        # stream 0 ships epoch 1 as seq 1; stream 1 ships epoch 2, also
        # as seq 1 — with seq-only keys the second request would be
        # answered from the first one's cache and epoch 2 never lands
        store = bootstrapped_store()
        receiver = LogReceiver(store)
        near, far = make_link()
        near.send(ship_envelope(1, 0, 1))
        near.send(ship_envelope(1, 1, 2))
        receiver.serve(far)
        first = protocol.decode_frame(near.receive())
        second = protocol.decode_frame(near.receive())
        assert (first.channel, first.fields["epoch"]) == (0, 1)
        assert (second.channel, second.fields["epoch"]) == (1, 2)
        assert store.acked_epoch == 2

    def test_reconnect_resends_replay_per_channel(self):
        # both streams reconnect and resend their last envelope; each
        # must get its own cached answer, and nothing re-applies
        store = bootstrapped_store()
        receiver = LogReceiver(store)
        near, far = make_link()
        first, second = ship_envelope(1, 0, 1), ship_envelope(1, 1, 2)
        near.send(first)
        near.send(second)
        receiver.serve(far)
        near.receive(), near.receive()
        segments_before = len(store.segments)

        # the reconnect: identical envelopes arrive again
        near.send(first)
        near.send(second)
        receiver.serve(far)
        replay_a = protocol.decode_frame(near.receive())
        replay_b = protocol.decode_frame(near.receive())
        assert (replay_a.channel, replay_a.fields["epoch"]) == (0, 1)
        assert (replay_b.channel, replay_b.fields["epoch"]) == (1, 2)
        assert store.acked_epoch == 2
        assert len(store.segments) == segments_before


class TestShardServerReplayCache:
    def test_exec_and_prepare_streams_share_one_link(self):
        # SHARD_EXEC travels on channel 0, PREPARE on channel 1, both
        # using seq 1 — the worker must answer each from its own stream
        worker = ShardWorker(0)
        near, far = make_link()
        near.send(protocol.encode_seq(
            1, protocol.encode_shard_exec("g0.1", "World!x := 41"),
            channel=0,
        ))
        near.send(protocol.encode_seq(
            1, protocol.encode_prepare("g0.1"), channel=1,
        ))
        worker.serve(far)
        result = protocol.decode_frame(near.receive())
        vote = protocol.decode_frame(near.receive())
        assert result.type is FrameType.RESULT
        assert vote.type is FrameType.VOTE
        assert vote.fields["commit"] is True

    def test_duplicate_exec_after_reconnect_is_not_reapplied(self):
        worker = ShardWorker(0)
        near, far = make_link()
        envelope = protocol.encode_seq(
            1, protocol.encode_shard_exec("g0.1", "World!n := 1"),
            channel=0,
        )
        near.send(envelope)
        worker.serve(far)
        near.receive()
        executed_once = len(worker._pending["g0.1"])

        near.send(envelope)  # reconnect: the client resends
        worker.serve(far)
        replay = protocol.decode_frame(near.receive())
        assert replay.type is FrameType.RESULT
        assert worker.server.replays == 1
        assert len(worker._pending["g0.1"]) == executed_once
