"""Epoch.bump under thread contention: every bump must be observed.

The original ``bump`` was an unlocked ``self.value += 1`` — a classic
lost-update race: two threads read the same value, both write value+1,
and one invalidation vanishes.  A lost epoch bump is not a counter
cosmetic; it means a class-hierarchy change that *never invalidates*
the method/inline caches keyed on the epoch, i.e. stale dispatch.
These tests hammer the real code path from many threads and assert no
increment is lost and the value never moves backwards.
"""

import threading

from repro.perf.epochs import Epoch


def test_bump_returns_the_new_value():
    epoch = Epoch()
    assert epoch.value == 0
    assert epoch.bump() == 1
    assert epoch.bump() == 2
    assert epoch.value == 2


def test_no_bump_is_lost_under_contention():
    epoch = Epoch()
    per_thread, thread_count = 5_000, 8
    barrier = threading.Barrier(thread_count)

    def hammer():
        barrier.wait()  # maximize overlap
        for _ in range(per_thread):
            epoch.bump()

    threads = [threading.Thread(target=hammer) for _ in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert epoch.value == per_thread * thread_count


def test_bumped_values_are_unique_and_monotonic_per_thread():
    epoch = Epoch()
    thread_count, per_thread = 6, 2_000
    barrier = threading.Barrier(thread_count)
    results: list[list[int]] = [[] for _ in range(thread_count)]

    def hammer(slot: int):
        barrier.wait()
        mine = results[slot]
        for _ in range(per_thread):
            mine.append(epoch.bump())

    threads = [
        threading.Thread(target=hammer, args=(slot,))
        for slot in range(thread_count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    everything = [value for chunk in results for value in chunk]
    # no two threads ever saw the same post-bump value (the lost-update
    # signature), and each thread saw strictly increasing values
    assert len(set(everything)) == thread_count * per_thread
    for chunk in results:
        assert chunk == sorted(chunk)


def test_concurrent_readers_never_see_a_regression():
    epoch = Epoch()
    stop = threading.Event()
    regressions: list[tuple[int, int]] = []

    def read_loop():
        last = 0
        while not stop.is_set():
            seen = epoch.value  # lock-free read, as on the SEND hot path
            if seen < last:
                regressions.append((last, seen))
                return
            last = seen

    readers = [threading.Thread(target=read_loop) for _ in range(3)]
    for reader in readers:
        reader.start()
    for _ in range(20_000):
        epoch.bump()
    stop.set()
    for reader in readers:
        reader.join()
    assert not regressions
    assert epoch.value == 20_000
