"""Cache invalidation: a stale hit from any hot-path cache is a bug.

Every cache in :mod:`repro.perf` is validated against an epoch — the
class-hierarchy epoch for method lookup and inline caches, plus the
directory-manager epoch for memoized query plans.  These tests mutate
behavior *after* warming the caches and assert the new behavior is
observed immediately; an assertion failure here means a cache served a
stale entry.
"""

import pytest

from repro import GemStone
from repro.core import MemoryObjectManager
from repro.directories import DirectoryManager
from repro.errors import GemStoneError
from repro.opal import OpalEngine


def warm_engine():
    """An engine with a warmed send path through ``Probe>>answer``."""
    store = MemoryObjectManager()
    engine = OpalEngine(store)
    engine.execute("""
        Object subclass: #Probe instVarNames: #().
        Probe compile: 'answer ^1'.
        World!probe := Probe new
    """)
    probe = engine.execute("World!probe")
    # warm the global method cache and the call site's inline cache
    assert engine.execute("| s | s := 0. 1 to: 50 do: [:i | s := s + World!probe answer]. ^s") == 50
    return store, engine, probe


class TestMethodRedefinition:
    def test_shared_store_redefinition_is_visible_immediately(self):
        store, engine, probe = warm_engine()
        engine.execute("Probe compile: 'answer ^2'")
        assert engine.send(probe, "answer") == 2  # stale hit would answer 1

    def test_warm_inline_cache_site_sees_redefinition(self):
        store, engine, probe = warm_engine()
        # the send inside this loop body is a single call site: warm it,
        # redefine mid-stream, and the same site must flip to the new method
        source = """
            | total |
            total := 0.
            1 to: 10 do: [:i |
                i = 6 ifTrue: [Probe compile: 'answer ^100'].
                total := total + World!probe answer].
            ^total
        """
        assert engine.execute(source) == 5 * 1 + 5 * 100

    def test_removed_method_stops_answering(self):
        store, engine, probe = warm_engine()
        store.class_named("Probe").remove_method("answer")
        with pytest.raises(GemStoneError):
            engine.send(probe, "answer")


class TestSessionOverlayInvalidation:
    def test_overlay_redefinition_is_visible_immediately(self):
        db = GemStone.create()
        with db.login() as session:
            session.execute("""
                Object subclass: #Widget instVarNames: #().
                Widget compile: 'answer ^42'
            """)
            assert session.execute("Widget new answer") == 42
            session.execute("Widget compile: 'answer ^7'")
            assert session.execute("Widget new answer") == 7

    def test_abort_discards_overlay_method_definitions(self):
        db = GemStone.create()
        with db.login() as session:
            session.execute("""
                Object subclass: #Widget instVarNames: #().
                Widget compile: 'answer ^42'
            """)
            # warm every layer of the send path on the doomed class
            for _ in range(5):
                assert session.execute("Widget new answer") == 42
            session.abort()
            # the overlay class died with the transaction; a cached
            # method surviving the abort would keep answering 42
            redefined = session.execute("""
                Object subclass: #Widget instVarNames: #().
                Widget compile: 'answer ^7'.
                Widget new answer
            """)
            assert redefined == 7


class TestDirectoryEpoch:
    def build(self, n=30):
        store = MemoryObjectManager()
        dm = DirectoryManager(store)
        engine = OpalEngine(store, directory_manager=dm)
        engine.execute("""
            Object subclass: #Employee instVarNames: #(salary).
            Employee compile: 'salary ^salary'.
            Employee compile: 'salary: s salary := s'.
            Object subclass: #Desk instVarNames: #(emps).
            Desk compile: 'emps: c emps := c'.
            Desk compile: 'hot ^emps select: [:e | e salary < 500]'
        """)
        engine.execute(f"""
            | emps e desk |
            emps := Bag new.
            1 to: {n} do: [:i |
                e := Employee new.
                e salary: i * 100.
                emps add: e].
            desk := Desk new.
            desk emps: emps.
            World!desk := desk.
            World!emps := emps
        """)
        emps = engine.execute("World!emps")
        desk = engine.execute("World!desk")
        return store, dm, engine, emps, desk

    def run_hot(self, store, engine, desk):
        selected = engine.send(desk, "hot")
        return sorted(m.oid for m in store.members_of(selected, None))

    def test_dropping_a_directory_invalidates_memoized_plans(self):
        store, dm, engine, emps, desk = self.build()
        directory = dm.create_directory(emps, "salary")
        before = self.run_hot(store, engine, desk)  # primes an indexed plan
        assert directory.lookups == 1
        dm.drop_directory(directory)
        after = self.run_hot(store, engine, desk)
        assert after == before  # a stale indexed plan would probe a dead index
        assert directory.lookups == 1  # the dropped directory was not consulted

    def test_creating_a_directory_invalidates_memoized_plans(self):
        store, dm, engine, emps, desk = self.build()
        before = self.run_hot(store, engine, desk)  # primes a scan plan
        directory = dm.create_directory(emps, "salary")
        after = self.run_hot(store, engine, desk)
        assert after == before
        assert directory.lookups == 1  # the new index was picked up, not the memo

    def test_method_redefinition_invalidates_memoized_plans(self):
        store, dm, engine, emps, desk = self.build()
        assert len(self.run_hot(store, engine, desk)) == 4  # salaries 100..400
        engine.execute("Desk compile: 'hot ^emps select: [:e | e salary < 1100]'")
        selected = engine.send(desk, "hot")
        assert len(list(store.members_of(selected, None))) == 10
