"""End-to-end continuous replication: ship, lose the primary, rebuild.

The zero-loss invariant in one sentence: *client-acknowledged implies
replica-acknowledged*.  These tests drive real commits through
``GemStone.enable_replication`` and check both directions — a healthy
(or merely lossy) link keeps the replica in step and rebuilds
byte-identical platters, and a dead link makes the commit itself fail
before the client ever sees it succeed.
"""

import pytest

from repro import errors
from repro.db import GemStone
from repro.dr import (
    byte_identical,
    logical_diff,
    recover_database,
    recover_disk,
)
from repro.executor import protocol
from repro.executor.protocol import FrameType
from repro.faults.plan import FaultPlan, FaultSpec


def build_primary(commits=4, **replication_kw):
    """A small database with replication on; returns per-epoch clones."""
    db = GemStone.create(track_count=1024, track_size=512)
    shipper = db.enable_replication(**replication_kw)
    session = db.login()
    clones = {}
    for n in range(commits):
        session.execute(f"World!k{n} := 'v{n}'")
        session.commit()
        clones[db.store.commit_manager.current_epoch] = db.disk.clone()
    return db, shipper, session, clones


class TestRecovery:
    def test_latest_rebuild_is_byte_identical(self):
        db, shipper, _, _ = build_primary()
        assert shipper.replication_lag == 0
        rebuilt = recover_disk(db.replica_log)
        assert byte_identical(db.disk, rebuilt)

    def test_recovered_database_is_logically_identical(self):
        db, _, _, _ = build_primary()
        recovered = recover_database(db.replica_log)
        assert logical_diff(db, recovered) == []
        with db.login() as a, recovered.login() as b:
            assert a.execute("World!k2") == b.execute("World!k2")

    def test_point_in_time_rebuild_matches_the_epoch_clone(self):
        db, shipper, _, clones = build_primary(commits=5)
        target = sorted(clones)[1]  # an early, non-latest epoch
        assert target < shipper.acked_epoch
        rebuilt = recover_disk(db.replica_log, epoch=target)
        assert byte_identical(clones[target], rebuilt)

    def test_point_in_time_database_serves_the_old_state(self):
        db, _, session, clones = build_primary(commits=3)
        first_commit = sorted(clones)[0]
        past = recover_database(db.replica_log, epoch=first_commit)
        with past.login() as old:
            assert old.execute("World!k0") == "v0"
            # later commits never reached this point in time
            assert old.execute("World!k2") is None


class TestLossyLink:
    def test_link_faults_are_masked_by_retry(self):
        plan = FaultPlan(
            seed=7,
            spec=FaultSpec(drop_rate=0.2, duplicate_rate=0.15,
                           truncate_rate=0.1),
        )
        db, shipper, _, _ = build_primary(commits=5, plan=plan)
        assert plan.injected > 0, "the seed must actually inject faults"
        assert shipper.acked_epoch == shipper.local_epoch
        assert byte_identical(db.disk, recover_disk(db.replica_log))

    def test_duplicate_frames_are_applied_exactly_once(self):
        plan = FaultPlan(seed=3, spec=FaultSpec(duplicate_rate=1.0))
        db, shipper, _, _ = build_primary(commits=3, plan=plan)
        store = db.replica_log
        # every frame arrived twice; the store kept each record once
        assert store.records_appended == shipper.records_shipped
        assert byte_identical(db.disk, recover_disk(store))


class Partition:
    """A link wrapper with a switchable total outage."""

    def __init__(self, inner):
        self.inner = inner
        self.partitioned = False

    def send(self, frame):
        if not self.partitioned:
            self.inner.send(frame)

    def receive(self):
        if self.partitioned:
            return None
        return self.inner.receive()

    def close(self):
        self.inner.close()

    @property
    def peer_closed(self):
        return self.inner.peer_closed


class TestOutages:
    def test_suspend_buffers_and_catch_up_drains(self):
        db, shipper, session, _ = build_primary(commits=2)
        shipper.suspend()
        for n in range(2):
            session.execute(f"World!late{n} := 'late{n}'")
            session.commit()
        assert shipper.replication_lag == 2
        assert db.replica_log.acked_epoch == shipper.local_epoch - 2
        shipper.catch_up()
        assert shipper.replication_lag == 0
        assert byte_identical(db.disk, recover_disk(db.replica_log))

    def test_partition_fails_the_commit_before_the_client_sees_it(self):
        partition = None

        def wrapper(inner):
            nonlocal partition
            partition = Partition(inner)
            return partition

        db, shipper, session, _ = build_primary(
            commits=1, link_wrapper=wrapper
        )
        acked_before = db.replica_log.acked_epoch
        partition.partitioned = True
        session.execute("World!lost := 'never-acked'")
        with pytest.raises(errors.ReplicaNotAcknowledged):
            session.commit()
        # the commit was aborted: not client-acked, workspace discarded
        assert db.transaction_manager.stats.storage_failures == 1
        assert db.replica_log.acked_epoch == acked_before
        assert shipper.ship_failures == 1

        # the link heals; catch-up resends the stranded record, and the
        # retried transaction commits normally
        partition.partitioned = False
        shipper.catch_up()
        assert shipper.replication_lag == 0
        session.execute("World!lost := 'retried'")
        session.commit()
        recovered = recover_database(db.replica_log)
        with recovered.login() as check:
            assert check.execute("World!lost") == "retried"


class TestWireFormat:
    def test_ship_frame_roundtrip(self):
        record = b"framed-log-record-bytes"
        raw = protocol.encode_seq(5, protocol.encode_ship(record))
        frame = protocol.decode_frame(raw)
        assert frame.type is FrameType.SHIP
        assert frame.seq == 5
        assert frame.fields["record"] == record

    def test_snapshot_frame_roundtrip(self):
        raw = protocol.encode_seq(1, protocol.encode_snapshot(b"\x00\xffsnap"))
        frame = protocol.decode_frame(raw)
        assert frame.type is FrameType.SNAPSHOT
        assert frame.fields["record"] == b"\x00\xffsnap"

    def test_ship_ack_carries_the_epoch(self):
        raw = protocol.encode_seq(2, protocol.encode_ship_ack(300))
        frame = protocol.decode_frame(raw)
        assert frame.type is FrameType.SHIP_ACK
        assert frame.fields["epoch"] == 300

    def test_ship_status_roundtrip(self):
        raw = protocol.encode_seq(3, protocol.encode_ship_status())
        assert protocol.decode_frame(raw).type is FrameType.SHIP_STATUS

    def test_rehydrate_known_error_class(self):
        error = protocol.rehydrate_error("ReplicationGapError", "skipped 3")
        assert isinstance(error, errors.ReplicationGapError)
        assert "skipped 3" in str(error)

    def test_rehydrate_unknown_class_degrades_to_base(self):
        error = protocol.rehydrate_error("NoSuchErrorClass", "boom")
        assert isinstance(error, errors.GemStoneError)
        assert "NoSuchErrorClass" in str(error)


class TestObservability:
    def test_snapshot_carries_the_replication_section(self):
        db, shipper, _, _ = build_primary(commits=3)
        replication = db.observability()["storage"]["replication"]
        assert replication["enabled"] is True
        assert replication["replication_lag"] == 0
        assert replication["local_epoch"] == shipper.local_epoch
        assert replication["replica"]["acked_epoch"] == shipper.acked_epoch
        assert replication["replica"]["torn_rejected"] == 0

    def test_gauges_track_the_shipped_epochs(self):
        db, shipper, _, _ = build_primary(commits=2)
        gauges = db.observability()["counters"]["gauges"]
        assert gauges["dr.last_shipped_epoch"] == shipper.acked_epoch
        assert gauges["dr.replication_lag"] == 0

    def test_disabled_databases_report_enabled_false(self):
        db = GemStone.create(track_count=256, track_size=512)
        assert db.observability()["storage"]["replication"] == {
            "enabled": False
        }
