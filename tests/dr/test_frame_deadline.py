"""Per-frame deadlines on the shipping link: a dead replica cannot wedge
the commit path — the SEQ deadline machinery cuts the retry loop short
and surfaces the typed :class:`~repro.errors.ReplicaNotAcknowledged`.
"""

import pytest

from repro.db import GemStone
from repro.errors import ReplicaNotAcknowledged
from repro.faults.plan import FaultClock


class DeadableLink:
    """A link wrapper with a kill switch: dead means silently dropped."""

    def __init__(self, inner):
        self.inner = inner
        self.dead = False
        self.dropped = 0

    def send(self, frame):
        if self.dead:
            self.dropped += 1
            return
        self.inner.send(frame)

    def receive(self):
        if self.dead:
            return None
        return self.inner.receive()


class TestFrameDeadline:
    def build(self, frame_deadline=3.0, max_attempts=None):
        db = GemStone.create()
        clock = FaultClock()
        holder = {}

        def wrap(link):
            holder["link"] = DeadableLink(link)
            return holder["link"]

        shipper = db.enable_replication(
            link_wrapper=wrap, clock=clock, frame_deadline=frame_deadline
        )
        if max_attempts is not None:
            shipper.max_attempts = max_attempts
        return db, shipper, holder["link"], clock

    def test_dead_replica_fails_the_commit_within_the_deadline(self):
        db, shipper, link, clock = self.build(frame_deadline=3.0)
        session = db.login()
        session.execute("World!before := 1")
        session.commit()  # replica alive: ships fine
        acked_before = shipper.acked_epoch
        link.dead = True
        session.execute("World!after := 2")
        with pytest.raises(ReplicaNotAcknowledged):
            session.commit()
        assert shipper.deadline_failures == 1
        # the record never reached the replica and the client never saw
        # the commit succeed (local root durable, unacknowledged)
        assert shipper.acked_epoch == acked_before
        assert db.transaction_manager.stats.storage_failures == 1

    def test_deadline_cuts_the_retry_budget_short(self):
        # retry_delay=1 per attempt, deadline=3 units: the shipper must
        # give up after ~3 retries even with a 50-attempt budget
        db, shipper, link, clock = self.build(
            frame_deadline=3.0, max_attempts=50
        )
        shipper.retry_delay = 1.0
        link.dead = True
        session = db.login()
        session.execute("World!x := 1")
        with pytest.raises(ReplicaNotAcknowledged):
            session.commit()
        assert shipper.retries <= 4
        assert clock.now <= 5.0

    def test_no_deadline_keeps_the_old_retry_exhaustion_contract(self):
        db = GemStone.create()
        holder = {}

        def wrap(link):
            holder["link"] = DeadableLink(link)
            return holder["link"]

        shipper = db.enable_replication(link_wrapper=wrap)
        holder["link"].dead = True
        session = db.login()
        session.execute("World!x := 1")
        with pytest.raises(ReplicaNotAcknowledged):
            session.commit()
        assert shipper.deadline_failures == 0  # exhausted attempts instead
        assert shipper.retries == shipper.max_attempts - 1

    def test_catch_up_resends_after_the_replica_returns(self):
        db, shipper, link, clock = self.build(frame_deadline=4.0)
        session = db.login()
        link.dead = True
        session.execute("World!x := 1")
        with pytest.raises(ReplicaNotAcknowledged):
            session.commit()
        link.dead = False
        shipper.catch_up()  # the stranded record resends from history
        assert shipper.replication_lag == 0
        session.execute("World!y := 2")
        session.commit()
        assert shipper.acked_epoch == shipper.local_epoch
