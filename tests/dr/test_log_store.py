"""The replica log store: strict admission, segments, cold storage.

A log that accepts garbage cannot promise recovery, so admission is the
store's contract: torn records are rejected *before* storage, delta
epochs must be contiguous from the acknowledged epoch, duplicates are
re-acknowledged idempotently, and checkpoints never rewind the log.
"""

import pytest

from repro.dr import (
    DeltaRecord,
    ReplicaLogStore,
    SnapshotRecord,
    encode_record,
)
from repro.errors import ArchiveError, ReplicationGapError, TornLogRecord
from repro.storage.archive import ArchiveMedia


def snap(epoch):
    return encode_record(
        SnapshotRecord(epoch, track_count=16, track_size=128,
                       tracks=((2, b"snap%d" % epoch),))
    )


def delta(epoch):
    return encode_record(
        DeltaRecord(epoch, root_slot=epoch % 2, root_image=b"root%d" % epoch,
                    writes=((10 + epoch, b"w%d" % epoch),))
    )


class TestAdmission:
    def test_delta_before_any_snapshot_is_a_gap(self):
        store = ReplicaLogStore()
        with pytest.raises(ReplicationGapError):
            store.append(delta(1))
        assert store.acked_epoch == 0
        assert store.records_appended == 0

    def test_contiguous_deltas_advance_the_ack(self):
        store = ReplicaLogStore()
        assert store.append(snap(1)) == 1
        assert store.append(delta(2)) == 2
        assert store.append(delta(3)) == 3
        assert store.records_appended == 3

    def test_skipped_epoch_is_a_gap_and_is_not_stored(self):
        store = ReplicaLogStore()
        store.append(snap(1))
        with pytest.raises(ReplicationGapError):
            store.append(delta(3))
        assert store.acked_epoch == 1
        assert store.records_appended == 1
        store.append(delta(2))  # the gap closes in order

    def test_duplicate_delta_is_acknowledged_idempotently(self):
        store = ReplicaLogStore()
        store.append(snap(1))
        store.append(delta(2))
        assert store.append(delta(2)) == 2  # a resend, not a new record
        assert store.duplicates_ignored == 1
        assert store.records_appended == 2

    def test_torn_record_is_rejected_before_storage(self):
        store = ReplicaLogStore()
        store.append(snap(1))
        before = store.bytes_stored
        with pytest.raises(TornLogRecord):
            store.append(delta(2)[:-1])
        assert store.torn_rejected == 1
        assert store.bytes_stored == before
        assert store.acked_epoch == 1

    def test_checkpoint_never_rewinds(self):
        store = ReplicaLogStore()
        store.append(snap(1))
        store.append(delta(2))
        store.append(delta(3))
        assert store.append(snap(2)) == 3  # stale checkpoint: ignored
        assert store.duplicates_ignored == 1
        assert store.acked_epoch == 3


class TestSegments:
    def test_checkpoint_snapshot_opens_a_fresh_segment(self):
        store = ReplicaLogStore()
        store.append(snap(1))
        store.append(delta(2))
        store.append(snap(2))  # checkpoint at the acked epoch
        assert len(store.segments) == 2
        assert store.segments[0].closed

    def test_rolled_segment_closes_and_the_next_delta_opens_one(self):
        store = ReplicaLogStore()
        store.append(snap(1))
        store.append(delta(2))
        store.roll_segment()
        store.append(delta(3))
        assert len(store.segments) == 2
        assert store.segments[0].closed and not store.segments[1].closed

    def test_plan_recovery_spans_segments(self):
        store = ReplicaLogStore()
        store.append(snap(1))
        store.append(delta(2))
        store.roll_segment()
        store.append(delta(3))
        plan = store.plan_recovery()
        assert [r.epoch for r in plan] == [1, 2, 3]
        assert isinstance(plan[0], SnapshotRecord)

    def test_plan_recovery_point_in_time_stops_at_the_target(self):
        store = ReplicaLogStore()
        store.append(snap(1))
        for epoch in (2, 3, 4):
            store.append(delta(epoch))
        assert [r.epoch for r in store.plan_recovery(epoch=2)] == [1, 2]

    def test_plan_recovery_rejects_epochs_outside_the_log(self):
        store = ReplicaLogStore()
        store.append(snap(1))
        store.append(delta(2))
        for bad in (0, 3):
            with pytest.raises(ReplicationGapError):
                store.plan_recovery(epoch=bad)


class TestColdStorage:
    def build_tiered_store(self):
        """Segment 1 (epochs 1-3) closed; segment 2 (snapshot 3, delta 4)
        open — the shape after a checkpoint."""
        store = ReplicaLogStore()
        store.append(snap(1))
        store.append(delta(2))
        store.append(delta(3))
        store.append(snap(3))  # checkpoint: rolls segment 1
        store.append(delta(4))
        return store

    def test_archiving_moves_closed_segments_to_the_media(self):
        store = self.build_tiered_store()
        media = ArchiveMedia("log-tape")
        local_before = store.bytes_stored
        keys = store.archive_closed_segments(media)
        assert len(keys) == 1 and len(media) == 1
        assert store.segments[0].archived
        assert store.bytes_stored < local_before  # local copy dropped
        assert store.report()["archived_segments"] == 1

    def test_recent_recovery_never_touches_the_archive(self):
        store = self.build_tiered_store()
        store.archive_closed_segments(ArchiveMedia("log-tape"))
        # nothing mounted on the drive — the recent plan must still work
        plan = store.plan_recovery()
        assert [r.epoch for r in plan] == [3, 4]

    def test_pre_archive_epoch_requires_the_volume_mounted(self):
        store = self.build_tiered_store()
        media = ArchiveMedia("log-tape")
        store.archive_closed_segments(media)
        with pytest.raises(ArchiveError):
            store.plan_recovery(epoch=2)
        store.archive_drive.mount(media)
        assert [r.epoch for r in store.plan_recovery(epoch=2)] == [1, 2]
        store.archive_drive.unmount()
        with pytest.raises(ArchiveError):
            store.plan_recovery(epoch=2)

    def test_report_shape(self):
        store = self.build_tiered_store()
        report = store.report()
        assert report["acked_epoch"] == 4
        assert report["segments"] == 2
        assert report["records_appended"] == 5
        assert report["torn_rejected"] == 0
        assert report["bytes_stored"] > 0
