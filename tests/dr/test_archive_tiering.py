"""The log as cold storage: closed segments roll onto ArchiveMedia.

Section 6's archival story, applied to the replication log: a checkpoint
snapshot closes the old segment, the closed segment moves verbatim onto
a removable archive volume, and from then on recent recovery works with
the volume unmounted while pre-archive point-in-time requests surface
the typed :class:`~repro.errors.ArchiveError` until it is mounted again.
"""

import pytest

from repro.db import GemStone
from repro.dr import byte_identical, recover_database, recover_disk
from repro.errors import ArchiveError
from repro.storage.archive import ArchiveMedia


def build_tiered_primary():
    """Three cold commits, a checkpoint, two warm commits."""
    db = GemStone.create(track_count=1024, track_size=512)
    db.enable_replication()
    session = db.login()
    clones = {}
    for n in range(3):
        session.execute(f"World!a{n} := 'cold{n}'")
        session.commit()
        clones[db.store.commit_manager.current_epoch] = db.disk.clone()
    db.checkpoint_replication()
    for n in range(3, 5):
        session.execute(f"World!a{n} := 'warm{n}'")
        session.commit()
        clones[db.store.commit_manager.current_epoch] = db.disk.clone()
    return db, clones


class TestArchiveTiering:
    def test_closed_segments_archive_and_recent_recovery_stays_local(self):
        db, _ = build_tiered_primary()
        store = db.replica_log
        media = ArchiveMedia("log-tape")
        keys = store.archive_closed_segments(media)
        assert keys and store.report()["archived_segments"] == 1
        # the drive has nothing mounted: recent recovery must not care
        assert store.archive_drive.mounted is None
        rebuilt = recover_disk(store)
        assert byte_identical(db.disk, rebuilt)

    def test_pre_archive_point_in_time_needs_the_volume(self):
        db, clones = build_tiered_primary()
        store = db.replica_log
        media = ArchiveMedia("log-tape")
        store.archive_closed_segments(media)
        cold_epoch = sorted(clones)[0]
        with pytest.raises(ArchiveError):
            recover_disk(store, epoch=cold_epoch)
        store.archive_drive.mount(media)
        rebuilt = recover_disk(store, epoch=cold_epoch)
        assert byte_identical(clones[cold_epoch], rebuilt)
        recovered = recover_database(store, epoch=cold_epoch)
        with recovered.login() as session:
            assert session.execute("World!a0") == "cold0"
        store.archive_drive.unmount()
        with pytest.raises(ArchiveError):
            recover_disk(store, epoch=cold_epoch)

    def test_archived_bytes_leave_local_storage(self):
        db, _ = build_tiered_primary()
        store = db.replica_log
        local_before = store.bytes_stored
        store.archive_closed_segments(ArchiveMedia("log-tape"))
        assert store.bytes_stored < local_before
        assert store.records_appended > 0  # the counters keep history
