"""The disaster sweep and its CLI reproducer, as a fast regression."""

import json

from repro.dr.__main__ import main as dr_main
from repro.dr.soak import run_dr_soak


class TestSweep:
    def test_small_sweep_holds_every_invariant(self):
        report = run_dr_soak(
            seed=11, commits=3, writes_per_commit=2,
            stride=1, recovery_stride=8,
        )
        assert report.ok, [f.describe() for f in report.failures]
        assert report.torn_rejected == 0
        assert report.rebuilds_verified > 0
        assert report.pit_recoveries > 0  # a non-latest epoch was rebuilt

    def test_digest_is_json_ready(self):
        report = run_dr_soak(
            seed=11, commits=2, writes_per_commit=1,
            stride=2, recovery_stride=16,
        )
        digest = json.loads(json.dumps(report.digest()))
        assert digest["ok"] is True
        assert digest["seed"] == 11


class TestCli:
    def test_single_kill_replay_exits_zero(self, capsys):
        assert dr_main(["--seed", "11", "--commits", "2", "--kill", "2",
                        "--mode", "recv", "--recovery-stride", "16"]) == 0
        assert "ok: zero committed-transaction loss" in capsys.readouterr().out

    def test_json_digest_output(self, capsys):
        assert dr_main(["--seed", "11", "--commits", "2", "--kill", "1",
                        "--mode", "send", "--recovery-stride", "16",
                        "--json"]) == 0
        digest = json.loads(capsys.readouterr().out.split("\nok:")[0])
        assert digest["ok"] is True
