"""Replication log records: lossless roundtrip, torn-record detection.

The log format's whole contract is in these two properties: a record
decodes back to exactly what was encoded, and a record damaged in *any*
way — truncated, bit-flipped, misframed, or trailed by garbage — raises
:class:`~repro.errors.TornLogRecord` instead of replaying garbage.
"""

import struct
from zlib import crc32

import pytest

from repro.dr import (
    DeltaRecord,
    SnapshotRecord,
    byte_identical,
    decode_record,
    encode_record,
    iter_records,
    snapshot_of,
)
from repro.dr.log import FRAME_OVERHEAD
from repro.errors import TornLogRecord
from repro.storage import DiskGeometry, SimulatedDisk


def make_delta(epoch=3, slot=1):
    return DeltaRecord(
        epoch=epoch,
        root_slot=slot,
        root_image=b"ROOT" * 16,
        writes=((7, b"seven"), (9, b"nine" * 40)),
    )


def make_snapshot(epoch=5):
    return SnapshotRecord(
        epoch=epoch,
        track_count=64,
        track_size=256,
        tracks=((0, b"root-image"), (12, b"payload"), (13, b"")),
    )


class TestRoundtrip:
    def test_delta_roundtrip(self):
        record = make_delta()
        assert decode_record(encode_record(record)) == record

    def test_snapshot_roundtrip(self):
        record = make_snapshot()
        assert decode_record(encode_record(record)) == record

    def test_empty_write_group_roundtrip(self):
        record = DeltaRecord(epoch=1, root_slot=0, root_image=b"R", writes=())
        assert decode_record(encode_record(record)) == record

    def test_iter_records_walks_a_segment(self):
        records = [make_snapshot(1), make_delta(2), make_delta(3)]
        segment = b"".join(encode_record(r) for r in records)
        assert list(iter_records(segment)) == records

    def test_snapshot_of_replays_byte_identical(self):
        # zero-trimmed capture is lossless: the disk pads every write
        disk = SimulatedDisk(DiskGeometry(track_count=32, track_size=128))
        disk.write_track(0, b"root")
        disk.write_track(5, b"data-with-tail\x00\x00")
        disk.write_track(9, b"x" * 128)
        record = decode_record(encode_record(snapshot_of(disk, epoch=7)))
        replica = SimulatedDisk(DiskGeometry(track_count=32, track_size=128))
        for track, image in record.tracks:
            replica.write_track(track, image)
        assert byte_identical(disk, replica)


class TestTornDetection:
    def test_truncated_record_is_torn(self):
        raw = encode_record(make_delta())
        for cut in (1, FRAME_OVERHEAD, len(raw) // 2, len(raw) - 1):
            with pytest.raises(TornLogRecord):
                decode_record(raw[:cut])

    def test_bit_flip_fails_the_crc(self):
        raw = bytearray(encode_record(make_snapshot()))
        raw[10] ^= 0x40  # one flipped bit inside the payload
        with pytest.raises(TornLogRecord):
            decode_record(bytes(raw))

    def test_trailing_bytes_are_torn(self):
        raw = encode_record(make_delta())
        with pytest.raises(TornLogRecord):
            decode_record(raw + b"!")

    def test_implausible_length_is_torn(self):
        raw = encode_record(make_delta())
        inflated = struct.pack("<I", len(raw) * 10) + raw[4:]
        with pytest.raises(TornLogRecord):
            decode_record(inflated)

    def test_zero_length_frame_is_torn(self):
        with pytest.raises(TornLogRecord):
            decode_record(struct.pack("<II", 0, 0))

    def test_valid_frame_with_malformed_payload_is_torn(self):
        # kind byte 99 is no record type: framing passes, payload fails
        payload = bytes([99]) + b"junk"
        framed = (
            struct.pack("<I", len(payload))
            + payload
            + struct.pack("<I", crc32(payload))
        )
        with pytest.raises(TornLogRecord):
            decode_record(framed)

    def test_torn_tail_stops_segment_iteration(self):
        good = encode_record(make_snapshot(1))
        segment = good + encode_record(make_delta(2))[:-3]
        walked = []
        with pytest.raises(TornLogRecord):
            for record in iter_records(segment):
                walked.append(record)
        assert len(walked) == 1  # the intact prefix still decodes
