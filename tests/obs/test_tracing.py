"""Tracer: NULL_SPAN when disabled, spans + request IDs when enabled."""

import threading

from repro.obs import NULL_SPAN, MetricsRegistry, Tracer


def test_disabled_tracer_returns_the_shared_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything", key="value")
    assert span is NULL_SPAN
    with span as inner:
        inner.note(more="meta")  # must be a silent no-op
    assert tracer.recorded == 0
    assert tracer.recent() == []


def test_enabled_tracer_records_span_with_timing_and_meta():
    tracer = Tracer(enabled=True)
    with tracer.span("opal.execute", chars=12) as span:
        span.note(extra=True)
    assert tracer.recorded == 1
    [record] = tracer.recent()
    assert record["name"] == "opal.execute"
    assert record["ms"] >= 0.0
    assert record["meta"] == {"chars": 12, "extra": True}


def test_span_captures_error_class_on_exception():
    tracer = Tracer(enabled=True)
    try:
        with tracer.span("txn.commit"):
            raise ValueError("boom")
    except ValueError:
        pass
    [record] = tracer.recent()
    assert record["meta"]["error"] == "ValueError"


def test_spans_feed_registry_histograms():
    registry = MetricsRegistry()
    tracer = Tracer(registry, enabled=True)
    with tracer.span("storage.persist"):
        pass
    histograms = registry.snapshot()["histograms"]
    assert histograms["span.storage.persist.ms"]["count"] == 1


def test_ring_buffer_is_bounded_but_recorded_total_is_not():
    tracer = Tracer(enabled=True, max_spans=4)
    for index in range(10):
        with tracer.span(f"s{index}"):
            pass
    assert tracer.recorded == 10
    names = [record["name"] for record in tracer.recent()]
    assert names == ["s6", "s7", "s8", "s9"]


def test_request_ids_are_unique_across_threads():
    tracer = Tracer(enabled=False)
    minted: list[int] = []
    lock = threading.Lock()

    def mint():
        local = [tracer.next_request_id() for _ in range(500)]
        with lock:
            minted.extend(local)

    threads = [threading.Thread(target=mint) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(minted) == len(set(minted)) == 3_000


def test_current_request_is_thread_local():
    tracer = Tracer(enabled=True)
    tracer.current_request = 41
    seen = {}

    def probe():
        seen["other_thread"] = tracer.current_request
        tracer.current_request = 99

    thread = threading.Thread(target=probe)
    thread.start()
    thread.join()
    assert seen["other_thread"] is None  # never leaks across threads
    assert tracer.current_request == 41

    with tracer.span("tagged") as span:
        assert span.request_id == 41


def test_event_records_a_pre_measured_duration():
    tracer = Tracer(enabled=True)
    tracer.event("query.select", 12.5, candidates=3)
    [record] = tracer.recent()
    assert record["ms"] == 12.5
    assert record["meta"] == {"candidates": 3}
    disabled = Tracer(enabled=False)
    disabled.event("query.select", 1.0)
    assert disabled.recorded == 0
