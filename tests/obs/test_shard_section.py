"""The ``shard`` observability section: schema-pinned and rendered.

The sharded cluster publishes ``shard.*`` counters/gauges plus a
structured ``shard`` section; its shape is pinned by the optional
``shard`` property in ``docs/observability_schema.json`` and the text
dashboard renders it next to the single-store sections.
"""

import json
import pathlib

from repro.obs import validate
from repro.shard import ShardedGemStone
from repro.shard.partition import shard_of
from repro.tools.dashboard import render_snapshot

SCHEMA_PATH = (
    pathlib.Path(__file__).parent.parent.parent
    / "docs"
    / "observability_schema.json"
)


def worked_cluster():
    cluster = ShardedGemStone(shard_count=2)
    session = cluster.login()
    a = next(k for k in (f"w{i}" for i in range(99))
             if shard_of(k, 2) == 0)
    b = next(k for k in (f"w{i}" for i in range(99))
             if shard_of(k, 2) == 1)
    session.execute(f"World!{a} := 1")
    session.execute(f"World!{b} := 2")
    session.commit()  # cross-shard 2PC
    session.execute(f"World!{a} := 3")
    session.commit()  # single-shard fast path
    return cluster


class TestShardSection:
    def test_cluster_snapshot_matches_the_pinned_schema(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        shard_schema = schema["properties"]["shard"]
        snapshot = worked_cluster().observability()
        validate(snapshot["shard"], shard_schema)

    def test_shard_is_optional_at_the_top_level(self):
        # single-store snapshots must keep validating without it
        schema = json.loads(SCHEMA_PATH.read_text())
        assert "shard" in schema["properties"]
        assert "shard" not in schema["required"]

    def test_counters_and_gauges_are_published(self):
        snapshot = worked_cluster().observability()
        counters = snapshot["counters"]["counters"]
        gauges = snapshot["counters"]["gauges"]
        assert counters["shard.single_shard_commits"] == 1
        assert counters["shard.cross_shard_commits"] == 1
        assert gauges["shard.in_doubt"] == 0
        assert gauges["shard.decision_log_pending"] == 0
        assert "shard.0.commits" in gauges

    def test_dashboard_renders_the_shard_section(self):
        text = render_snapshot(worked_cluster().observability())
        assert "shards (2 workers, generation 0)" in text
        assert "single-shard 1" in text
        assert "cross-shard 1" in text
        assert "coordinator: decided 1 commit" in text
        assert "shard 0:" in text
        assert "shard 1:" in text
        assert "[DOWN]" not in text

    def test_dashboard_marks_dead_members(self):
        cluster = worked_cluster()
        cluster.workers[1].alive = False
        cluster.coordinator.alive = False
        text = render_snapshot(cluster.observability())
        assert text.count("[DOWN]") == 2
