"""End-to-end observability: one mixed workload, every section populated.

This is the acceptance test for the unified telemetry layer: a single
``GemStone.observability()`` call must report commit/abort counts, cache
hit rates, admission-control and quota counters, and the N slowest
queries with their captured plans — and the snapshot must match the
checked-in schema (``docs/observability_schema.json``), which is the
same contract the CI smoke step enforces.
"""

import json
import pathlib

import pytest

from repro import GemStone
from repro.errors import TransactionConflict
from repro.executor.executor import HostConnection
from repro.govern import AdmissionController, BudgetSpec, QuotaSpec
from repro.obs import validate
from repro.tools.dashboard import render_dashboard

SCHEMA_PATH = (
    pathlib.Path(__file__).parent.parent.parent
    / "docs"
    / "observability_schema.json"
)


@pytest.fixture(scope="module")
def worked_database():
    """A database that has seen a bit of everything."""
    db = GemStone.create()
    db.budget_spec = BudgetSpec.default()
    db.quota_spec = QuotaSpec.default()
    db.obs.enable_tracing()

    # -- remote traffic through an Executor, with admission control -----
    admission = AdmissionController(max_sessions=4)
    conn = HostConnection(db, admission=admission)
    conn.login("DataCurator", "swordfish")
    conn.execute("World!emps := Set new")
    conn.commit()
    conn.logout()

    # -- embedded sessions: schema, data, declarative queries ------------
    session = db.login()
    session.define_class("Emp", instvars=("name", "salary"))
    for index in range(12):
        session.execute(
            "World!emps add: e",
            {"e": session.new("Emp", name=f"e{index}", salary=index * 10)},
        )
    session.commit()
    session.execute("(World!emps) reject: [:e | e!salary > 50]")
    # the same compiled select block three times over: the second and
    # third runs hit the translation and plan memos
    session.execute(
        "1 to: 3 do: [:i | (World!emps) select: [:e | e!salary > 50]]"
    )

    # -- a read-modify-write conflict for the abort counters --------------
    session.execute("World!counter := 0")
    session.commit()
    loser = db.login()
    loser.execute("World!counter := (World!counter) + 1")
    winner = db.login()
    winner.execute("World!counter := (World!counter) + 1")
    winner.commit()
    with pytest.raises(TransactionConflict):
        loser.commit()
    loser.close()
    winner.close()
    session.close()
    return db


def test_snapshot_matches_checked_in_schema(worked_database):
    schema = json.loads(SCHEMA_PATH.read_text())
    snapshot = worked_database.observability()
    validate(snapshot, schema)
    # the snapshot must survive a JSON round trip unchanged in shape
    validate(json.loads(json.dumps(snapshot)), schema)


def test_transactions_section_reports_commits_and_aborts(worked_database):
    txn = worked_database.observability()["transactions"]
    assert txn["commits"] >= 3
    assert txn["aborts"] >= 1
    assert txn["validations"] >= txn["commits"]
    assert 0.0 < txn["abort_rate"] < 1.0


def test_cache_section_reports_session_hit_rates(worked_database):
    caches = worked_database.observability()["caches"]["sessions"]
    assert caches["method_cache"]["hits"] > 0
    assert 0.0 < caches["method_cache"]["hit_rate"] <= 1.0
    # the repeated select hit both the translation and the plan memo
    assert caches["translation_cache"]["hits"] > 0
    assert caches["plan_cache"]["hits"] > 0


def test_governance_section_reports_admission_and_quota(worked_database):
    gov = worked_database.observability()["governance"]
    assert gov["admission"]["controllers"] == 1
    assert gov["admission"]["admitted"] > 0
    assert gov["admission"]["breaker_states"] == ["closed"]
    assert gov["budgets"]["queries"] > 0  # sessions carried real budgets
    assert gov["budgets"]["kills"] == 0
    assert gov["quotas"]["rejections"] == 0
    assert gov["sessions"]["opened"] == 4
    assert gov["sessions"]["closed"] == 4


def test_slow_query_log_captures_source_plan_and_candidates(worked_database):
    slow = worked_database.observability()["slow_queries"]
    assert slow["total_queries"] >= 3
    entries = slow["slowest"]
    assert entries, "the mixed workload must leave slow-log entries"
    sources = {entry["source"] for entry in entries}
    assert "[:e | e!salary > 50]" in sources
    for entry in entries:
        assert entry["candidates"] > 0
        assert any("BindScan" in step or "Index" in step
                   for step in entry["plan"])
    cache_states = {entry["plan_cache"] for entry in entries}
    assert "memo" in cache_states  # the repeated select reused its plan


def test_tracing_section_carries_request_ids_from_the_executor(
    worked_database,
):
    tracing = worked_database.observability(spans=200)["tracing"]
    assert tracing["enabled"]
    assert tracing["recorded"] > 0
    by_name = {}
    for span in tracing["recent_spans"]:
        by_name.setdefault(span["name"], []).append(span)
    for expected in ("executor.request", "opal.execute", "txn.commit",
                     "storage.persist", "query.select"):
        assert expected in by_name, f"no {expected} span recorded"
    assert any(
        span["request_id"] is not None
        for span in by_name["executor.request"]
    )


def test_counters_absorb_layer_native_totals(worked_database):
    counters = worked_database.observability()["counters"]["counters"]
    assert counters["txn.commits"] >= 3
    assert counters["txn.aborts"] >= 1
    assert counters["executor.requests"] >= 4
    assert counters["query.declarative"] >= 3


def test_dashboard_renders_every_section(worked_database):
    text = render_dashboard(worked_database)
    for fragment in (
        "transactions", "caches", "governance", "slow queries",
        "tracing", "[:e | e!salary > 50]", "hit-rate",
    ):
        assert fragment in text


def test_bench_harness_hook_reuses_snapshot_names(worked_database):
    from repro.bench import observability_metrics

    metrics = observability_metrics(worked_database)
    snapshot = worked_database.observability()
    for section in ("transactions", "caches", "governance", "counters",
                    "slow_queries"):
        assert set(metrics[section].keys()) == set(snapshot[section].keys())


def test_two_databases_do_not_share_metrics():
    first = GemStone.create()
    second = GemStone.create()
    session = first.login()
    session.execute("World!x := 1")
    session.commit()
    session.close()
    assert first.observability()["transactions"]["commits"] == 1
    assert second.observability()["transactions"]["commits"] == 0
    assert second.observability()["governance"]["sessions"]["opened"] == 0
    assert second.obs.registry.count_of("txn.commits") == 0
