"""The zero-dependency schema validator used to pin the snapshot shape."""

import pytest

from repro.obs import SchemaError, validate


def test_accepts_matching_object():
    schema = {
        "type": "object",
        "required": ["a"],
        "properties": {"a": {"type": "integer"}, "b": {"type": "string"}},
    }
    validate({"a": 1, "b": "x"}, schema)
    validate({"a": 1}, schema)  # b is optional


def test_missing_required_key_names_the_path():
    schema = {
        "type": "object",
        "properties": {"outer": {"type": "object", "required": ["inner"]}},
    }
    with pytest.raises(SchemaError, match=r"\$\.outer.*inner"):
        validate({"outer": {}}, schema)


def test_wrong_type_rejected():
    with pytest.raises(SchemaError):
        validate("nope", {"type": "integer"})


def test_bool_is_not_a_number_or_integer():
    with pytest.raises(SchemaError):
        validate(True, {"type": "integer"})
    with pytest.raises(SchemaError):
        validate(False, {"type": "number"})
    validate(True, {"type": "boolean"})


def test_integer_is_a_number():
    validate(3, {"type": "number"})


def test_type_union_and_null():
    schema = {"type": ["integer", "null"]}
    validate(None, schema)
    validate(7, schema)
    with pytest.raises(SchemaError):
        validate("x", schema)


def test_array_items_validated_with_index_in_path():
    schema = {"type": "array", "items": {"type": "string"}}
    validate(["a", "b"], schema)
    with pytest.raises(SchemaError, match=r"\$\[1\]"):
        validate(["a", 2], schema)


def test_unknown_schema_type_is_an_error():
    with pytest.raises(SchemaError):
        validate(1, {"type": "decimal"})


def test_unknown_schema_keywords_are_ignored():
    validate(5, {"type": "integer", "minimum": 99, "format": "weird"})
