"""The ``net`` observability section: schema-pinned and rendered.

Socket link ends feed the ``net.*`` counters and the ``net.rtt_ms``
histogram; once real traffic has moved, the snapshot grows an optional
``net`` section whose shape is pinned by ``docs/observability_schema
.json`` — and all-memory deployments must keep the section absent.
"""

import json
import pathlib

from repro.obs import Observability, validate
from repro.shard.procs import ProcCluster
from repro.tools.dashboard import render_snapshot

SCHEMA_PATH = (
    pathlib.Path(__file__).parent.parent.parent
    / "docs"
    / "observability_schema.json"
)


def worked_cluster() -> ProcCluster:
    cluster = ProcCluster(shard_count=2)
    session = cluster.login()
    session.execute("World!netobs := 1")
    session.commit()
    return cluster


class TestNetSection:
    def test_section_appears_after_tcp_traffic_and_matches_schema(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        cluster = worked_cluster()
        try:
            snapshot = cluster.obs.snapshot()
        finally:
            cluster.close()
        net = snapshot["net"]
        validate(net, schema["properties"]["net"])
        # the cluster dialed one socket per worker per channel at least
        assert net["connections"] >= 2
        assert net["frames_sent"] > 0
        assert net["frames_received"] > 0
        assert net["bytes_sent"] > net["frames_sent"]  # framing overhead
        assert net["rtt_ms"]["count"] > 0

    def test_net_is_optional_at_the_top_level(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        assert "net" in schema["properties"]
        assert "net" not in schema["required"]
        # an all-memory snapshot keeps the section absent
        assert "net" not in Observability().snapshot()

    def test_dashboard_renders_the_network_section(self):
        cluster = worked_cluster()
        try:
            text = render_snapshot(cluster.obs.snapshot())
        finally:
            cluster.close()
        assert "network (" in text
        assert "reconnects" in text
        assert "frames" in text
