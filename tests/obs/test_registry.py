"""MetricsRegistry: counters, gauges, histograms, thread-safety, scope."""

import threading

from repro.obs import MetricsRegistry


def test_counter_get_or_create_and_increment():
    registry = MetricsRegistry()
    counter = registry.counter("txn.commits")
    assert counter is registry.counter("txn.commits")
    counter.inc()
    counter.inc(4)
    assert registry.count_of("txn.commits") == 5
    assert registry.count_of("never.touched") == 0


def test_convenience_inc_creates_on_first_use():
    registry = MetricsRegistry()
    registry.inc("executor.requests")
    registry.inc("executor.requests", 2)
    assert registry.count_of("executor.requests") == 3


def test_gauge_last_value_wins():
    registry = MetricsRegistry()
    registry.set_gauge("sessions.live", 3)
    registry.set_gauge("sessions.live", 1)
    assert registry.snapshot()["gauges"]["sessions.live"] == 1


def test_histogram_summary():
    registry = MetricsRegistry()
    for value in (2.0, 8.0, 5.0):
        registry.observe("span.txn.commit.ms", value)
    summary = registry.snapshot()["histograms"]["span.txn.commit.ms"]
    assert summary["count"] == 3
    assert summary["sum"] == 15.0
    assert summary["min"] == 2.0
    assert summary["max"] == 8.0
    assert summary["mean"] == 5.0


def test_empty_histogram_mean_is_zero():
    registry = MetricsRegistry()
    registry.histogram("untouched")
    assert registry.snapshot()["histograms"]["untouched"]["mean"] == 0.0


def test_registries_are_instance_scoped():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("shared.name", 7)
    assert b.count_of("shared.name") == 0


def test_counter_increments_survive_thread_contention():
    registry = MetricsRegistry()
    counter = registry.counter("contended")
    per_thread, thread_count = 2_000, 8

    def hammer():
        for _ in range(per_thread):
            counter.inc()

    threads = [threading.Thread(target=hammer) for _ in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.count_of("contended") == per_thread * thread_count


def test_reset_drops_everything():
    registry = MetricsRegistry()
    registry.inc("a")
    registry.set_gauge("b", 1)
    registry.observe("c", 1.0)
    registry.reset()
    snapshot = registry.snapshot()
    assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}
