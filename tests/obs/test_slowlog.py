"""SlowQueryLog retention and the OPAL block unparser."""

import pytest

from repro.core import MemoryObjectManager
from repro.obs import SlowQueryLog, describe_plan, render_block
from repro.opal import OpalEngine


def entry(ms, tag):
    return {"elapsed_ms": ms, "tag": tag}


def test_keeps_only_the_slowest_capacity_entries():
    log = SlowQueryLog(capacity=3)
    for ms in (5.0, 1.0, 9.0, 3.0, 7.0):
        log.record(entry(ms, ms))
    slowest = [e["tag"] for e in log.slowest()]
    assert slowest == [9.0, 7.0, 5.0]
    assert log.total_queries == 5
    assert len(log) == 3


def test_threshold_counts_but_does_not_keep():
    log = SlowQueryLog(capacity=8, threshold_ms=2.0)
    log.record(entry(1.0, "fast"))
    log.record(entry(3.0, "slow"))
    assert log.total_queries == 2
    assert [e["tag"] for e in log.slowest()] == ["slow"]


def test_slowest_n_limits_and_orders():
    log = SlowQueryLog(capacity=10)
    for ms in range(6):
        log.record(entry(float(ms), ms))
    assert [e["tag"] for e in log.slowest(2)] == [5, 4]


def test_ties_are_kept_in_arrival_order():
    log = SlowQueryLog(capacity=4)
    log.record(entry(1.0, "first"))
    log.record(entry(1.0, "second"))
    tags = [e["tag"] for e in log.slowest()]
    assert set(tags) == {"first", "second"}


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        SlowQueryLog(capacity=0)


def compiled_block(source):
    """Compile one OPAL block literal and return its compiled form."""
    engine = OpalEngine(MemoryObjectManager())
    closure = engine.execute(source)
    return closure.compiled


@pytest.mark.parametrize(
    "source, rendered",
    [
        ("[:e | e!salary > 40]", "[:e | e!salary > 40]"),
        ("[:e | (e!age >= 21) & (e!age <= 65)]",
         "[:e | (e!age >= 21) & (e!age <= 65)]"),
        ("[:e | e!name = 'Joe''s']", "[:e | e!name = 'Joe''s']"),
        ("[:e | (e!tags) includes: 'vip']", "[:e | e!tags includes: 'vip']"),
        ("[:e | (e!salary@3) > 10]", "[:e | e!salary@3 > 10]"),
        ("[:e | (e!done) not]", "[:e | e!done not]"),
    ],
)
def test_render_block_reconstructs_select_source(source, rendered):
    block = compiled_block(source)
    assert render_block(block.ast) == rendered


def test_rendered_block_recompiles_to_the_same_rendering():
    block = compiled_block("[:e | (e!dept = 'R+D') & (e!salary > 10)]")
    rendered = render_block(block.ast)
    again = compiled_block(rendered)
    assert render_block(again.ast) == rendered


def test_render_block_degrades_to_repr_off_ast():
    assert render_block(42) == "42"


def test_describe_plan_walks_the_operator_chain():
    class Leaf:
        child = None

        def describe(self):
            return "Unit"

    class Root:
        def __init__(self, child):
            self.child = child

        def describe(self):
            return "Filter x > 1"

    assert describe_plan(Root(Leaf())) == ["Filter x > 1", "Unit"]
