"""Tests for the OPAL lexer and parser."""

import pytest

from repro.core import Char, Symbol
from repro.errors import LexError, ParseError
from repro.opal import (
    Assign,
    BlockNode,
    Cascade,
    Lexer,
    Literal,
    MessageSend,
    PathAssign,
    PathFetch,
    Return,
    TokenType,
    VarRef,
    parse_expression_code,
    parse_method,
)


def lex(source):
    return [(t.type, t.value) for t in Lexer(source).tokens()[:-1]]


class TestLexer:
    def test_identifiers_and_keywords(self):
        assert lex("foo at: x") == [
            (TokenType.IDENTIFIER, "foo"),
            (TokenType.KEYWORD, "at:"),
            (TokenType.IDENTIFIER, "x"),
        ]

    def test_numbers(self):
        assert lex("42 3.14 16rFF 1.5e3") == [
            (TokenType.INTEGER, 42),
            (TokenType.FLOAT, 3.14),
            (TokenType.INTEGER, 255),
            (TokenType.FLOAT, 1500.0),
        ]

    def test_negative_literal_vs_subtraction(self):
        assert lex("-5") == [(TokenType.INTEGER, -5)]
        assert lex("x-5") == [
            (TokenType.IDENTIFIER, "x"),
            (TokenType.BINARY, "-"),
            (TokenType.INTEGER, 5),
        ]
        assert lex("3 - 2")[1] == (TokenType.BINARY, "-")

    def test_strings_with_escaped_quotes(self):
        assert lex("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            lex("'oops")

    def test_characters(self):
        assert lex("$a $ ") == [
            (TokenType.CHARACTER, "a"),
            (TokenType.CHARACTER, " "),
        ]

    def test_symbols(self):
        assert lex("#foo #at:put: #+ #'with space'") == [
            (TokenType.SYMBOL, "foo"),
            (TokenType.SYMBOL, "at:put:"),
            (TokenType.SYMBOL, "+"),
            (TokenType.SYMBOL, "with space"),
        ]

    def test_comments_are_whitespace(self):
        assert lex('1 "a comment" + 2') == [
            (TokenType.INTEGER, 1),
            (TokenType.BINARY, "+"),
            (TokenType.INTEGER, 2),
        ]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            lex('"never ends')

    def test_assignment_vs_colon(self):
        assert lex("x := 1") == [
            (TokenType.IDENTIFIER, "x"),
            (TokenType.ASSIGN, ":="),
            (TokenType.INTEGER, 1),
        ]

    def test_path_tokens(self):
        assert lex("x!a@7") == [
            (TokenType.IDENTIFIER, "x"),
            (TokenType.BANG, "!"),
            (TokenType.IDENTIFIER, "a"),
            (TokenType.AT, "@"),
            (TokenType.INTEGER, 7),
        ]

    def test_binary_selectors(self):
        assert lex("a <= b ~= c // d") == [
            (TokenType.IDENTIFIER, "a"), (TokenType.BINARY, "<="),
            (TokenType.IDENTIFIER, "b"), (TokenType.BINARY, "~="),
            (TokenType.IDENTIFIER, "c"), (TokenType.BINARY, "//"),
            (TokenType.IDENTIFIER, "d"),
        ]

    def test_block_tokens(self):
        kinds = [t for t, _ in lex("[:x | x]")]
        assert kinds == [
            TokenType.LBRACKET, TokenType.COLON, TokenType.IDENTIFIER,
            TokenType.PIPE, TokenType.IDENTIFIER, TokenType.RBRACKET,
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            lex("{}")


def first_statement(source):
    return parse_expression_code(source).statements[0]


class TestParser:
    def test_unary_chain(self):
        node = first_statement("x foo bar")
        assert isinstance(node, MessageSend)
        assert node.selector == "bar"
        assert node.receiver.selector == "foo"

    def test_binary_left_associative(self):
        node = first_statement("1 + 2 * 3")
        assert node.selector == "*"
        assert node.receiver.selector == "+"

    def test_unary_binds_tighter_than_binary(self):
        node = first_statement("2 + 3 squared")
        assert node.selector == "+"
        assert node.args[0].selector == "squared"

    def test_keyword_lowest_precedence(self):
        node = first_statement("d at: 1 + 2 put: x foo")
        assert node.selector == "at:put:"
        assert node.args[0].selector == "+"
        assert node.args[1].selector == "foo"

    def test_parentheses(self):
        node = first_statement("(d at: 1) foo")
        assert node.selector == "foo"
        assert node.receiver.selector == "at:"

    def test_assignment(self):
        node = first_statement("x := 3 + 4")
        assert isinstance(node, Assign)
        assert node.name == "x"

    def test_assignment_to_reserved_rejected(self):
        with pytest.raises(ParseError):
            first_statement("self := 3")

    def test_cascade(self):
        node = first_statement("s add: 1; add: 2; size")
        assert isinstance(node, Cascade)
        assert node.first.selector == "add:"
        assert [sel for sel, _ in node.rest] == ["add:", "size"]

    def test_cascade_needs_message(self):
        with pytest.raises(ParseError):
            first_statement("3; foo")

    def test_block(self):
        node = first_statement("[:x :y | | t | t := x. t + y]")
        assert isinstance(node, BlockNode)
        assert node.params == ("x", "y")
        assert node.temps == ("t",)
        assert len(node.body) == 2

    def test_block_non_local_return(self):
        node = first_statement("[:x | ^x]")
        assert isinstance(node.body[0], Return)

    def test_path_fetch(self):
        node = first_statement("World!'Acme Corp'!president@7!city")
        assert isinstance(node, PathFetch)
        names = [s.name for s in node.steps]
        assert names == ["Acme Corp", "president", "city"]
        assert isinstance(node.steps[1].time, Literal)
        assert node.steps[1].time.value == 7

    def test_path_after_message(self):
        node = first_statement("x foo!bar")
        assert isinstance(node, PathFetch)
        assert node.base.selector == "foo"

    def test_path_assignment(self):
        node = first_statement("x!a!b := 5")
        assert isinstance(node, PathAssign)
        assert [s.name for s in node.steps] == ["a", "b"]

    def test_path_time_expression(self):
        node = first_statement("x!a@(t - 1)")
        assert isinstance(node.steps[0].time, MessageSend)

    def test_literal_arrays(self):
        node = first_statement("#(1 2.5 'x' $c #sym name (3 4))")
        assert node.value == (
            1, 2.5, "x", Char("c"), Symbol("sym"), Symbol("name"), (3, 4),
        )

    def test_pseudo_variables_are_literals(self):
        assert first_statement("nil").value is None
        assert first_statement("true").value is True
        assert first_statement("false").value is False

    def test_statement_periods(self):
        code = parse_expression_code("1. 2. 3")
        assert len(code.statements) == 3

    def test_temps_anywhere_in_code(self):
        code = parse_expression_code("| a | a := 1. | b | b := a. b")
        assert code.temps == ("a", "b")
        assert len(code.statements) == 3

    def test_method_unary_pattern(self):
        method = parse_method("salary ^salary")
        assert method.selector == "salary"
        assert method.params == ()

    def test_method_binary_pattern(self):
        method = parse_method("+ other ^other")
        assert method.selector == "+"
        assert method.params == ("other",)

    def test_method_keyword_pattern(self):
        method = parse_method("at: k put: v ^v")
        assert method.selector == "at:put:"
        assert method.params == ("k", "v")

    def test_method_with_temps(self):
        method = parse_method("double | t | t := 2. ^t * 2")
        assert method.body.temps == ("t",)

    def test_super_flag(self):
        method = parse_method("foo ^super foo")
        send = method.body.statements[0].value
        assert send.to_super

    @pytest.mark.parametrize("bad", ["x := ", "(1 + 2", "[:x", "1 foo:", "x!"])
    def test_malformed_programs(self, bad):
        with pytest.raises(ParseError):
            parse_expression_code(bad)
