"""Tests for the OPAL interpreter and kernel class library."""

import pytest

from repro.core import Char, MemoryObjectManager, Symbol
from repro.errors import (
    CompileError,
    DoesNotUnderstand,
    OpalRuntimeError,
)
from repro.opal import OpalEngine


@pytest.fixture
def engine():
    return OpalEngine(MemoryObjectManager())


def run(engine, source, **bindings):
    return engine.execute(source, bindings or None)


class TestArithmetic:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("3 + 4", 7),
            ("3 + 4 * 2", 14),          # strict left-to-right, no precedence
            ("3 + (4 * 2)", 11),
            ("10 - 3 - 2", 5),
            ("7 // 2", 3),
            ("7 \\\\ 2", 1),
            ("6 / 3", 2),
            ("7 / 2", 3.5),
            ("-3 abs", 3),
            ("3 negated", -3),
            ("4 squared", 16),
            ("2 max: 5", 5),
            ("2 min: 5", 2),
            ("3 between: 1 and: 5", True),
            ("10 gcd: 4", 2),
            ("5 even", False),
            ("5 odd", True),
            ("3.7 truncated", 3),
            ("3.7 rounded", 4),
            ("3 asFloat", 3.0),
        ],
    )
    def test_expression(self, engine, source, expected):
        assert run(engine, source) == expected

    def test_division_by_zero(self, engine):
        with pytest.raises(OpalRuntimeError):
            run(engine, "1 / 0")

    def test_comparisons(self, engine):
        assert run(engine, "3 < 4") is True
        assert run(engine, "3 >= 4") is False
        assert run(engine, "3 = 3") is True
        assert run(engine, "3 ~= 4") is True

    def test_type_errors(self, engine):
        with pytest.raises(OpalRuntimeError):
            run(engine, "3 + 'x'")


class TestControlFlow:
    def test_if_true_if_false(self, engine):
        assert run(engine, "(3 > 2) ifTrue: [1] ifFalse: [2]") == 1
        assert run(engine, "(3 < 2) ifTrue: [1] ifFalse: [2]") == 2
        assert run(engine, "(3 < 2) ifTrue: [1]") is None

    def test_and_or_short_circuit(self, engine):
        # the second block must not run when short-circuited
        assert run(engine, "| hit | hit := false. "
                           "false and: [hit := true. true]. hit") is False
        assert run(engine, "| hit | hit := false. "
                           "true or: [hit := true. true]. hit") is False

    def test_boolean_operators(self, engine):
        assert run(engine, "true & false") is False
        assert run(engine, "true | false") is True
        assert run(engine, "true xor: true") is False
        assert run(engine, "false not") is True

    def test_non_boolean_condition_rejected(self, engine):
        with pytest.raises(DoesNotUnderstand):
            run(engine, "3 ifTrue: [1]")  # Integer has no ifTrue:
        with pytest.raises(OpalRuntimeError):
            run(engine, "[3] whileTrue: [1]")

    def test_while_true(self, engine):
        assert run(engine, "| i | i := 0. [i < 5] whileTrue: [i := i + 1]. i") == 5

    def test_while_false(self, engine):
        assert run(engine, "| i | i := 0. [i >= 5] whileFalse: [i := i + 1]. i") == 5

    def test_to_do(self, engine):
        assert run(engine, "| n | n := 0. 1 to: 10 do: [:i | n := n + i]. n") == 55

    def test_to_by_do_descending(self, engine):
        assert run(engine, "| n | n := 0. 10 to: 1 by: -2 do: [:i | n := n + i]. n") == 30

    def test_times_repeat(self, engine):
        assert run(engine, "| n | n := 0. 3 timesRepeat: [n := n + 1]. n") == 3

    def test_if_nil(self, engine):
        assert run(engine, "nil ifNil: [42]") == 42
        assert run(engine, "3 ifNil: [42]") == 3
        assert run(engine, "3 ifNotNil: [:x | x + 1]") == 4
        assert run(engine, "nil ifNotNil: [:x | x + 1]") is None


class TestBlocks:
    def test_value(self, engine):
        assert run(engine, "[42] value") == 42
        assert run(engine, "[:x | x * 2] value: 21") == 42
        assert run(engine, "[:a :b | a + b] value: 1 value: 2") == 3

    def test_wrong_arity(self, engine):
        with pytest.raises(OpalRuntimeError):
            run(engine, "[:x | x] value")

    def test_closure_captures_temps(self, engine):
        assert run(engine, "| n b | n := 10. b := [n + 1]. n := 20. b value") == 21

    def test_closure_writes_outer(self, engine):
        assert run(engine, "| n | n := 0. [n := 5] value. n") == 5

    def test_nested_closures(self, engine):
        source = "| make | make := [:x | [:y | x + y]]. (make value: 10) value: 5"
        assert run(engine, source) == 15

    def test_num_args(self, engine):
        assert run(engine, "[:x :y | x] numArgs") == 2


class TestClassesAndMethods:
    def define_employee(self, engine):
        run(engine, """
            Object subclass: #Employee instVarNames: #(name salary).
            Employee compile: 'name ^name'.
            Employee compile: 'name: aName name := aName'.
            Employee compile: 'salary ^salary'.
            Employee compile: 'salary: s salary := s'.
            Employee compile: 'raise: amount salary := salary + amount. ^salary'
        """)

    def test_define_and_use(self, engine):
        self.define_employee(engine)
        result = run(engine, "| e | e := Employee new. e name: 'Ellen'. e name")
        assert result == "Ellen"

    def test_method_with_argument(self, engine):
        self.define_employee(engine)
        assert run(engine, "| e | e := Employee new. e salary: 10. e raise: 5") == 15

    def test_method_without_return_answers_self(self, engine):
        self.define_employee(engine)
        result = run(engine, "| e | e := Employee new. e name: 'x'")
        assert engine.store.class_of(result).name == "Employee"

    def test_uninitialized_instvar_reads_nil(self, engine):
        self.define_employee(engine)
        assert run(engine, "Employee new name") is None

    def test_subclass_inherits_and_overrides(self, engine):
        self.define_employee(engine)
        run(engine, """
            Employee subclass: #Manager instVarNames: #(dept).
            Manager compile: 'salary ^salary * 2'
        """)
        assert run(engine, "| m | m := Manager new. m salary: 10. m salary") == 20
        assert run(engine, "| e | e := Employee new. e salary: 10. e salary") == 10

    def test_super_send(self, engine):
        self.define_employee(engine)
        run(engine, """
            Employee subclass: #Manager instVarNames: #().
            Manager compile: 'salary ^super salary + 1000'
        """)
        assert run(engine, "| m | m := Manager new. m salary: 10. m salary") == 1010

    def test_non_local_return_from_block(self, engine):
        self.define_employee(engine)
        run(engine, "Employee compile: "
                    "'band (salary > 100) ifTrue: [^#high]. ^#low'")
        assert run(engine, "| e | e := Employee new. e salary: 500. e band") == Symbol("high")
        assert run(engine, "| e | e := Employee new. e salary: 5. e band") == Symbol("low")

    def test_does_not_understand(self, engine):
        with pytest.raises(DoesNotUnderstand):
            run(engine, "3 frobnicate")

    def test_class_messages(self, engine):
        self.define_employee(engine)
        assert run(engine, "Employee name") == "Employee"
        assert run(engine, "Employee superclass name") == "Object"

    def test_is_kind_of(self, engine):
        self.define_employee(engine)
        assert run(engine, "Employee new isKindOf: Object") is True
        assert run(engine, "3 isKindOf: Magnitude") is True
        assert run(engine, "3 isMemberOf: Integer") is True

    def test_undeclared_variable_assignment_rejected(self, engine):
        with pytest.raises(CompileError):
            run(engine, "undeclared := 3")

    def test_undefined_global(self, engine):
        with pytest.raises(OpalRuntimeError):
            run(engine, "NoSuchGlobal foo")


class TestStringsAndSymbols:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("'abc' size", 3),
            ("'abc' , 'def'", "abcdef"),
            ("'abc' asUppercase", "ABC"),
            ("'ABC' asLowercase", "abc"),
            ("'hello' copyFrom: 2 to: 4", "ell"),
            ("'hello' reversed", "olleh"),
            ("'abc' < 'abd'", True),
            ("'42' asNumber", 42),
            ("'3.5' asNumber", 3.5),
            ("'hello world' includesString: 'lo w'", True),
            ("'hello' startsWith: 'he'", True),
            ("'hello' indexOf: $l", 3),
            ("'' isEmpty", True),
            ("#foo asString", "foo"),
            ("'foo' asSymbol printString", "#foo"),
        ],
    )
    def test_strings(self, engine, source, expected):
        assert run(engine, source) == expected

    def test_string_at_returns_char(self, engine):
        assert run(engine, "'abc' at: 2") == Char("b")

    def test_char_protocol(self, engine):
        assert run(engine, "$a asInteger") == 97
        assert run(engine, "$a isVowel") is True
        assert run(engine, "$a < $b") is True


class TestCollections:
    def test_set_deduplicates(self, engine):
        assert run(engine, "| s | s := Set new. s add: 1; add: 1; add: 2. s size") == 2

    def test_bag_keeps_duplicates(self, engine):
        assert run(engine, "| b | b := Bag new. b add: 1; add: 1. b size") == 2
        assert run(engine, "| b | b := Bag new. b add: 1; add: 1. b occurrencesOf: 1") == 2

    def test_remove_is_departure_with_history(self, engine):
        """remove: binds the alias to nil; history retains the member."""
        om = engine.store
        collection = run(engine, "| s | s := Set new. s add: 'x'. s")
        t_before = om.now
        om.tick()
        run(engine, "s remove: 'x'. s size", s=collection)
        assert run(engine, "s size", s=collection) == 0
        # the past state still shows the member
        live_then = collection.live_names(t_before)
        assert len(live_then) == 1

    def test_remove_missing_member(self, engine):
        with pytest.raises(OpalRuntimeError):
            run(engine, "| s | s := Set new. s remove: 99")

    def test_includes(self, engine):
        assert run(engine, "| s | s := Set new. s add: 3. s includes: 3") is True
        assert run(engine, "| s | s := Set new. s includes: 3") is False

    def test_do_collect_inject(self, engine):
        assert run(engine, "| s n | s := Bag new. s add: 1; add: 2; add: 3. "
                           "n := 0. s do: [:x | n := n + x]. n") == 6
        assert run(engine, "| s | s := Bag new. s add: 1; add: 2. "
                           "(s collect: [:x | x * 10]) size") == 2
        assert run(engine, "| s | s := Bag new. s add: 1; add: 2; add: 3. "
                           "s inject: 0 into: [:a :x | a + x]") == 6

    def test_select_reject_detect(self, engine):
        setup = "| s | s := Bag new. 1 to: 10 do: [:i | s add: i]. "
        assert run(engine, setup + "(s select: [:x | x > 7]) size") == 3
        assert run(engine, setup + "(s reject: [:x | x > 7]) size") == 7
        assert run(engine, setup + "s detect: [:x | x > 7]") == 8
        assert run(engine, setup + "s detect: [:x | x > 99] ifNone: [-1]") == -1

    def test_detect_failure(self, engine):
        with pytest.raises(OpalRuntimeError):
            run(engine, "| s | s := Set new. s detect: [:x | true]")

    def test_satisfy(self, engine):
        setup = "| s | s := Bag new. s add: 2; add: 4. "
        assert run(engine, setup + "s allSatisfy: [:x | x even]") is True
        assert run(engine, setup + "s anySatisfy: [:x | x > 3]") is True

    def test_add_all_from_literal_array(self, engine):
        assert run(engine, "| s | s := Set new. s addAll: #(1 2 3 2). s size") == 3

    def test_entity_identity_in_sets(self, engine):
        """Two equivalent objects are distinct members (section 4.2)."""
        run(engine, "Object subclass: #Gate instVarNames: #(kind)")
        size = run(engine, """
            | s a b |
            a := Gate new. b := Gate new.
            s := Set new. s add: a; add: b; add: a.
            s size
        """)
        assert size == 2

    def test_arrays(self, engine):
        assert run(engine, "| a | a := Array new: 3. a size") == 3
        assert run(engine, "| a | a := Array new: 3. a at: 1 put: 'x'. a at: 1") == "x"
        assert run(engine, "| a | a := Array new: 2. a at: 1") is None
        with pytest.raises(OpalRuntimeError):
            run(engine, "| a | a := Array new: 2. a at: 3")

    def test_array_grow(self, engine):
        assert run(engine, "| a | a := Array new: 2. a grow: 5. a size") == 5
        with pytest.raises(OpalRuntimeError):
            run(engine, "| a | a := Array new: 5. a grow: 2")

    def test_dictionaries(self, engine):
        assert run(engine, "| d | d := Dictionary new. d at: 'k' put: 9. d at: 'k'") == 9
        assert run(engine, "| d | d := Dictionary new. d at: 'k' ifAbsent: [0]") == 0
        assert run(engine, "| d | d := Dictionary new. d at: 1 put: 'a'. "
                           "d at: 2 put: 'b'. d size") == 2
        assert run(engine, "| d | d := Dictionary new. d at: 'k' put: 1. "
                           "d includesKey: 'k'") is True
        assert run(engine, "| d | d := Dictionary new. d at: 'k' put: 1. "
                           "d removeKey: 'k'. d includesKey: 'k'") is False

    def test_literal_array_protocol(self, engine):
        assert run(engine, "#(1 2 3) size") == 3
        assert run(engine, "#(1 2 3) at: 2") == 2
        assert run(engine, "#(1 2 3) includes: 2") is True
        assert run(engine, "#(1 2) , #(3)") == (1, 2, 3)
        assert run(engine, "#(1 2 3) select: [:x | x odd]") == (1, 3)
        assert run(engine, "#(1 2 3) inject: 0 into: [:a :x | a + x]") == 6


class TestPathsInOpal:
    def test_path_fetch_and_assign(self, engine):
        run(engine, "World!company := 'Acme'")
        assert run(engine, "World!company") == "Acme"

    def test_nested_path_assignment(self, engine):
        run(engine, """
            | acme | acme := Object new.
            World!acme := acme.
            World!acme!budget := 142000
        """)
        assert run(engine, "World!acme!budget") == 142000

    def test_path_with_time(self, engine):
        om = engine.store
        run(engine, "World!president := 'Ayn Rand'")
        t1 = om.now
        om.tick()
        run(engine, "World!president := 'Milton Friedman'")
        assert run(engine, f"World!president @ {t1}") == "Ayn Rand"
        assert run(engine, "World!president") == "Milton Friedman"

    def test_path_time_expression(self, engine):
        om = engine.store
        run(engine, "World!x := 1")
        om.tick()
        run(engine, "World!x := 2")
        now = om.now
        assert run(engine, f"| t | t := {now}. World!x @ (t - 1)") == 1

    def test_unbound_terminal_path_is_nil(self, engine):
        assert run(engine, "World!neverBound") is None

    def test_navigation_through_missing_fails(self, engine):
        with pytest.raises(OpalRuntimeError):
            run(engine, "World!ghost!deeper")

    def test_cannot_assign_into_past(self, engine):
        run(engine, "World!x := 1")
        with pytest.raises(OpalRuntimeError):
            run(engine, "World!x @ 1 := 2")

    def test_path_bypasses_class_protocol(self, engine):
        """Section 4.3: paths circumvent the message protocol."""
        run(engine, """
            Object subclass: #Locked instVarNames: #(secret).
            | o | o := Locked new.
            World!locked := o.
            World!locked!secret := 42
        """)
        assert run(engine, "World!locked!secret") == 42


class TestSystemObject:
    def test_time_and_commit(self, engine):
        before = run(engine, "System time")
        assert run(engine, "System commitTransaction") is True
        assert run(engine, "System time") == before + 1

    def test_object_count(self, engine):
        count = run(engine, "System objectCount")
        assert count > 0

    def test_unknown_system_message(self, engine):
        with pytest.raises(DoesNotUnderstand):
            run(engine, "System launchMissiles")


class TestObjectProtocol:
    def test_print_string(self, engine):
        assert run(engine, "3 printString") == "3"
        assert run(engine, "'x' printString") == "'x'"
        assert run(engine, "nil printString") == "nil"
        assert run(engine, "true printString") == "true"
        assert run(engine, "#(1 2) printString") == "#(1 2)"

    def test_identity_vs_equality(self, engine):
        run(engine, "Object subclass: #Point instVarNames: #(x)")
        assert run(engine, "| a b | a := Point new. b := Point new. a == b") is False
        assert run(engine, "| a | a := Point new. a == a yourself") is True

    def test_element_access_protocol(self, engine):
        source = """
            | o | o := Object new.
            o at: 'color' put: 'red'.
            o at: 'color'
        """
        assert run(engine, source) == "red"

    def test_history_of(self, engine):
        om = engine.store
        obj = run(engine, "| o | o := Object new. o at: 'v' put: 1. o")
        om.tick()
        run(engine, "o at: 'v' put: 2", o=obj)
        history = run(engine, "o historyOf: 'v'", o=obj)
        assert [value for _, value in history] == [1, 2]

    def test_error_message(self, engine):
        with pytest.raises(OpalRuntimeError, match="boom"):
            run(engine, "3 error: 'boom'")

    def test_bindings_passed_to_execute(self, engine):
        assert run(engine, "x + y", x=3, y=4) == 7
