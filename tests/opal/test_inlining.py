"""Control-flow inlining: identical semantics, fewer closure sends."""

import pytest

from repro.core import MemoryObjectManager
from repro.errors import DoesNotUnderstand, OpalRuntimeError
from repro.opal import Compiler, Op, OpalEngine


PROGRAMS = [
    "(3 > 2) ifTrue: ['yes'] ifFalse: ['no']",
    "(3 < 2) ifTrue: ['yes'] ifFalse: ['no']",
    "(3 < 2) ifTrue: [99]",
    "(3 < 2) ifFalse: [99]",
    "(3 > 2) ifFalse: ['a'] ifTrue: ['b']",
    "true and: [false]",
    "false and: [true]",
    "false or: [true]",
    "true or: [false]",
    "| hit | hit := 0. false and: [hit := 1. true]. hit",
    "| hit | hit := 0. true or: [hit := 1. true]. hit",
    "| i | i := 0. [i < 10] whileTrue: [i := i + 2]. i",
    "| i | i := 0. [i >= 5] whileFalse: [i := i + 1]. i",
    "| i | i := 0. [i := i + 1. i < 3] whileTrue. i",
    "| n | n := 0. 1 to: 4 do: [:k | (k odd) ifTrue: [n := n + k]]. n",
    "(1 < 2) ifTrue: [(2 < 3) ifTrue: ['both'] ifFalse: ['one']] ifFalse: ['neither']",
    "((1 < 2) and: [2 < 3]) ifTrue: [42] ifFalse: [0]",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_inlined_equals_sent(source):
    """The inlining compiler and the plain compiler agree exactly."""
    inlined_engine = OpalEngine(MemoryObjectManager())
    sent_engine = OpalEngine(MemoryObjectManager())

    inlined = inlined_engine.execute(source)

    method = Compiler(inline_control_flow=False).compile_source(source)
    from repro.opal.interpreter import Frame

    frame = Frame(method.code, method.literals, method.slot_names,
                  receiver=None, lexical_parent=None, home=None,
                  is_block=False)
    frame.method = method
    plain = sent_engine._run_method_frame(frame)
    assert inlined == plain


class TestInlinedCode:
    def test_if_true_compiles_to_jumps_not_sends(self):
        method = Compiler().compile_source("(1 < 2) ifTrue: [3]")
        ops = [i.op for i in method.code]
        assert Op.JUMP_IF_FALSE in ops
        sends = [i for i in method.code
                 if i.op is Op.SEND and i.operand[0] == "ifTrue:"]
        assert not sends
        blocks = [i for i in method.code if i.op is Op.PUSH_BLOCK]
        assert not blocks

    def test_while_compiles_without_closures(self):
        method = Compiler().compile_source(
            "| i | i := 0. [i < 3] whileTrue: [i := i + 1]. i"
        )
        assert not any(i.op is Op.PUSH_BLOCK for i in method.code)
        assert any(i.op is Op.JUMP for i in method.code)

    def test_block_with_temps_not_inlined(self):
        method = Compiler().compile_source(
            "(1 < 2) ifTrue: [ | t | t := 9. t ]"
        )
        assert any(i.op is Op.PUSH_BLOCK for i in method.code)

    def test_inlining_can_be_disabled(self):
        method = Compiler(inline_control_flow=False).compile_source(
            "(1 < 2) ifTrue: [3]"
        )
        assert any(
            i.op is Op.SEND and i.operand[0] == "ifTrue:" for i in method.code
        )


class TestInlinedSemantics:
    @pytest.fixture
    def engine(self):
        return OpalEngine(MemoryObjectManager())

    def test_non_boolean_receiver_still_dnu(self, engine):
        with pytest.raises(DoesNotUnderstand) as exc:
            engine.execute("3 ifTrue: [1]")
        assert exc.value.selector == "ifTrue:"

    def test_non_boolean_loop_condition_still_runtime_error(self, engine):
        with pytest.raises(OpalRuntimeError, match="Boolean"):
            engine.execute("[3] whileTrue: [1]")

    def test_non_boolean_and_still_dnu(self, engine):
        with pytest.raises(DoesNotUnderstand):
            engine.execute("3 and: [true]")

    def test_non_local_return_through_inlined_if(self, engine):
        engine.execute("""
            Object subclass: #Guard instVarNames: #().
            Guard compile: 'check: n
                (n > 10) ifTrue: [^#big].
                ^#small'
        """)
        from repro.core import Symbol

        assert engine.execute("Guard new check: 99") == Symbol("big")
        assert engine.execute("Guard new check: 1") == Symbol("small")

    def test_non_local_return_through_inlined_while(self, engine):
        engine.execute("""
            Object subclass: #Hunter instVarNames: #().
            Hunter compile: 'seek
                | i | i := 0.
                [true] whileTrue: [i := i + 1. (i = 7) ifTrue: [^i]]'
        """)
        assert engine.execute("Hunter new seek") == 7

    def test_inlined_if_inside_real_block(self, engine):
        """Inlining inside a block frame: ^ must still be non-local."""
        engine.execute("""
            Object subclass: #Finder instVarNames: #().
            Finder compile: 'firstBig: aBag
                aBag do: [:x | (x > 10) ifTrue: [^x]].
                ^nil'
        """)
        result = engine.execute("""
            | b | b := Bag new. b add: 3; add: 20; add: 30.
            Finder new firstBig: b
        """)
        assert result == 20

    def test_condition_side_effects_run_each_iteration(self, engine):
        assert engine.execute(
            "| calls i | calls := 0. i := 0. "
            "[calls := calls + 1. i < 3] whileTrue: [i := i + 1]. calls"
        ) == 4
