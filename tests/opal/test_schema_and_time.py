"""Schema evolution, event time as user data, perform:/copy protocol."""

import pytest

from repro import GemStone
from repro.core import MemoryObjectManager, Symbol
from repro.errors import ClassProtocolError, OpalRuntimeError
from repro.opal import OpalEngine


@pytest.fixture
def engine():
    return OpalEngine(MemoryObjectManager())


class TestSchemaEvolution:
    """Design goal C: modify schemes without database restructuring."""

    def test_add_instvar_to_class_with_existing_instances(self, engine):
        engine.execute("""
            Object subclass: #Employee instVarNames: #(name).
            Employee compile: 'name: n name := n'.
            | e | e := Employee new. e name: 'Ellen'. World!ellen := e
        """)
        engine.execute("Employee addInstVarName: 'phone'")
        assert "phone" in engine.execute("Employee instVarNames")
        # old instance: the new variable reads nil, costs nothing
        assert engine.execute("World!ellen!phone") is None
        # methods compiled after the change can use it
        engine.execute("Employee compile: 'phone: p phone := p'")
        engine.execute("Employee compile: 'phone ^phone'")
        engine.execute("World!ellen phone: 3949")
        assert engine.execute("World!ellen phone") == 3949

    def test_old_instances_not_restructured(self, engine):
        engine.execute("""
            Object subclass: #Item instVarNames: #(a).
            | i | i := Item new. i at: 'a' put: 1. World!item := i
        """)
        item = engine.execute("World!item")
        elements_before = set(item.elements)
        engine.execute("Item addInstVarName: 'b'")
        assert set(item.elements) == elements_before  # no placeholder added

    def test_duplicate_instvar_rejected(self, engine):
        engine.execute("Object subclass: #Thing instVarNames: #(x)")
        with pytest.raises(ClassProtocolError):
            engine.execute("Thing addInstVarName: 'x'")

    def test_schema_change_survives_reopen(self):
        db = GemStone.create(track_count=2048, track_size=1024)
        session = db.login()
        session.execute("""
            Object subclass: #Employee instVarNames: #(name).
            | e | e := Employee new. World!e := e
        """)
        session.commit()
        session.execute("Employee addInstVarName: 'salary'")
        session.execute("Employee compile: 'salary: s salary := s'")
        session.execute("Employee compile: 'salary ^salary'")
        session.commit()
        reopened = GemStone.open(db.disk)
        s2 = reopened.login()
        assert "salary" in s2.execute("Employee instVarNames")
        s2.execute("World!e salary: 99")
        assert s2.execute("World!e salary") == 99

    def test_class_element_write_in_transaction_keeps_classness(self):
        """Binding an element on a class twins it as a class, not a
        bare object (GemClass.copy_shell)."""
        db = GemStone.create(track_count=2048, track_size=1024)
        session = db.login()
        session.execute("Object subclass: #Doc instVarNames: #()")
        session.commit()
        session.execute("Doc comment: 'documents'")  # uncommitted element write
        # the class still works as a class inside the same transaction
        assert session.execute("Doc new class name") == "Doc"
        session.commit()
        assert session.execute("Doc at: 'comment'") == "documents"


class TestEventTimeAsUserData:
    """Section 5.3.1: event time is application data; transaction time
    is the system's.  Classes model event time themselves."""

    def test_both_times_queryable(self):
        db = GemStone.create(track_count=2048, track_size=1024)
        session = db.login()
        session.execute("""
            Object subclass: #Measurement instVarNames: #(value eventTime).
            Measurement compile: 'value: v value := v'.
            Measurement compile: 'eventTime: t eventTime := t'.
            Measurement compile: 'eventTime ^eventTime'.
            Measurement compile: 'value ^value'.
            World!readings := Bag new
        """)
        session.commit()
        # the sensor reading happened at event time 1000, but is only
        # recorded (transaction time) later — and then corrected
        session.execute("""
            | m | m := Measurement new.
            m value: 21. m eventTime: 1000.
            World!readings add: m. World!lastReading := m
        """)
        t_recorded = session.commit()
        session.execute("World!lastReading value: 23")  # correction
        t_corrected = session.commit()

        # event time: user data, freely queryable and modifiable
        assert session.execute(
            "(World!readings select: [:m | m!eventTime = 1000]) size"
        ) == 1
        # transaction time: system truth about the recording process
        assert session.execute(
            f"World!lastReading!value @ {t_recorded}"
        ) == 21
        assert session.execute(
            f"World!lastReading!value @ {t_corrected}"
        ) == 23

    def test_event_time_is_modifiable_transaction_time_is_not(self):
        db = GemStone.create(track_count=2048, track_size=1024)
        session = db.login()
        session.execute("""
            Object subclass: #Entry instVarNames: #().
            | e | e := Entry new. e at: 'eventTime' put: 500.
            World!entry := e
        """)
        session.commit()
        session.execute("World!entry at: 'eventTime' put: 501")  # corrected
        session.commit()
        assert session.resolve("entry!eventTime") == 501
        # but the correction itself is in the (immutable) history
        history = session.execute("World!entry historyOf: 'eventTime'")
        assert [v for _, v in history] == [500, 501]
        with pytest.raises(OpalRuntimeError):
            session.execute("World!entry at: 'x' put: 1. World!entry!x @ 1 := 2")


class TestPerformAndCopy:
    def test_perform(self, engine):
        assert engine.execute("3 perform: #negated") == -3
        assert engine.execute("3 perform: #max: with: 9") == 9
        assert engine.execute("'ab' perform: #copyFrom:to: with: 1 with: 1") == "a"

    def test_copy_is_equivalent_not_identical(self, engine):
        engine.execute("""
            Object subclass: #Gate instVarNames: #(kind).
            | g | g := Gate new. g at: 'kind' put: #nand. World!g := g
        """)
        assert engine.execute("World!g copy == World!g") is False
        assert engine.execute("(World!g copy at: 'kind') = (World!g at: 'kind')")

    def test_copy_is_shallow(self, engine):
        engine.execute("""
            | inner outer |
            inner := Object new. inner at: 'v' put: 1.
            outer := Object new. outer at: 'inner' put: inner.
            World!outer := outer
        """)
        assert engine.execute(
            "(World!outer copy at: 'inner') == (World!outer at: 'inner')"
        ) is True

    def test_copy_of_immediate_is_itself(self, engine):
        assert engine.execute("42 copy") == 42
        assert engine.execute("'x' copy") == "x"
