"""Tests for declarative select blocks (OPAL → set calculus → algebra)."""

import pytest

from repro.core import MemoryObjectManager
from repro.directories import DirectoryManager
from repro.opal import OpalEngine, selector_is_element_fetch


@pytest.fixture
def setup():
    om = MemoryObjectManager()
    dm = DirectoryManager(om)
    engine = OpalEngine(om, directory_manager=dm)
    engine.execute("""
        Object subclass: #Employee instVarNames: #(name salary dept).
        Employee compile: 'salary ^salary'.
        Employee compile: 'salary: s salary := s'.
        Employee compile: 'name ^name'.
        Employee compile: 'name: n name := n'.
        | emps e |
        emps := Bag new.
        1 to: 20 do: [:i |
            e := Employee new.
            e salary: i * 100.
            e name: 'emp', i printString.
            emps add: e].
        World!employees := emps
    """)
    emps = engine.execute("World!employees")
    return om, dm, engine, emps


class TestRecognition:
    def test_path_syntax_block_is_declarative(self, setup):
        om, dm, engine, emps = setup
        n = engine.execute("(World!employees select: [:e | e!salary > 1500]) size")
        assert n == 5

    def test_getter_message_treated_as_path(self, setup):
        om, dm, engine, emps = setup
        n = engine.execute("(World!employees select: [:e | e salary > 1500]) size")
        assert n == 5

    def test_uses_directory_when_available(self, setup):
        om, dm, engine, emps = setup
        directory = dm.create_directory(emps, "salary")
        n = engine.execute("(World!employees select: [:e | e!salary > 1500]) size")
        assert n == 5
        assert directory.lookups == 1

    def test_reject_also_declarative(self, setup):
        om, dm, engine, emps = setup
        n = engine.execute("(World!employees reject: [:e | e!salary > 1500]) size")
        assert n == 15

    def test_conjunction(self, setup):
        om, dm, engine, emps = setup
        n = engine.execute(
            "(World!employees select: "
            "[:e | (e!salary > 500) and: [e!salary <= 1000]]) size"
        )
        assert n == 5

    def test_between_and(self, setup):
        om, dm, engine, emps = setup
        n = engine.execute(
            "(World!employees select: [:e | e!salary between: 600 and: 1000]) size"
        )
        assert n == 5

    def test_equality_and_arithmetic(self, setup):
        om, dm, engine, emps = setup
        n = engine.execute(
            "(World!employees select: [:e | e!salary = (5 * 100)]) size"
        )
        assert n == 1


class TestFallback:
    def test_outer_capture_falls_back_procedurally(self, setup):
        om, dm, engine, emps = setup
        n = engine.execute(
            "| limit | limit := 1500. "
            "(World!employees select: [:e | e!salary > limit]) size"
        )
        assert n == 5

    def test_general_message_falls_back(self, setup):
        om, dm, engine, emps = setup
        engine.execute(
            "Employee compile: 'monthly ^salary / 12'"
        )
        n = engine.execute(
            "(World!employees select: [:e | e monthly > 125]) size"
        )
        assert n == 5  # 1600..2000 have monthly > 125

    def test_non_getter_selector_not_misread_as_path(self, setup):
        om, dm, engine, emps = setup
        # 'doubled' computes, so the declarative recognizer must bail,
        # and the procedural answer must be used
        engine.execute("Employee compile: 'doubled ^salary * 2'")
        assert not selector_is_element_fetch(om, "doubled")
        n = engine.execute(
            "(World!employees select: [:e | e doubled > 3000]) size"
        )
        assert n == 5

    def test_multi_statement_block_falls_back(self, setup):
        om, dm, engine, emps = setup
        n = engine.execute(
            "(World!employees select: [:e | | s | s := e!salary. s > 1500]) size"
        )
        assert n == 5

    def test_declarative_and_procedural_agree(self, setup):
        om, dm, engine, emps = setup
        dm.create_directory(emps, "salary")
        declarative = engine.execute(
            "(World!employees select: [:e | e!salary > 700]) size"
        )
        procedural = engine.execute(
            "| n | n := 0. World!employees do: "
            "[:e | (e!salary > 700) ifTrue: [n := n + 1]]. n"
        )
        assert declarative == procedural == 13


class TestTimeDialIntegration:
    def test_select_respects_dial(self):
        om = MemoryObjectManager()
        dm = DirectoryManager(om)
        engine = OpalEngine(om, directory_manager=dm)
        engine.execute("""
            Object subclass: #Item instVarNames: #().
            | items i |
            items := Bag new.
            1 to: 5 do: [:k | i := Item new. i at: 'v' put: k. items add: i].
            World!items := items
        """)
        t0 = om.now
        om.tick()
        engine.execute(
            "World!items do: [:i | i at: 'v' put: (i at: 'v') + 100]"
        )
        now_count = engine.execute(
            "(World!items select: [:i | i!v > 100]) size"
        )
        assert now_count == 5
        # dial back: no member had v > 100 then
        om_dial = getattr(om, "time_dial", None)
        assert om_dial is None  # memory stores have no dial; use sessions
