"""Collection aggregates and sorting in the kernel."""

import pytest

from repro.core import MemoryObjectManager
from repro.errors import OpalRuntimeError
from repro.opal import OpalEngine


@pytest.fixture
def engine():
    return OpalEngine(MemoryObjectManager())


SETUP = "| b | b := Bag new. b add: 5; add: 1; add: 9; add: 3. "


class TestAggregates:
    def test_sum(self, engine):
        assert engine.execute(SETUP + "b sum") == 18

    def test_average(self, engine):
        assert engine.execute(SETUP + "b average") == 4.5

    def test_max_min(self, engine):
        assert engine.execute(SETUP + "b maxValue") == 9
        assert engine.execute(SETUP + "b minValue") == 1

    def test_count(self, engine):
        assert engine.execute(SETUP + "b count: [:x | x > 2]") == 3

    def test_sum_of_empty_is_zero(self, engine):
        assert engine.execute("Bag new sum") == 0

    def test_average_of_empty_rejected(self, engine):
        with pytest.raises(OpalRuntimeError):
            engine.execute("Bag new average")

    def test_non_numeric_members_rejected(self, engine):
        with pytest.raises(OpalRuntimeError):
            engine.execute("| b | b := Bag new. b add: 'x'. b sum")


class TestSorting:
    def test_natural_ascending(self, engine):
        assert engine.execute(SETUP + "b asSortedArray") == (1, 3, 5, 9)

    def test_sort_block_descending(self, engine):
        result = engine.execute(SETUP + "b asSortedArray: [:a :x | a > x]")
        assert result == (9, 5, 3, 1)

    def test_sort_strings(self, engine):
        result = engine.execute(
            "| b | b := Bag new. b add: 'pear'; add: 'apple'; add: 'fig'. "
            "b asSortedArray"
        )
        assert result == ("apple", "fig", "pear")

    def test_sort_objects_by_element(self, engine):
        engine.execute("""
            Object subclass: #Emp instVarNames: #(salary).
            | b e |
            b := Bag new.
            #(30 10 20) do: [:s |
                e := Emp new. e at: 'salary' put: s. b add: e].
            World!emps := b
        """)
        result = engine.execute(
            "(World!emps asSortedArray: [:a :x | a!salary < x!salary]) "
            "collect: [:e | e!salary]"
        )
        assert result == (10, 20, 30)

    def test_sorted_result_supports_array_protocol(self, engine):
        assert engine.execute(SETUP + "(b asSortedArray) at: 1") == 1
        assert engine.execute(SETUP + "(b asSortedArray) size") == 4
