"""Harder OPAL semantics: recursion, closures, cascade values, scoping."""

import pytest

from repro.core import MemoryObjectManager
from repro.errors import CompileError, OpalRuntimeError
from repro.opal import OpalEngine


@pytest.fixture
def engine():
    return OpalEngine(MemoryObjectManager())


class TestRecursion:
    def test_recursive_method(self, engine):
        engine.execute("""
            Object subclass: #Math instVarNames: #().
            Math compile: 'factorial: n
                n <= 1 ifTrue: [^1].
                ^n * (self factorial: n - 1)'
        """)
        assert engine.execute("Math new factorial: 10") == 3628800

    def test_mutual_recursion(self, engine):
        engine.execute("""
            Object subclass: #Parity instVarNames: #().
            Parity compile: 'isEven: n
                n = 0 ifTrue: [^true]. ^self isOdd: n - 1'.
            Parity compile: 'isOdd: n
                n = 0 ifTrue: [^false]. ^self isEven: n - 1'
        """)
        assert engine.execute("Parity new isEven: 10") is True
        assert engine.execute("Parity new isOdd: 10") is False

    def test_fibonacci_with_blocks(self, engine):
        source = """
            | fib |
            fib := nil.
            fib := [:n | n < 2 ifTrue: [n] ifFalse: [
                (fib value: n - 1) + (fib value: n - 2)]].
            fib value: 12
        """
        assert engine.execute(source) == 144


class TestClosures:
    def test_counter_factory_keeps_separate_state(self, engine):
        source = """
            | make c1 c2 |
            make := [ | n | n := 0. [n := n + 1. n] ].
            c1 := make value.
            c2 := make value.
            c1 value. c1 value. c2 value.
            (c1 value * 10) + c2 value
        """
        assert engine.execute(source) == 32

    def test_loop_variable_capture(self, engine):
        source = """
            | b1 b2 b3 |
            1 to: 3 do: [:i |
                i = 1 ifTrue: [b1 := [i]].
                i = 2 ifTrue: [b2 := [i]].
                i = 3 ifTrue: [b3 := [i]]].
            (b1 value) + (b2 value) + (b3 value)
        """
        # to:do: calls the block afresh each iteration, so each closure
        # captures its own frame's i (full-closure semantics): 1 + 2 + 3
        assert engine.execute(source) == 6

    def test_blocks_are_not_storable_values(self, engine):
        """Closures live in the session, never in object elements."""
        with pytest.raises(TypeError):
            engine.execute("| s | s := Set new. s add: [1]")

    def test_non_local_return_through_nested_blocks(self, engine):
        engine.execute("""
            Object subclass: #Finder instVarNames: #().
            Finder compile: 'firstOver: limit in: aBag
                aBag do: [:x | x > limit ifTrue: [^x]].
                ^nil'
        """)
        result = engine.execute("""
            | bag |
            bag := Bag new.
            bag add: 3; add: 8; add: 15.
            Finder new firstOver: 5 in: bag
        """)
        assert result in (8, 15)  # bag order is insertion order: 8

    def test_non_local_return_exits_loops(self, engine):
        engine.execute("""
            Object subclass: #Loops instVarNames: #().
            Loops compile: 'countTo: n
                | i | i := 0.
                [true] whileTrue: [i := i + 1. i = n ifTrue: [^i]]'
        """)
        assert engine.execute("Loops new countTo: 7") == 7


class TestCascades:
    def test_cascade_value_is_last_message(self, engine):
        assert engine.execute("| s | s := Set new. (s add: 1; add: 2; size)") == 2

    def test_cascade_receiver_is_first_messages_receiver(self, engine):
        # `add:` returns the argument; the cascade must keep sending to
        # the Set, not to the argument
        assert engine.execute(
            "| s | s := Set new. s add: 99; add: 98. s size"
        ) == 2

    def test_cascade_in_expression(self, engine):
        assert engine.execute(
            "| d | d := Dictionary new. (d at: 1 put: 'a'; at: 2 put: 'b'; keys) size"
        ) == 2


class TestScoping:
    def test_block_param_shadows_outer_temp(self, engine):
        assert engine.execute(
            "| x | x := 1. [:x | x * 10] value: 5"
        ) == 50

    def test_outer_temp_unchanged_by_shadow(self, engine):
        assert engine.execute(
            "| x | x := 1. [:x | x * 10] value: 5. x"
        ) == 1

    def test_method_args_assignable(self, engine):
        engine.execute("""
            Object subclass: #Clamp instVarNames: #().
            Clamp compile: 'clamp: v
                v > 10 ifTrue: [v := 10]. ^v'
        """)
        assert engine.execute("Clamp new clamp: 99") == 10
        assert engine.execute("Clamp new clamp: 3") == 3

    def test_duplicate_temps_rejected(self, engine):
        with pytest.raises(CompileError):
            engine.execute("| a a | a")

    def test_instvar_vs_temp_resolution(self, engine):
        engine.execute("""
            Object subclass: #Shadow instVarNames: #(v).
            Shadow compile: 'set v := 7'.
            Shadow compile: 'confuse | v | v := 99. ^self at: ''v'''
        """)
        assert engine.execute("| s | s := Shadow new. s set. s confuse") == 7


class TestStringBuilding:
    def test_report_building(self, engine):
        source = """
            | out |
            out := ''.
            1 to: 3 do: [:i | out := out , i printString , ';'].
            out
        """
        assert engine.execute(source) == "1;2;3;"

    def test_print_string_of_objects(self, engine):
        engine.execute("Object subclass: #Empty instVarNames: #()")
        assert engine.execute("Empty new printString") == "an Empty"
        assert engine.execute("Empty printString") == "Empty"


class TestErrorPropagation:
    def test_error_inside_block_inside_method(self, engine):
        engine.execute("""
            Object subclass: #Risky instVarNames: #().
            Risky compile: 'go #(1 2 3) do: [:x | x = 2 ifTrue: [self error: ''two'']]'
        """)
        with pytest.raises(OpalRuntimeError, match="two"):
            engine.execute("Risky new go")

    def test_arity_mismatch_in_method_send(self, engine):
        engine.execute("""
            Object subclass: #Arity instVarNames: #().
            Arity compile: 'needs: a and: b ^a + b'
        """)
        assert engine.execute("Arity new needs: 1 and: 2") == 3

    def test_deep_arithmetic(self, engine):
        assert engine.execute("((((1 + 2) * 3) - 4) * 5) \\\\ 7") == 4
