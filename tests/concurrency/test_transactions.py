"""Tests for the optimistic Transaction Manager and sessions."""

import threading

import pytest

from repro.concurrency import SessionObjectManager, TransactionManager
from repro.errors import SessionClosed, TransactionConflict
from repro.storage import DiskGeometry, SimulatedDisk, StableStore


@pytest.fixture
def store():
    return StableStore.format(
        SimulatedDisk(DiskGeometry(track_count=2048, track_size=1024))
    )


@pytest.fixture
def tm(store):
    return TransactionManager(store)


def session(store, tm):
    return SessionObjectManager(store, tm)


class TestBasicCommit:
    def test_commit_makes_writes_durable(self, store, tm):
        s = session(store, tm)
        obj = s.instantiate("Object", x=1)
        t = s.commit()
        assert store.object(obj.oid).value("x") == 1
        assert store.object(obj.oid).created_at == t

    def test_other_sessions_see_committed_state(self, store, tm):
        s1, s2 = session(store, tm), session(store, tm)
        obj = s1.instantiate("Object", x=1)
        assert not s2.contains(obj.oid)
        s1.commit()
        assert s2.value_at(obj.oid, "x") == 1

    def test_uncommitted_writes_are_private(self, store, tm):
        s1, s2 = session(store, tm), session(store, tm)
        obj = s1.instantiate("Object", x=1)
        s1.commit()
        s1.bind(obj.oid, "x", 2)
        assert s1.value_at(obj.oid, "x") == 2
        assert s2.value_at(obj.oid, "x") == 1

    def test_all_writes_share_commit_time(self, store, tm):
        s = session(store, tm)
        a = s.instantiate("Object", x=1)
        b = s.instantiate("Object", y=2)
        t = s.commit()
        assert store.object(a.oid).elements["x"].last_time == t
        assert store.object(b.oid).elements["y"].last_time == t

    def test_read_only_commit_is_cheap(self, store, tm):
        s = session(store, tm)
        epoch_before = store.commit_manager.current_epoch
        s.commit()
        assert store.commit_manager.current_epoch == epoch_before
        assert tm.stats.read_only_commits == 1

    def test_commit_times_increase(self, store, tm):
        s = session(store, tm)
        s.instantiate("Object")
        t1 = s.commit()
        s.instantiate("Object")
        t2 = s.commit()
        assert t2 > t1


class TestAbort:
    def test_abort_discards_workspace(self, store, tm):
        s = session(store, tm)
        obj = s.instantiate("Object", x=1)
        s.commit()
        s.bind(obj.oid, "x", 99)
        s.abort()
        assert s.value_at(obj.oid, "x") == 1

    def test_abort_discards_creations(self, store, tm):
        s = session(store, tm)
        obj = s.instantiate("Object")
        s.abort()
        assert not store.contains(obj.oid)

    def test_aborted_class_definitions_vanish(self, store, tm):
        s = session(store, tm)
        s.define_class("Ephemeral")
        s.abort()
        assert not s.has_class("Ephemeral")


class TestValidation:
    def test_write_write_without_read_does_not_conflict(self, store, tm):
        """Blind writes are allowed; only read/write overlap conflicts."""
        s1, s2 = session(store, tm), session(store, tm)
        obj = s1.instantiate("Object", x=0)
        s1.commit()
        s2.abort()  # refresh start time
        s1.bind(obj.oid, "x", 1)
        s2.bind(obj.oid, "x", 2)
        s1.commit()
        s2.commit()  # no read of x, so no conflict
        assert store.object(obj.oid).value("x") == 2

    def test_read_invalidated_by_concurrent_write(self, store, tm):
        s1, s2 = session(store, tm), session(store, tm)
        obj = s1.instantiate("Object", balance=100)
        s1.commit()
        s2.abort()
        v1 = s1.value_at(obj.oid, "balance")
        v2 = s2.value_at(obj.oid, "balance")
        s1.bind(obj.oid, "balance", v1 + 10)
        s2.bind(obj.oid, "balance", v2 + 20)
        s1.commit()
        with pytest.raises(TransactionConflict):
            s2.commit()
        assert store.object(obj.oid).value("balance") == 110

    def test_conflict_aborts_the_loser(self, store, tm):
        s1, s2 = session(store, tm), session(store, tm)
        obj = s1.instantiate("Object", x=0)
        s1.commit()
        s2.abort()
        s2.value_at(obj.oid, "x")
        s2.bind(obj.oid, "y", 1)
        s1.bind(obj.oid, "x", 5)
        s1.commit()
        with pytest.raises(TransactionConflict):
            s2.commit()
        # loser was aborted: workspace empty, retry can proceed
        assert not s2.has_uncommitted_changes
        s2.bind(obj.oid, "y", 1)
        s2.commit()

    def test_disjoint_elements_do_not_conflict(self, store, tm):
        s1, s2 = session(store, tm), session(store, tm)
        obj = s1.instantiate("Object", a=1, b=2)
        s1.commit()
        s2.abort()
        s1.value_at(obj.oid, "a")
        s1.bind(obj.oid, "a", 10)
        s2.value_at(obj.oid, "b")
        s2.bind(obj.oid, "b", 20)
        s1.commit()
        s2.commit()
        assert store.object(obj.oid).value("a") == 10
        assert store.object(obj.oid).value("b") == 20

    def test_disjoint_objects_do_not_conflict(self, store, tm):
        s1, s2 = session(store, tm), session(store, tm)
        a = s1.instantiate("Object", x=0)
        b = s1.instantiate("Object", x=0)
        s1.commit()
        s2.abort()
        s1.bind(a.oid, "x", s1.value_at(a.oid, "x") + 1)
        s2.bind(b.oid, "x", s2.value_at(b.oid, "x") + 1)
        s1.commit()
        s2.commit()

    def test_phantom_detected_via_enumeration(self, store, tm):
        """A commit adding an element invalidates a concurrent enumeration."""
        s1, s2 = session(store, tm), session(store, tm)
        group = s1.instantiate("Object")
        s1.commit()
        s2.abort()
        names = s2.live_names_of(group.oid)  # enumeration read
        s2.bind(s2.instantiate("Object").oid, "count", len(names))
        s1.bind(group.oid, "newMember", 42)
        s1.commit()
        with pytest.raises(TransactionConflict):
            s2.commit()

    def test_reads_of_own_creations_never_conflict(self, store, tm):
        s1, s2 = session(store, tm), session(store, tm)
        obj = s1.instantiate("Object", x=1)
        s1.value_at(obj.oid, "x")
        s1.live_names_of(obj.oid)
        s2.instantiate("Object")
        s2.commit()
        s1.commit()  # reads were of s1's own new object

    def test_old_commits_do_not_conflict(self, store, tm):
        s1 = session(store, tm)
        obj = s1.instantiate("Object", x=1)
        s1.commit()  # happens before s2 begins
        s2 = session(store, tm)
        s2.value_at(obj.oid, "x")
        s2.bind(obj.oid, "y", 2)
        s2.commit()

    def test_conflict_reports_the_element(self, store, tm):
        s1, s2 = session(store, tm), session(store, tm)
        obj = s1.instantiate("Object", salary=5)
        s1.commit()
        s2.abort()
        s2.value_at(obj.oid, "salary")
        s2.bind(obj.oid, "note", "seen")
        s1.bind(obj.oid, "salary", 6)
        s1.commit()
        with pytest.raises(TransactionConflict) as exc:
            s2.commit()
        assert (obj.oid, "salary") in exc.value.conflicts


class TestHistoryThroughTransactions:
    def test_each_commit_is_a_database_state(self, store, tm):
        s = session(store, tm)
        obj = s.instantiate("Object", president="Ayn Rand")
        t1 = s.commit()
        s.bind(obj.oid, "president", "Milton Friedman")
        t2 = s.commit()
        stable = store.object(obj.oid)
        assert stable.value_at("president", t1) == "Ayn Rand"
        assert stable.value_at("president", t2) == "Milton Friedman"

    def test_time_dial_reads_past_state(self, store, tm):
        s = session(store, tm)
        obj = s.instantiate("Object", x="old")
        t1 = s.commit()
        s.bind(obj.oid, "x", "new")
        s.commit()
        s.time_dial.set(t1)
        assert s.value_at(obj.oid, "x") == "old"
        s.time_dial.reset()
        assert s.value_at(obj.oid, "x") == "new"

    def test_explicit_time_overrides_dial(self, store, tm):
        s = session(store, tm)
        obj = s.instantiate("Object", x="old")
        t1 = s.commit()
        s.bind(obj.oid, "x", "new")
        t2 = s.commit()
        s.time_dial.set(t1)
        assert s.value_at(obj.oid, "x", t2) == "new"
        s.time_dial.reset()

    def test_safe_time_is_latest_committed(self, store, tm):
        s1, s2 = session(store, tm), session(store, tm)
        obj = s1.instantiate("Object", x=1)
        t = s1.commit()
        s2.bind(obj.oid, "x", 99)  # uncommitted writer
        assert s2.safe_time() == t
        dialed = s1.time_dial.set_safe()
        assert dialed == t
        assert s1.value_at(obj.oid, "x") == 1
        s1.time_dial.reset()


class TestSessionLifecycle:
    def test_closed_session_rejects_operations(self, store, tm):
        s = session(store, tm)
        s.close()
        assert s.closed
        with pytest.raises(SessionClosed):
            s.instantiate("Object")
        with pytest.raises(SessionClosed):
            s.commit()

    def test_active_count(self, store, tm):
        s1 = session(store, tm)
        s2 = session(store, tm)
        assert tm.active_count() == 2
        s1.close()
        assert tm.active_count() == 1
        s2.close()

    def test_log_trimmed_when_sessions_catch_up(self, store, tm):
        s = session(store, tm)
        for i in range(10):
            s.instantiate("Object", i=i)
            s.commit()
        assert len(tm._log) <= 1


class TestThreadedCommits:
    def test_concurrent_counter_increments_are_serializable(self, store, tm):
        """N threads increment with retry; final count == successful commits."""
        setup = session(store, tm)
        counter = setup.instantiate("Object", n=0)
        setup.commit()
        setup.close()

        increments_per_thread = 10
        threads = 4

        def worker():
            s = session(store, tm)
            done = 0
            while done < increments_per_thread:
                try:
                    value = s.value_at(counter.oid, "n")
                    s.bind(counter.oid, "n", value + 1)
                    s.commit()
                    done += 1
                except TransactionConflict:
                    continue  # aborted: retry with a fresh transaction
            s.close()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert store.object(counter.oid).value("n") == threads * increments_per_thread
