"""Temporary (transient) workspace objects and promotion (section 6).

"Temporary objects created by user sessions may have to be garbage
collected.  However ... an entire session workspace can be discarded at
the end of a session."  Query results are transient; storing one into
persistent state promotes it.
"""

import pytest

from repro.concurrency import SessionObjectManager, TransactionManager
from repro.core import Ref
from repro.storage import DiskGeometry, SimulatedDisk, StableStore


@pytest.fixture
def setup():
    store = StableStore.format(
        SimulatedDisk(DiskGeometry(track_count=2048, track_size=1024))
    )
    tm = TransactionManager(store)
    return store, tm


def session_for(setup):
    store, tm = setup
    return SessionObjectManager(store, tm)


class TestTransients:
    def test_transient_never_committed(self, setup):
        store, tm = setup
        s = session_for(setup)
        temp = s.instantiate_transient("Object", x=1)
        s.commit()
        assert not store.contains(temp.oid)

    def test_transient_visible_within_its_transaction(self, setup):
        s = session_for(setup)
        temp = s.instantiate_transient("Object", x=1)
        assert s.value_at(temp.oid, "x") == 1
        assert s.contains(temp.oid)

    def test_transient_discarded_on_abort(self, setup):
        s = session_for(setup)
        temp = s.instantiate_transient("Object", x=1)
        s.abort()
        assert not s.contains(temp.oid)

    def test_binding_into_persistent_promotes(self, setup):
        store, tm = setup
        s = session_for(setup)
        anchor = s.instantiate("Object")
        temp = s.instantiate_transient("Object", x=42)
        s.bind(anchor.oid, "kept", Ref(temp.oid))
        s.commit()
        assert store.contains(temp.oid)
        assert store.object(temp.oid).value("x") == 42

    def test_promotion_is_recursive(self, setup):
        store, tm = setup
        s = session_for(setup)
        anchor = s.instantiate("Object")
        inner = s.instantiate_transient("Object", v="deep")
        outer = s.instantiate_transient("Object", child=Ref(inner.oid))
        s.bind(anchor.oid, "kept", Ref(outer.oid))
        s.commit()
        assert store.contains(inner.oid)
        assert store.object(inner.oid).value("v") == "deep"

    def test_writes_after_promotion_are_logged(self, setup):
        store, tm = setup
        s = session_for(setup)
        anchor = s.instantiate("Object")
        temp = s.instantiate_transient("Object", x=1)
        s.bind(anchor.oid, "kept", Ref(temp.oid))
        s.bind(temp.oid, "x", 2)  # promoted by now: must be committed
        s.commit()
        assert store.object(temp.oid).value("x") == 2

    def test_unpromoted_transient_reads_never_conflict(self, setup):
        store, tm = setup
        s1, s2 = session_for(setup), session_for(setup)
        temp = s1.instantiate_transient("Object", x=1)
        s1.value_at(temp.oid, "x")
        s1.live_names_of(temp.oid)
        # a concurrent commit cannot conflict with transient-only reads
        other = s2.instantiate("Object")
        s2.commit()
        s1.instantiate("Object")
        s1.commit()  # must not raise

    def test_transients_do_not_grow_the_store(self, setup):
        store, tm = setup
        s = session_for(setup)
        before = len(store.table)
        for _ in range(20):
            s.instantiate_transient("Object", x=1)
        s.commit()
        assert len(store.table) == before
