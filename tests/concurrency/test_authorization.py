"""Tests for users, segments, privileges and enforcement in sessions."""

import pytest

from repro.concurrency import (
    Authorizer,
    Privilege,
    SessionObjectManager,
    TransactionManager,
    WORLD_SEGMENT,
)
from repro.errors import AuthorizationError
from repro.storage import DiskGeometry, SimulatedDisk, StableStore


@pytest.fixture
def auth():
    return Authorizer()


@pytest.fixture
def dba(auth):
    return auth.authenticate("DataCurator", "swordfish")


class TestUsers:
    def test_initial_dba_exists(self, auth):
        user = auth.authenticate("DataCurator", "swordfish")
        assert user.is_dba

    def test_bad_password_rejected(self, auth):
        with pytest.raises(AuthorizationError):
            auth.authenticate("DataCurator", "wrong")

    def test_unknown_user_rejected(self, auth):
        with pytest.raises(AuthorizationError):
            auth.authenticate("nobody", "x")

    def test_dba_creates_users(self, auth, dba):
        auth.create_user(dba, "ellen", "pw")
        assert auth.authenticate("ellen", "pw").name == "ellen"

    def test_non_dba_cannot_create_users(self, auth, dba):
        auth.create_user(dba, "ellen", "pw")
        ellen = auth.authenticate("ellen", "pw")
        with pytest.raises(AuthorizationError):
            auth.create_user(ellen, "eve", "pw")

    def test_duplicate_user_rejected(self, auth, dba):
        auth.create_user(dba, "ellen", "pw")
        with pytest.raises(AuthorizationError):
            auth.create_user(dba, "ellen", "pw2")

    def test_passwords_not_stored_in_clear(self, auth, dba):
        user = auth.create_user(dba, "ellen", "hunter2")
        assert "hunter2" not in user.password_hash


class TestSegments:
    def test_world_segment_is_public(self, auth, dba):
        auth.create_user(dba, "ellen", "pw")
        ellen = auth.authenticate("ellen", "pw")
        auth.check_read(ellen, WORLD_SEGMENT)
        auth.check_write(ellen, WORLD_SEGMENT)

    def test_private_segment_denies_by_default(self, auth, dba):
        auth.create_user(dba, "ellen", "pw")
        ellen = auth.authenticate("ellen", "pw")
        segment = auth.create_segment(dba, "payroll")
        with pytest.raises(AuthorizationError):
            auth.check_read(ellen, segment.segment_id)

    def test_owner_has_full_access(self, auth, dba):
        segment = auth.create_segment(dba, "payroll")
        auth.check_write(dba, segment.segment_id)

    def test_grant_read_only(self, auth, dba):
        auth.create_user(dba, "ellen", "pw")
        ellen = auth.authenticate("ellen", "pw")
        segment = auth.create_segment(dba, "payroll")
        auth.grant(dba, segment.segment_id, "ellen", Privilege.READ)
        auth.check_read(ellen, segment.segment_id)
        with pytest.raises(AuthorizationError):
            auth.check_write(ellen, segment.segment_id)

    def test_only_owner_may_grant(self, auth, dba):
        auth.create_user(dba, "ellen", "pw")
        auth.create_user(dba, "bob", "pw")
        ellen = auth.authenticate("ellen", "pw")
        segment = auth.create_segment(dba, "payroll")
        with pytest.raises(AuthorizationError):
            auth.grant(ellen, segment.segment_id, "bob", Privilege.READ)

    def test_grant_to_unknown_user_rejected(self, auth, dba):
        segment = auth.create_segment(dba, "payroll")
        with pytest.raises(AuthorizationError):
            auth.grant(dba, segment.segment_id, "ghost", Privilege.READ)

    def test_default_privilege(self, auth, dba):
        auth.create_user(dba, "ellen", "pw")
        ellen = auth.authenticate("ellen", "pw")
        segment = auth.create_segment(dba, "bulletin", Privilege.READ)
        auth.check_read(ellen, segment.segment_id)
        with pytest.raises(AuthorizationError):
            auth.check_write(ellen, segment.segment_id)

    def test_embedded_mode_unenforced(self, auth):
        auth.check_write(None, WORLD_SEGMENT)  # user None = embedded


class TestStateRoundtrip:
    def test_export_import(self, auth, dba):
        auth.create_user(dba, "ellen", "pw")
        segment = auth.create_segment(dba, "payroll")
        auth.grant(dba, segment.segment_id, "ellen", Privilege.READ)
        state = auth.export_state()
        fresh = Authorizer()
        fresh.import_state(state)
        ellen = fresh.authenticate("ellen", "pw")
        fresh.check_read(ellen, segment.segment_id)
        with pytest.raises(AuthorizationError):
            fresh.check_write(ellen, segment.segment_id)


class TestSessionEnforcement:
    @pytest.fixture
    def db(self):
        store = StableStore.format(
            SimulatedDisk(DiskGeometry(track_count=1024, track_size=1024))
        )
        return store, TransactionManager(store), Authorizer()

    def test_session_write_denied_on_foreign_segment(self, db):
        store, tm, auth = db
        dba = auth.authenticate("DataCurator", "swordfish")
        auth.create_user(dba, "ellen", "pw")
        ellen = auth.authenticate("ellen", "pw")
        segment = auth.create_segment(dba, "payroll")

        dba_session = SessionObjectManager(store, tm, user=dba, authorizer=auth)
        secret = dba_session.instantiate("Object", segment_id=segment.segment_id)
        dba_session.bind(secret.oid, "salary", 100)
        dba_session.commit()

        ellen_session = SessionObjectManager(store, tm, user=ellen, authorizer=auth)
        with pytest.raises(AuthorizationError):
            ellen_session.value_at(secret.oid, "salary")
        auth.grant(dba, segment.segment_id, "ellen", Privilege.READ)
        assert ellen_session.value_at(secret.oid, "salary") == 100
        with pytest.raises(AuthorizationError):
            ellen_session.bind(secret.oid, "salary", 0)

    def test_world_segment_open_to_all_sessions(self, db):
        store, tm, auth = db
        dba = auth.authenticate("DataCurator", "swordfish")
        auth.create_user(dba, "ellen", "pw")
        ellen = auth.authenticate("ellen", "pw")
        s = SessionObjectManager(store, tm, user=ellen, authorizer=auth)
        obj = s.instantiate("Object", x=1)
        s.commit()
        assert s.value_at(obj.oid, "x") == 1
