"""Examples as tests: every ``examples/*.py`` must run clean.

The examples are the adopter-facing face of the repo; a broken one is a
broken promise.  Each runs in a subprocess with the repo's ``src`` on
``PYTHONPATH``, exactly the way the README tells a reader to run them.
"""

import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, "examples/ must not be empty"


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        f"{example.name} exited {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )
