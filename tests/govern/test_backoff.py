"""Commit contention policy: backoff, storms, starvation aging."""

import pytest

from repro import GemStone
from repro.errors import OverloadedError, TransactionConflict
from repro.govern import CommitPolicy


def make_db(**policy_knobs):
    db = GemStone.create(track_count=1024, track_size=512)
    if policy_knobs:
        db.transaction_manager.policy = CommitPolicy(**policy_knobs)
    return db


def conflict_pair(db):
    """Two sessions racing on the same element; the second one loses."""
    loser = db.login()
    winner = db.login()
    loser.execute("World!contested")  # recorded read
    loser.execute("World!mine := 1")
    winner.execute("World!contested := 99")
    winner.commit()
    return loser, winner


class TestPolicyMath:
    def test_backoff_grows_exponentially(self):
        policy = CommitPolicy(jitter=0.0)
        assert policy.backoff_delay(1, False) == 1.0
        assert policy.backoff_delay(2, False) == 2.0
        assert policy.backoff_delay(3, False) == 4.0

    def test_storm_multiplier(self):
        policy = CommitPolicy(jitter=0.0, storm_backoff_factor=4.0)
        assert policy.backoff_delay(1, True) == 4.0

    def test_jitter_is_seeded(self):
        a = CommitPolicy(seed=7)
        b = CommitPolicy(seed=7)
        assert [a.backoff_delay(1, False) for _ in range(5)] == [
            b.backoff_delay(1, False) for _ in range(5)
        ]


class TestConflictBackoff:
    def test_conflict_charges_the_deterministic_clock(self):
        db = make_db(jitter=0.0)
        tm = db.transaction_manager
        loser, _ = conflict_pair(db)
        before = tm.backoff_clock.now
        with pytest.raises(TransactionConflict) as excinfo:
            loser.commit()
        assert tm.backoff_clock.now == before + 1.0  # streak 1: base delay
        assert excinfo.value.retry_after == 1.0
        assert tm.stats.backoff_units == 1.0

    def test_streak_escalates_the_delay(self):
        db = make_db(jitter=0.0, starvation_threshold=1_000_000)
        tm = db.transaction_manager
        loser = db.login()
        delays = []
        for round_no in range(3):
            winner = db.login()
            loser.execute("World!contested")
            loser.execute("World!mine := 1")
            winner.execute("World!contested := %d" % round_no)
            winner.commit()
            winner.close()
            before = tm.backoff_clock.now
            with pytest.raises(TransactionConflict):
                loser.commit()
            delays.append(tm.backoff_clock.now - before)
        assert delays == [1.0, 2.0, 4.0]

    def test_success_resets_the_streak(self):
        db = make_db(jitter=0.0)
        tm = db.transaction_manager
        loser, _ = conflict_pair(db)
        with pytest.raises(TransactionConflict):
            loser.commit()
        loser.execute("World!mine := 2")
        loser.commit()  # clean commit: streak cleared
        assert tm._streaks.get(loser.session.session_id) is None


class TestStormDetection:
    def test_sustained_aborts_trip_the_detector(self):
        db = make_db(jitter=0.0, storm_window=4, storm_threshold=0.5,
                     starvation_threshold=1_000_000)
        tm = db.transaction_manager
        loser = db.login()
        for round_no in range(4):
            winner = db.login()
            loser.execute("World!contested")
            loser.execute("World!mine := 1")
            winner.execute("World!contested := %d" % round_no)
            winner.commit()
            winner.close()
            with pytest.raises(TransactionConflict):
                loser.commit()
        assert tm.storming
        assert tm.stats.storms_detected == 1

    def test_storm_multiplies_backoff(self):
        # window of 3: the first abort ([success, abort]) is below the
        # threshold, the second ([abort, success, abort]) crosses it
        db = make_db(jitter=0.0, storm_window=3, storm_threshold=0.6,
                     backoff_factor=1.0, storm_backoff_factor=8.0,
                     starvation_threshold=1_000_000)
        tm = db.transaction_manager
        loser = db.login()
        delays = []
        for round_no in range(3):
            winner = db.login()
            loser.execute("World!contested")
            loser.execute("World!mine := 1")
            winner.execute("World!contested := %d" % round_no)
            winner.commit()
            winner.close()
            before = tm.backoff_clock.now
            with pytest.raises(TransactionConflict):
                loser.commit()
            delays.append(tm.backoff_clock.now - before)
        assert delays[0] == 1.0  # window not yet stormy
        assert delays[-1] == 8.0  # stormy window: spread the herd


class TestStarvationAging:
    def starve(self, db, rounds):
        tm = db.transaction_manager
        starving = db.login()
        for round_no in range(rounds):
            winner = db.login()
            starving.execute("World!contested")
            starving.execute("World!mine := 1")
            winner.execute("World!contested := %d" % round_no)
            winner.commit()
            winner.close()
            with pytest.raises(TransactionConflict):
                starving.commit()
        return tm, starving

    def test_streak_earns_priority(self):
        db = make_db(jitter=0.0, starvation_threshold=2)
        tm, starving = self.starve(db, rounds=2)
        assert tm._priority_session == starving.session.session_id
        assert tm.stats.priority_grants == 1

    def test_priority_pushes_other_committers_back(self):
        db = make_db(jitter=0.0, starvation_threshold=2)
        tm, starving = self.starve(db, rounds=2)
        other = db.login()
        other.execute("World!other := 5")
        with pytest.raises(OverloadedError) as excinfo:
            other.commit()
        assert excinfo.value.retry_after == tm.policy.priority_retry_after
        assert tm.stats.priority_rejections == 1
        # the pushed-back workspace is intact: nothing was discarded
        assert other.session.has_uncommitted_changes

    def test_priority_holder_finally_commits(self):
        db = make_db(jitter=0.0, starvation_threshold=2)
        tm, starving = self.starve(db, rounds=2)
        starving.execute("World!mine := 1")
        starving.commit()  # commits against a quiet log
        assert tm._priority_session is None
        # the grant released: others proceed normally again
        other = db.login()
        other.execute("World!other := 5")
        other.commit()

    def test_grant_lapses_on_the_clock(self):
        db = make_db(jitter=0.0, starvation_threshold=2, priority_timeout=10.0)
        tm, starving = self.starve(db, rounds=2)
        tm.backoff_clock.advance(11.0)
        other = db.login()
        other.execute("World!other := 5")
        other.commit()  # the stale grant no longer blocks anyone
        assert tm._priority_session is None


class TestRunTransaction:
    def test_retries_replay_the_body(self):
        db = make_db(jitter=0.0, max_attempts=4)
        tm = db.transaction_manager
        victim = db.login()
        rival = db.login()
        attempts = []

        def body(session):
            attempts.append(1)
            session.execute("World!contested")
            session.execute("World!mine := 7")
            if len(attempts) == 1:  # sabotage only the first attempt
                rival.execute("World!contested := 1")
                rival.commit()

        tx_time = tm.run_transaction(victim, body)
        assert tx_time > 0
        assert len(attempts) == 2
        assert tm.stats.conflict_retries == 1
        assert victim.execute("World!mine") == 7

    def test_exhaustion_raises_the_last_typed_error(self):
        db = make_db(jitter=0.0, max_attempts=2)
        tm = db.transaction_manager
        victim = db.login()
        rival = db.login()

        def body(session):
            session.execute("World!contested")
            session.execute("World!mine := 7")
            rival.execute("World!contested := (World!contested ifNil: [0]) + 1")
            rival.commit()

        with pytest.raises(TransactionConflict):
            tm.run_transaction(victim, body)
        assert tm.stats.conflict_retries == 2
