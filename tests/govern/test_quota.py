"""Session quotas: a greedy workspace is refused before it corrupts."""

import pytest

from repro import GemStone
from repro.errors import SessionQuotaExceeded
from repro.govern import QuotaSpec, SessionQuota


def governed_db(**caps):
    db = GemStone.create(track_count=512, track_size=512)
    db.quota_spec = QuotaSpec(**caps)
    return db


class TestChecks:
    def test_staged_write_cap(self):
        quota = SessionQuota(QuotaSpec(max_staged_writes=3))
        quota.check_staged_write(2)
        with pytest.raises(SessionQuotaExceeded) as excinfo:
            quota.check_staged_write(3)
        assert excinfo.value.resource == "staged writes"
        assert quota.rejections == 1

    def test_workspace_object_cap(self):
        quota = SessionQuota(QuotaSpec(max_workspace_objects=2))
        quota.check_workspace_object(1)
        with pytest.raises(SessionQuotaExceeded):
            quota.check_workspace_object(2)

    def test_none_disables_a_cap(self):
        quota = SessionQuota(QuotaSpec(max_staged_writes=None))
        quota.check_staged_write(10_000_000)


class TestStagedWrites:
    def test_over_quota_write_is_refused(self):
        session = governed_db(max_staged_writes=5).login()
        with pytest.raises(SessionQuotaExceeded) as excinfo:
            session.execute("1 to: 10 do: [:i | World at: i put: i]")
        assert excinfo.value.resource == "staged writes"

    def test_abort_frees_the_quota(self):
        session = governed_db(max_staged_writes=5).login()
        with pytest.raises(SessionQuotaExceeded):
            session.execute("1 to: 10 do: [:i | World at: i put: i]")
        session.abort()
        # smaller transactions fit: the session lives on
        session.execute("1 to: 3 do: [:i | World at: i put: i]")
        session.commit()
        assert session.execute("World at: 2") == 2

    def test_workspace_never_half_mutates(self):
        """The refused write must leave no trace in the staged state."""
        session = governed_db(max_staged_writes=2).login()
        with pytest.raises(SessionQuotaExceeded):
            session.execute("1 to: 10 do: [:i | World at: i put: i]")
        staged = len(session.session.write_log)
        assert staged == 2  # exactly the admitted writes, nothing torn

    def test_commit_resets_the_meter(self):
        session = governed_db(max_staged_writes=4).login()
        session.execute("1 to: 3 do: [:i | World at: i put: i]")
        session.commit()
        session.execute("4 to: 6 do: [:i | World at: i put: i]")
        session.commit()
        assert session.execute("World at: 6") == 6


class TestWorkspaceObjects:
    def test_creation_flood_is_refused(self):
        session = governed_db(max_workspace_objects=10).login()
        with pytest.raises(SessionQuotaExceeded) as excinfo:
            session.execute("1 to: 50 do: [:i | World at: i put: Object new]")
        assert excinfo.value.resource == "workspace objects"

    def test_transient_results_also_count(self):
        # select: materialises transient result objects in the workspace
        session = governed_db(max_workspace_objects=8).login()
        with pytest.raises(SessionQuotaExceeded):
            session.execute("""
                | bag |
                bag := Bag new.
                1 to: 50 do: [:i | bag add: (Object new)].
                bag
            """)

    def test_unrelated_sessions_have_independent_quotas(self):
        db = governed_db(max_staged_writes=5)
        first = db.login()
        second = db.login()
        with pytest.raises(SessionQuotaExceeded):
            first.execute("1 to: 10 do: [:i | World at: i put: i]")
        # the sibling's meter is untouched
        second.execute("1 to: 4 do: [:i | World at: i put: i]")
        second.commit()
