"""Error taxonomy: every robustness error is Retryable xor Fatal."""

import inspect

import pytest

from repro import errors
from repro.errors import (
    DeadlineExceeded,
    DegradedError,
    FatalError,
    GemStoneError,
    LinkTimeout,
    OverloadedError,
    QueryBudgetExceeded,
    RetryableError,
    SessionQuotaExceeded,
    StaleReplicaError,
    TransactionConflict,
    TransientDiskError,
)


def all_error_classes():
    return [
        cls
        for _, cls in inspect.getmembers(errors, inspect.isclass)
        if issubclass(cls, GemStoneError)
    ]


class TestDisjointness:
    def test_no_class_is_both_retryable_and_fatal(self):
        for cls in all_error_classes():
            both = issubclass(cls, RetryableError) and issubclass(cls, FatalError)
            assert not both, f"{cls.__name__} is both retryable and fatal"

    def test_verdict_classes_are_gemstone_errors(self):
        assert issubclass(RetryableError, GemStoneError)
        assert issubclass(FatalError, GemStoneError)


class TestClassification:
    RETRYABLE = [
        TransientDiskError,
        StaleReplicaError,
        TransactionConflict,
        LinkTimeout,
        OverloadedError,
        DeadlineExceeded,
    ]
    FATAL = [DegradedError, QueryBudgetExceeded, SessionQuotaExceeded]

    @pytest.mark.parametrize("cls", RETRYABLE)
    def test_transient_failures_are_retryable(self, cls):
        assert issubclass(cls, RetryableError)
        assert not issubclass(cls, FatalError)

    @pytest.mark.parametrize("cls", FATAL)
    def test_terminal_failures_are_fatal(self, cls):
        assert issubclass(cls, FatalError)
        assert not issubclass(cls, RetryableError)

    def test_original_hierarchies_survive_reclassification(self):
        # the taxonomy is a mixin, not a move: subsystem bases still hold
        assert issubclass(TransientDiskError, errors.DiskError)
        assert issubclass(StaleReplicaError, errors.StorageError)
        assert issubclass(TransactionConflict, errors.ConcurrencyError)
        assert issubclass(LinkTimeout, errors.ProtocolError)
        assert issubclass(OverloadedError, errors.GovernanceError)

    def test_one_policy_catches_all_transients(self):
        for cls in (TransientDiskError, TransactionConflict, LinkTimeout):
            try:
                raise cls("transient")
            except RetryableError as caught:
                assert isinstance(caught, cls)


class TestRetryAfter:
    def test_default_retry_after_is_unknown(self):
        assert RetryableError("x").retry_after is None
        assert LinkTimeout("x").retry_after is None

    def test_overloaded_carries_its_hint(self):
        err = OverloadedError("queue full", retry_after=2.5)
        assert err.retry_after == 2.5


class TestGovernanceErrors:
    def test_budget_exceeded_carries_meter_state(self):
        err = QueryBudgetExceeded("steps", 1001, 1000)
        assert (err.limit, err.spent, err.cap) == ("steps", 1001, 1000)
        assert "steps" in str(err)

    def test_quota_exceeded_carries_resource_state(self):
        err = SessionQuotaExceeded("staged writes", 10, 10)
        assert (err.resource, err.used, err.cap) == ("staged writes", 10, 10)
