"""The overload soak's invariants, at test size."""

from repro.govern import run_overload_soak


def small_soak(seed=11, **overrides):
    params = dict(
        clients=8,
        rounds=2,
        seed=seed,
        transient_rate=0.12,
        queue_capacity=24.0,
        track_count=1024,
    )
    params.update(overrides)
    return run_overload_soak(**params)


class TestOverloadSoak:
    def test_invariants_hold_under_the_storm(self):
        report = small_soak()
        assert report.torn_commits == 0, report.failures
        assert report.hung_sessions == 0, report.failures
        assert report.untyped_failures == 0, report.failures
        assert report.clean

    def test_progress_is_made_despite_adversaries(self):
        report = small_soak()
        assert report.commits > 0
        assert report.verified_keys > 0

    def test_adversaries_die_by_budget_and_quota(self):
        report = small_soak()
        # two spinner/allocator kills and hoarder quota kills per round
        assert report.budget_kills > 0
        assert report.quota_kills > 0
        # none of them survived (that would be recorded as a failure)
        assert not any("survived" in f for f in report.failures)

    def test_contention_is_governed_not_ignored(self):
        report = small_soak()
        assert report.conflicts > 0  # the engineered OCC race fired
        assert report.backoff_units > 0  # and was charged to the clock

    def test_session_gate_sheds_the_latecomer(self):
        report = small_soak()
        assert report.shed_logins == 1

    def test_queue_sheds_when_sized_below_demand(self):
        report = small_soak(queue_capacity=6.0)
        assert report.queue_sheds > 0
        assert report.client_backoffs > 0
        assert report.clean  # shedding never costs correctness

    def test_fault_layer_stays_active_and_masked(self):
        report = small_soak(transient_rate=0.2)
        assert report.injected_faults > 0
        assert report.disk_retries > 0
        assert report.torn_commits == 0

    def test_fixed_seed_is_deterministic(self):
        first = small_soak(seed=42)
        second = small_soak(seed=42)
        assert first.digest() == second.digest()

    def test_different_seeds_follow_different_schedules(self):
        # not guaranteed in principle, but these seeds do diverge — a
        # digest that never moves would mean it hashes nothing real
        assert small_soak(seed=1).digest() != small_soak(seed=2).digest()
