"""Executor admission control: gates, queue, breaker, deadlines."""

import pytest

from repro import GemStone
from repro.errors import DeadlineExceeded, OverloadedError, RetryableError
from repro.executor import HostConnection
from repro.executor.protocol import FrameType, decode_frame, encode_overloaded, encode_seq
from repro.faults.plan import FaultClock
from repro.govern import AdmissionController, CircuitBreaker


def make_controller(**knobs):
    return AdmissionController(clock=FaultClock(), **knobs)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(FaultClock(), failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(FaultClock(), failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.allow()

    def test_half_open_probe_closes_or_reopens(self):
        clock = FaultClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, reset_after=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # the half-open probe
        breaker.record_failure()  # probe failed: straight back open
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()  # probe succeeded: closed again
        assert breaker.allow()
        assert breaker.state == "closed"

    def test_retry_after_counts_down_on_the_clock(self):
        clock = FaultClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, reset_after=10.0)
        breaker.record_failure()
        assert breaker.retry_after() == 10.0
        clock.advance(4.0)
        assert breaker.retry_after() == 6.0


class TestSessionGate:
    def test_sessions_over_the_cap_are_shed(self):
        admission = make_controller(max_sessions=2)
        admission.admit_session()
        admission.admit_session()
        with pytest.raises(OverloadedError) as excinfo:
            admission.admit_session()
        assert excinfo.value.retry_after > 0
        assert admission.shed_sessions == 1

    def test_release_frees_a_slot(self):
        admission = make_controller(max_sessions=1)
        admission.admit_session()
        admission.release_session()
        admission.admit_session()  # no raise


class TestVirtualQueue:
    def test_backlog_drains_with_the_clock(self):
        admission = make_controller(queue_capacity=10.0, drain_rate=2.0)
        for _ in range(10):
            admission.admit_request()
        assert admission.backlog == 10.0
        admission.clock.advance(3.0)
        assert admission.backlog == 4.0  # 3 units * rate 2

    def test_overflow_is_shed_with_an_honest_retry_after(self):
        admission = make_controller(queue_capacity=4.0, drain_rate=1.0)
        for _ in range(4):
            admission.admit_request()
        with pytest.raises(OverloadedError) as excinfo:
            admission.admit_request()
        assert excinfo.value.retry_after == 1.0  # one cost unit of overflow
        assert admission.shed_requests == 1
        admission.clock.advance(1.0)
        admission.admit_request()  # room again

    def test_open_breaker_sheds_everything(self):
        admission = make_controller()
        admission.breaker.record_failure()  # threshold default 5
        for _ in range(4):
            admission.record_failure()
        with pytest.raises(OverloadedError):
            admission.admit_request()
        assert admission.breaker_sheds == 1


class TestProtocolFrames:
    def test_overloaded_frame_round_trips(self):
        frame = decode_frame(encode_overloaded(3.25))
        assert frame.type is FrameType.OVERLOADED
        assert frame.fields["retry_after"] == 3.25

    def test_seq_deadline_round_trips(self):
        inner = encode_overloaded(1.0)
        frame = decode_frame(encode_seq(9, inner, deadline=44.5))
        assert frame.seq == 9
        assert frame.deadline == 44.5
        assert frame.type is FrameType.OVERLOADED

    def test_seq_without_deadline_still_decodes(self):
        inner = encode_overloaded(1.0)
        frame = decode_frame(encode_seq(9, inner))
        assert frame.seq == 9
        assert frame.deadline is None


class TestExecutorIntegration:
    def make_db(self):
        return GemStone.create(track_count=1024, track_size=512)

    def test_login_over_the_gate_gets_overloaded_then_recovers(self):
        db = self.make_db()
        admission = make_controller(max_sessions=1, queue_capacity=1000.0)
        first = HostConnection(db, admission=admission)
        first.login("DataCurator", "swordfish")
        second = HostConnection(db, admission=admission, overload_attempts=2)
        with pytest.raises(OverloadedError):
            second.login("DataCurator", "swordfish")
        first.logout()  # frees the slot
        assert second.login("DataCurator", "swordfish") > 0

    def test_shed_request_is_retried_and_served(self):
        db = self.make_db()
        admission = make_controller(queue_capacity=3.0, drain_rate=1.0)
        conn = HostConnection(db, admission=admission)
        conn.login("DataCurator", "swordfish")
        for index in range(10):  # far past the queue capacity
            _, display = conn.execute(f"{index} + 1")
            assert display == str(index + 1)
        # progress required shedding + client backoff, not silent stalls
        assert conn.overload_backoffs > 0
        assert admission.shed_requests > 0

    def test_shedding_is_a_typed_retryable_error(self):
        db = self.make_db()
        admission = make_controller(queue_capacity=1.0, drain_rate=0.001)
        # one attempt: the client reports the shed instead of waiting it out
        conn = HostConnection(db, admission=admission, overload_attempts=1)
        conn.login("DataCurator", "swordfish")
        conn.execute("1 + 1")  # fills the queue for a long time
        with pytest.raises(RetryableError) as excinfo:
            conn.execute("2 + 2")
        assert isinstance(excinfo.value, OverloadedError)
        assert excinfo.value.retry_after > 0

    def test_expired_deadline_is_refused_typed(self):
        db = self.make_db()
        admission = make_controller()
        conn = HostConnection(db, admission=admission, request_deadline=5.0)
        conn.login("DataCurator", "swordfish")

        original = conn._deadline
        conn._deadline = lambda: admission.clock.now - 1.0  # already past
        with pytest.raises(DeadlineExceeded):
            conn.execute("1 + 1")
        assert conn.executor.deadline_rejections == 1

        conn._deadline = original  # fresh deadlines are honoured again
        _, display = conn.execute("1 + 1")
        assert display == "2"

    def test_breaker_trips_on_storage_failures_and_recovers(self):
        from repro.faults import FaultClock as FClock, FaultPlan, FaultSpec, FaultyDisk
        from repro.storage import DiskGeometry, SimulatedDisk

        inner = SimulatedDisk(DiskGeometry(track_count=2048, track_size=512))
        faulty = FaultyDisk(inner, FaultPlan(seed=1), FClock())
        db = GemStone.create(disk=faulty)
        clock = FaultClock()
        admission = AdmissionController(
            clock=clock,
            breaker=CircuitBreaker(clock, failure_threshold=1, reset_after=20.0),
            queue_capacity=100000.0,
        )
        conn = HostConnection(db, admission=admission, overload_attempts=1)
        conn.login("DataCurator", "swordfish")

        conn.execute("World!x := 1")
        faulty.plan = FaultPlan(seed=1, spec=FaultSpec(transient_rate=1.0))
        with pytest.raises(RetryableError):  # typed: TransientDiskError
            conn.commit()
        assert admission.breaker.state == "open"
        # while open, even cheap requests are shed with retry-after
        with pytest.raises(OverloadedError):
            conn.execute("1 + 1")
        assert admission.breaker_sheds >= 1

        faulty.plan = FaultPlan(seed=1)  # storage heals
        clock.advance(21.0)  # breaker goes half-open
        conn.execute("World!x := 7")  # the probe succeeds: breaker closes
        assert admission.breaker.state == "closed"
        assert conn.commit() is not None
