"""Query budgets: runaway queries die cleanly; the session survives."""

import pytest

from repro import GemStone
from repro.core import MemoryObjectManager
from repro.errors import QueryBudgetExceeded
from repro.govern import BudgetSpec, QueryBudget
from repro.opal import OpalEngine


def governed_engine(**limits):
    return OpalEngine(
        MemoryObjectManager(), budget=QueryBudget(BudgetSpec(**limits))
    )


class TestMeters:
    def test_step_cap(self):
        budget = QueryBudget(BudgetSpec(max_steps=10))
        budget.start_query()
        budget.charge_steps(10)
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            budget.charge_steps()
        assert excinfo.value.limit == "steps"
        assert budget.kills == 1

    def test_send_depth_cap_and_unwind(self):
        budget = QueryBudget(BudgetSpec(max_send_depth=2))
        budget.start_query()
        budget.enter_send()
        budget.enter_send()
        with pytest.raises(QueryBudgetExceeded):
            budget.enter_send()
        budget.exit_send()
        assert budget.send_depth == 2

    def test_allocation_cap(self):
        budget = QueryBudget(BudgetSpec(max_allocations=3))
        budget.start_query()
        budget.charge_allocation(3)
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            budget.charge_allocation()
        assert excinfo.value.limit == "allocations"

    def test_start_query_refuels(self):
        budget = QueryBudget(BudgetSpec(max_steps=5))
        budget.start_query()
        budget.charge_steps(5)
        budget.start_query()
        budget.charge_steps(5)  # fresh fuel: no raise
        assert budget.queries == 2

    def test_none_disables_a_meter(self):
        budget = QueryBudget(BudgetSpec(max_steps=None, max_send_depth=1))
        budget.start_query()
        budget.charge_steps(10_000_000)  # unmetered


class TestInterpreterFuel:
    def test_infinite_loop_is_killed(self):
        engine = governed_engine(max_steps=5_000)
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            engine.execute("[true] whileTrue: [1 + 1]")
        assert excinfo.value.limit == "steps"

    def test_runaway_recursion_is_killed(self):
        engine = governed_engine(max_send_depth=50)
        engine.execute("""
            Object subclass: #Spinner instVarNames: #().
            Spinner compile: 'spin ^self spin'
        """)
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            engine.execute("Spinner new spin")
        assert excinfo.value.limit == "send depth"

    def test_allocation_bomb_is_killed(self):
        engine = governed_engine(max_allocations=100)
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            engine.execute("1 to: 500 do: [:i | Object new]")
        assert excinfo.value.limit == "allocations"

    def test_honest_work_fits_the_default_budget(self):
        engine = governed_engine(
            **{
                "max_steps": BudgetSpec.default().max_steps,
                "max_send_depth": BudgetSpec.default().max_send_depth,
                "max_allocations": BudgetSpec.default().max_allocations,
            }
        )
        total = engine.execute(
            "| sum | sum := 0. 1 to: 100 do: [:i | sum := sum + i]. sum"
        )
        assert total == 5050


class TestSessionSurvival:
    def test_kill_leaves_the_session_usable(self):
        db = GemStone.create(track_count=512, track_size=512)
        db.budget_spec = BudgetSpec(max_steps=5_000)
        session = db.login()
        with pytest.raises(QueryBudgetExceeded):
            session.execute("[true] whileTrue: [1 + 1]")
        # fresh fuel, intact session: normal work proceeds and commits
        session.execute("World!answer := 42")
        session.commit()
        assert session.execute("World!answer") == 42
        assert session.budget.kills == 1

    def test_login_applies_the_database_spec(self):
        db = GemStone.create(track_count=512, track_size=512)
        db.budget_spec = BudgetSpec.default()
        session = db.login()
        assert session.budget is not None
        assert session.engine.budget is session.budget

    def test_no_spec_means_no_metering(self):
        db = GemStone.create(track_count=512, track_size=512)
        session = db.login()
        assert session.budget is None


class TestDeclarativeFuel:
    def build_staff(self, engine):
        engine.execute("""
            Object subclass: #Employee instVarNames: #(salary).
            Employee compile: 'salary ^salary'.
            Employee compile: 'salary: s salary := s'.
            | emps e |
            emps := Bag new.
            1 to: 20 do: [:i |
                e := Employee new.
                e salary: i * 100.
                emps add: e].
            World!employees := emps
        """)

    def test_declarative_evaluation_spends_fuel(self):
        engine = governed_engine(max_steps=1_000_000)
        self.build_staff(engine)
        n = engine.execute(
            "(World!employees select: [:e | e!salary > 1500]) size"
        )
        assert n == 5
        # at least one unit per member examined, on top of the bytecodes
        assert engine.budget.steps > 20

    def test_declarative_kill_propagates(self):
        engine = governed_engine(max_steps=1_000_000)
        self.build_staff(engine)
        # tighten the fuel after setup: the select alone must overspend
        engine.budget.spec = BudgetSpec(max_steps=15)
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            engine.execute("World!employees select: [:e | e!salary > 1500]")
        assert excinfo.value.limit == "steps"
