"""Unit tests: OPAL printString machinery and the bench harness."""

import pytest

from repro.bench import Table, ratio, stopwatch
from repro.core import Char, MemoryObjectManager, Ref, Symbol
from repro.opal import OpalEngine, disassemble
from repro.opal.kernel import print_string


@pytest.fixture
def om():
    om = MemoryObjectManager()
    OpalEngine(om)
    return om


class TestPrintString:
    @pytest.mark.parametrize(
        "value, text",
        [
            (None, "nil"),
            (True, "true"),
            (False, "false"),
            (42, "42"),
            (3.5, "3.5"),
            ("hi", "'hi'"),
            ("it's", "'it''s'"),
            (Symbol("sel"), "#sel"),
            (Char("x"), "$x"),
            ((1, "a"), "#(1 'a')"),
        ],
    )
    def test_immediates(self, om, value, text):
        assert print_string(om, value) == text

    def test_class_prints_its_name(self, om):
        assert print_string(om, om.class_named("Integer")) == "Integer"

    def test_small_object_shows_elements(self, om):
        obj = om.instantiate("Object", name="Ellen")
        assert print_string(om, obj) == "an Object(name: 'Ellen')"

    def test_big_object_elides(self, om):
        obj = om.instantiate("Object")
        for index in range(12):
            om.bind(obj, f"e{index}", index)
        assert print_string(om, obj) == "an Object"

    def test_depth_capped(self, om):
        a = om.instantiate("Object")
        b = om.instantiate("Object", inner=a)
        c = om.instantiate("Object", inner=b)
        om.bind(a, "inner", c)  # a cycle!
        text = print_string(om, c)
        assert "an Object" in text  # terminates despite the cycle

    def test_vowel_article(self, om):
        om.define_class("Employee", "Object")
        assert print_string(om, om.instantiate("Employee")) == "an Employee"
        om.define_class("Gate", "Object")
        assert print_string(om, om.instantiate("Gate")) == "a Gate"

    def test_refs_dereferenced(self, om):
        obj = om.instantiate("Object", name="x")
        assert print_string(om, Ref(obj.oid)) == "an Object(name: 'x')"


class TestDisassembler:
    def test_listing_shows_literals(self):
        from repro.opal import Compiler

        method = Compiler().compile_source("3 + 4")
        listing = disassemble(method.code, method.literals)
        assert "PUSH_CONST" in listing
        assert "; 3" in listing
        assert "SEND" in listing


class TestHarnessTable:
    def test_render_aligns_columns(self):
        table = Table("T", ["name", "value"])
        table.add("x", 1)
        table.add("longer-name", 123456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "longer-name" in text
        assert "123,456" in text

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_notes_rendered(self):
        table = Table("T", ["a"])
        table.add(1)
        table.note("footnote")
        assert "* footnote" in table.render()

    def test_float_formatting(self):
        table = Table("T", ["v"])
        table.add(0.00012)
        table.add(12.345)
        table.add(1234.5)
        text = table.render()
        assert "0.0001" in text
        assert "12.35" in text
        assert "1,234" in text or "1,235" in text

    def test_stopwatch_and_ratio(self):
        timing = stopwatch(lambda: sum(range(100)), repeat=2)
        assert timing.result == 4950
        assert timing.seconds >= 0
        assert ratio(2.0, 1.0) == "2.0x"
        assert ratio(1.0, 0.0) == "∞"
