"""View reads under TimeDial pins.

The harness exercises views only at "now"; these tests pin the temporal
composition the paper promises in sections 5.3/5.4 — a view dialed to a
past time shows the derived data *as of that time*, including pins set
via ``dial.at(...)``, safe-time pins, and explicit-time precedence.
"""

import pytest

from repro.core import MemoryObjectManager, TimeDial, View


@pytest.fixture
def om():
    return MemoryObjectManager()


def build_history(om):
    """Three epochs of salary churn; returns (emps, view, epoch_times)."""
    emps = om.instantiate("Object")
    ann = om.instantiate("Object", name="ann", salary=50)
    bob = om.instantiate("Object", name="bob", salary=150)
    om.bind(emps, om.new_alias(), ann)
    om.bind(emps, om.new_alias(), bob)
    t0 = om.now

    om.tick()
    om.bind(ann, "salary", 300)  # ann crosses the threshold
    t1 = om.now

    om.tick()
    cal = om.instantiate("Object", name="cal", salary=500)
    om.bind(emps, om.new_alias(), cal)
    om.bind(bob, "salary", 90)  # bob drops below it
    t2 = om.now

    def definition(store, time):
        for alias in emps.live_names(time):
            member = store.fetch(emps, alias, time)
            if store.value_at(member, "salary", time) > 100:
                yield store.value_at(member, "name", time)

    view = View(om, "highEarners", definition, sources=[emps])
    return emps, view, (t0, t1, t2)


def test_each_epoch_has_its_own_extension(om):
    _, view, (t0, t1, t2) = build_history(om)
    assert sorted(view.materialize(time=t0)) == ["bob"]
    assert sorted(view.materialize(time=t1)) == ["ann", "bob"]
    assert sorted(view.materialize(time=t2)) == ["ann", "cal"]
    assert sorted(view.materialize()) == ["ann", "cal"]  # now == t2


def test_dial_pin_selects_the_epoch(om):
    _, view, (t0, t1, _t2) = build_history(om)
    dial = TimeDial()
    dial.set(t0)
    assert sorted(view.materialize(dial=dial)) == ["bob"]
    dial.set(t1)
    assert sorted(view.materialize(dial=dial)) == ["ann", "bob"]


def test_scoped_pin_restores_and_nests(om):
    _, view, (t0, t1, _t2) = build_history(om)
    dial = TimeDial()
    dial.set(t1)
    with dial.at(t0):
        assert sorted(view.materialize(dial=dial)) == ["bob"]
        with dial.at(t1):
            assert sorted(view.materialize(dial=dial)) == ["ann", "bob"]
        assert sorted(view.materialize(dial=dial)) == ["bob"]
    # the outer pin is back in force after the scopes unwind
    assert sorted(view.materialize(dial=dial)) == ["ann", "bob"]


def test_explicit_time_wins_over_the_dial(om):
    _, view, (t0, _t1, t2) = build_history(om)
    dial = TimeDial()
    dial.set(t0)
    assert sorted(view.materialize(time=t2, dial=dial)) == ["ann", "cal"]


def test_dial_at_now_matches_undialed_read(om):
    _, view, _times = build_history(om)
    dial = TimeDial()  # is_now: time is None
    assert view.materialize(dial=dial) == view.materialize()


def test_safe_time_pin_hides_unsafe_epochs(om):
    _, view, (_t0, t1, _t2) = build_history(om)
    # a safe-time provider stuck at t1 models a replica whose commits
    # past t1 are not yet known-stable: the view must not show them
    dial = TimeDial(safe_time_provider=lambda: t1)
    assert dial.set_safe() == t1
    assert sorted(view.materialize(dial=dial)) == ["ann", "bob"]


def test_contains_respects_the_pinned_time(om):
    _, view, (t0, _t1, t2) = build_history(om)
    assert view.contains("cal", time=t2)
    assert not view.contains("cal", time=t0)


def test_pinned_view_ignores_later_writes(om):
    emps, view, (_t0, _t1, t2) = build_history(om)
    om.tick()
    om.bind(emps, om.new_alias(), om.instantiate("Object", name="dee", salary=900))
    dial = TimeDial()
    with dial.at(t2):
        assert "dee" not in view.materialize(dial=dial)
    assert "dee" in view.materialize()
