"""Unit tests for the time dial and views."""

import pytest

from repro.core import MemoryObjectManager, TimeDial, View
from repro.errors import ViewError


class TestTimeDial:
    def test_defaults_to_now(self):
        dial = TimeDial()
        assert dial.is_now
        assert dial.time is None

    def test_set_and_reset(self):
        dial = TimeDial()
        dial.set(7)
        assert dial.time == 7
        assert not dial.is_now
        dial.reset()
        assert dial.is_now

    def test_at_context_restores(self):
        dial = TimeDial()
        dial.set(3)
        with dial.at(9):
            assert dial.time == 9
        assert dial.time == 3

    def test_at_restores_on_exception(self):
        dial = TimeDial()
        with pytest.raises(RuntimeError):
            with dial.at(9):
                raise RuntimeError("boom")
        assert dial.is_now

    def test_safe_time_provider(self):
        dial = TimeDial(safe_time_provider=lambda: 42)
        assert dial.set_safe() == 42
        assert dial.time == 42

    def test_safe_time_without_provider(self):
        with pytest.raises(RuntimeError):
            TimeDial().set_safe()


@pytest.fixture
def om():
    return MemoryObjectManager()


class TestViews:
    def make_salary_view(self, om, threshold=100):
        emps = om.instantiate("Object")
        for name, salary in [("a", 50), ("b", 150), ("c", 200)]:
            member = om.instantiate("Object", name=name, salary=salary)
            om.bind(emps, om.new_alias(), member)

        def definition(store, time):
            for alias in emps.live_names(time):
                member = store.fetch(emps, alias, time)
                if store.value_at(member, "salary", time) > threshold:
                    yield store.value_at(member, "name", time)

        return emps, View(om, "highEarners", definition, sources=[emps])

    def test_materialize(self, om):
        _, view = self.make_salary_view(om)
        assert sorted(view.materialize()) == ["b", "c"]

    def test_view_is_an_object_with_identity(self, om):
        _, view = self.make_salary_view(om)
        assert om.contains(view.object.oid)
        assert om.value_at(view.object, "name") == "highEarners"

    def test_view_retains_source_connections(self, om):
        emps, view = self.make_salary_view(om)
        assert [s.oid for s in view.sources()] == [emps.oid]

    def test_view_tracks_source_updates(self, om):
        emps, view = self.make_salary_view(om)
        om.tick()
        member = om.instantiate("Object", name="d", salary=999)
        om.bind(emps, om.new_alias(), member)
        assert "d" in view.materialize()

    def test_view_at_past_time(self, om):
        emps, view = self.make_salary_view(om)
        t0 = om.now
        om.tick()
        member = om.instantiate("Object", name="d", salary=999)
        om.bind(emps, om.new_alias(), member)
        assert "d" not in view.materialize(time=t0)

    def test_view_with_dial(self, om):
        emps, view = self.make_salary_view(om)
        t0 = om.now
        om.tick()
        om.bind(emps, om.new_alias(), om.instantiate("Object", name="d", salary=999))
        dial = TimeDial()
        dial.set(t0)
        assert "d" not in view.materialize(dial=dial)

    def test_contains_and_iter(self, om):
        _, view = self.make_salary_view(om)
        assert view.contains("b")
        assert not view.contains("a")
        assert set(iter(view)) == {"b", "c"}

    def test_not_updatable_by_default(self, om):
        _, view = self.make_salary_view(om)
        assert not view.updatable
        with pytest.raises(ViewError):
            view.insert("x")
        with pytest.raises(ViewError):
            view.remove("x")

    def test_updatable_view_translates_inserts(self, om):
        emps = om.instantiate("Object")

        def definition(store, time):
            for alias in emps.live_names(time):
                yield store.fetch(emps, alias, time)

        def on_insert(store, view, member):
            store.bind(emps, store.new_alias(), member)

        view = View(om, "all", definition, sources=[emps], on_insert=on_insert)
        assert view.updatable
        member = om.instantiate("Object", name="x")
        view.insert(member)
        assert member in view.materialize()
