"""Unit tests for association tables (repro.core.history)."""

import pytest

from repro.core import MISSING, AssociationTable
from repro.errors import TimeTravelError


class TestRecording:
    def test_empty_table_has_no_value(self):
        table = AssociationTable()
        assert table.value_at(5) is MISSING
        assert table.current() is MISSING
        assert len(table) == 0

    def test_single_association_visible_from_its_time_onward(self):
        table = AssociationTable()
        table.record(3, "Sales")
        assert table.value_at(3) == "Sales"
        assert table.value_at(100) == "Sales"
        assert table.current() == "Sales"

    def test_value_missing_before_first_binding(self):
        table = AssociationTable()
        table.record(3, "Sales")
        assert table.value_at(2) is MISSING

    def test_same_time_record_overwrites(self):
        """Two writes in one transaction yield a single association."""
        table = AssociationTable()
        table.record(4, "draft")
        table.record(4, "final")
        assert len(table) == 1
        assert table.value_at(4) == "final"

    def test_recording_in_the_past_is_rejected(self):
        table = AssociationTable()
        table.record(7, 1)
        with pytest.raises(TimeTravelError):
            table.record(6, 2)

    def test_nil_is_a_real_binding_not_missing(self):
        """Figure 1: departure is a binding to nil, not an absence."""
        table = AssociationTable()
        table.record(2, "employee")
        table.record(8, None)
        assert table.value_at(7) == "employee"
        assert table.value_at(8) is None
        assert table.value_at(8) is not MISSING
        assert table.bound_at(8)


class TestLookup:
    def make_presidents(self):
        """The Figure 1 president element: Ayn at 5, Milton at 8."""
        table = AssociationTable()
        table.record(5, "Ayn Rand")
        table.record(8, "Milton Friedman")
        return table

    def test_figure1_president_at_10(self):
        table = self.make_presidents()
        assert table.value_at(10) == "Milton Friedman"

    def test_figure1_president_at_7(self):
        table = self.make_presidents()
        assert table.value_at(7) == "Ayn Rand"

    def test_boundary_time_sees_new_value(self):
        """A binding at time T is part of the state at time T."""
        table = self.make_presidents()
        assert table.value_at(8) == "Milton Friedman"
        assert table.value_at(5) == "Ayn Rand"

    def test_none_time_means_now(self):
        table = self.make_presidents()
        assert table.value_at(None) == "Milton Friedman"

    def test_first_and_last_time(self):
        table = self.make_presidents()
        assert table.first_time == 5
        assert table.last_time == 8

    def test_history_iterates_oldest_first(self):
        table = self.make_presidents()
        assert list(table.history()) == [(5, "Ayn Rand"), (8, "Milton Friedman")]

    def test_times(self):
        assert self.make_presidents().times() == (5, 8)


class TestValidityIntervals:
    def test_open_interval_for_current_binding(self):
        table = AssociationTable()
        table.record(5, "x")
        assert table.validity_interval(9) == (5, None)

    def test_closed_interval_for_superseded_binding(self):
        table = AssociationTable()
        table.record(5, "x")
        table.record(8, "y")
        assert table.validity_interval(6) == (5, 8)
        assert table.validity_interval(5) == (5, 8)

    def test_no_interval_before_first_binding(self):
        table = AssociationTable()
        table.record(5, "x")
        assert table.validity_interval(4) is None


class TestTruncation:
    def test_truncate_drops_later_associations(self):
        table = AssociationTable()
        for t in (2, 4, 6, 8):
            table.record(t, t * 10)
        dropped = table.truncate_to(5)
        assert dropped == 2
        assert table.times() == (2, 4)
        assert table.current() == 40

    def test_truncate_is_noop_when_nothing_later(self):
        table = AssociationTable()
        table.record(2, "a")
        assert table.truncate_to(2) == 0
        assert table.truncate_to(100) == 0


class TestCopy:
    def test_copy_is_independent(self):
        table = AssociationTable()
        table.record(1, "a")
        clone = table.copy()
        clone.record(5, "b")
        assert table.current() == "a"
        assert clone.current() == "b"


class TestMissingSentinel:
    def test_missing_is_falsy_singleton(self):
        assert not MISSING
        from repro.core.history import _Missing

        assert _Missing() is MISSING

    def test_missing_is_not_none(self):
        assert MISSING is not None
