"""Property-based tests for association tables (hypothesis).

Invariants checked against a naive model: a list of (time, value) pairs
where lookup at T scans for the last pair with time <= T.
"""

from bisect import bisect_right

from hypothesis import given, strategies as st

from repro.core import MISSING, AssociationTable

values = st.one_of(st.integers(), st.text(max_size=8), st.none(), st.booleans())


@st.composite
def recordings(draw):
    """A monotone sequence of (time, value) recordings."""
    times = draw(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=30)
    )
    times.sort()
    return [(t, draw(values)) for t in times]


def naive_value_at(pairs, time):
    """Reference model: last value recorded at or before *time*."""
    result = MISSING
    seen = {}
    for t, v in pairs:
        seen[t] = v  # same-time overwrite
    for t in sorted(seen):
        if t <= time:
            result = seen[t]
    return result


@given(recordings(), st.integers(min_value=-5, max_value=1005))
def test_value_at_matches_naive_model(pairs, probe):
    table = AssociationTable()
    for t, v in pairs:
        table.record(t, v)
    assert table.value_at(probe) == naive_value_at(pairs, probe) or (
        table.value_at(probe) is MISSING and naive_value_at(pairs, probe) is MISSING
    )


@given(recordings())
def test_times_strictly_increasing(pairs):
    table = AssociationTable()
    for t, v in pairs:
        table.record(t, v)
    times = table.times()
    assert all(a < b for a, b in zip(times, times[1:]))


@given(recordings())
def test_current_equals_lookup_at_infinity(pairs):
    table = AssociationTable()
    for t, v in pairs:
        table.record(t, v)
    assert table.current() == table.value_at(10**9) or (
        table.current() is MISSING and table.value_at(10**9) is MISSING
    )


@given(recordings(), st.integers(min_value=0, max_value=1000))
def test_history_is_append_only_under_reads(pairs, probe):
    """Reads never change the table (no hidden compaction)."""
    table = AssociationTable()
    for t, v in pairs:
        table.record(t, v)
    before = list(table.history())
    table.value_at(probe)
    table.current()
    table.validity_interval(probe)
    assert list(table.history()) == before


@given(recordings(), st.integers(min_value=0, max_value=1000))
def test_truncate_then_lookup_agrees_with_past_lookup(pairs, cut):
    """truncate_to(T) makes 'now' identical to the old state at T."""
    table = AssociationTable()
    clone = AssociationTable()
    for t, v in pairs:
        table.record(t, v)
        clone.record(t, v)
    old_at_cut = table.value_at(cut)
    clone.truncate_to(cut)
    assert clone.current() == old_at_cut or (
        clone.current() is MISSING and old_at_cut is MISSING
    )


@given(recordings(), st.integers(min_value=0, max_value=1000))
def test_validity_interval_brackets_probe(pairs, probe):
    table = AssociationTable()
    for t, v in pairs:
        table.record(t, v)
    interval = table.validity_interval(probe)
    if interval is None:
        assert table.value_at(probe) is MISSING
    else:
        start, end = interval
        assert start <= probe
        if end is not None:
            assert probe < end
        # every time in [start, end) sees the same value
        assert table.value_at(start) == table.value_at(probe) or (
            table.value_at(start) is MISSING
        )


@given(recordings())
def test_copy_equals_original(pairs):
    table = AssociationTable()
    for t, v in pairs:
        table.record(t, v)
    assert list(table.copy().history()) == list(table.history())
