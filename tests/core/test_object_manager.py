"""Unit tests for the in-memory Object Manager."""

import pytest

from repro.core import MISSING, GemClass, MemoryObjectManager, Ref, Symbol
from repro.errors import (
    ClassProtocolError,
    DoesNotUnderstand,
    NoSuchObject,
    TimeTravelError,
)


@pytest.fixture
def om():
    return MemoryObjectManager()


class TestBootstrap:
    def test_kernel_classes_exist(self, om):
        for name in ("Object", "Class", "Integer", "String", "Set", "Dictionary"):
            assert om.has_class(name)

    def test_hierarchy_wiring(self, om):
        integer = om.class_named("Integer")
        magnitude = om.class_named("Magnitude")
        assert integer.is_subclass_of(om, magnitude)
        assert not magnitude.is_subclass_of(om, integer)

    def test_classes_are_objects(self, om):
        cls = om.class_named("Integer")
        assert om.contains(cls.oid)
        assert isinstance(om.object(cls.oid), GemClass)


class TestInstantiation:
    def test_instantiate_assigns_fresh_oids(self, om):
        a = om.instantiate("Object")
        b = om.instantiate("Object")
        assert a.oid != b.oid

    def test_keyword_elements_prebound(self, om):
        obj = om.instantiate("Object", name="Ellen", salary=24650)
        assert om.value_at(obj, "name") == "Ellen"
        assert om.value_at(obj, "salary") == 24650

    def test_objects_coerced_to_refs(self, om):
        dept = om.instantiate("Object")
        emp = om.instantiate("Object", dept=dept)
        assert om.value_at(emp, "dept") == Ref(dept.oid)
        assert om.fetch(emp, "dept") is dept

    def test_no_such_object(self, om):
        with pytest.raises(NoSuchObject):
            om.object(999999)

    def test_object_count_unbounded(self, om):
        """Paper 4.3: ST80 allowed only 32K objects; GemStone must not."""
        base = om.object_count()
        for _ in range(500):
            om.instantiate("Object")
        assert om.object_count() == base + 500


class TestClock:
    def test_writes_share_transaction_time_until_tick(self, om):
        obj = om.instantiate("Object")
        om.bind(obj, "a", 1)
        om.bind(obj, "b", 2)
        assert obj.elements["a"].last_time == obj.elements["b"].last_time

    def test_tick_advances(self, om):
        start = om.now
        om.tick()
        assert om.now == start + 1
        om.tick(5)
        assert om.now == start + 6

    def test_tick_rejects_nonpositive(self, om):
        with pytest.raises(ValueError):
            om.tick(0)

    def test_advance_to_cannot_rewind(self, om):
        om.advance_to(10)
        with pytest.raises(TimeTravelError):
            om.advance_to(5)

    def test_past_reads_ignore_new_writes(self, om):
        obj = om.instantiate("Object", x=1)
        t0 = om.now
        om.tick()
        om.bind(obj, "x", 2)
        assert om.value_at(obj, "x", t0) == 1
        assert om.value_at(obj, "x") == 2


class TestClassDefinition:
    def test_define_and_lookup(self, om):
        emp = om.define_class("Employee", "Object", ("name", "salary"))
        assert om.class_named("Employee") is emp
        assert emp.instvar_names == ("name", "salary")

    def test_subclass_inherits_instvars(self, om):
        om.define_class("Employee", "Object", ("name", "salary"))
        mgr = om.define_class("Manager", "Employee", ("department",))
        assert mgr.all_instvar_names(om) == ("name", "salary", "department")

    def test_duplicate_class_rejected(self, om):
        om.define_class("Employee")
        with pytest.raises(ClassProtocolError):
            om.define_class("Employee")

    def test_unknown_class(self, om):
        with pytest.raises(ClassProtocolError):
            om.class_named("NoSuch")

    def test_instances_of_includes_subclasses(self, om):
        om.define_class("Employee", "Object")
        om.define_class("Manager", "Employee")
        e = om.instantiate("Employee")
        m = om.instantiate("Manager")
        found = {o.oid for o in om.instances_of("Employee")}
        assert {e.oid, m.oid} <= found


class TestClassOf:
    @pytest.mark.parametrize(
        "value, class_name",
        [
            (None, "UndefinedObject"),
            (True, "Boolean"),
            (3, "Integer"),
            (3.5, "Float"),
            ("hi", "String"),
            (Symbol("hi"), "Symbol"),
        ],
    )
    def test_immediates(self, om, value, class_name):
        assert om.class_of(value).name == class_name

    def test_structured(self, om):
        om.define_class("Employee")
        e = om.instantiate("Employee")
        assert om.class_of(e).name == "Employee"
        assert om.class_of(e.ref).name == "Employee"

    def test_is_kind_of(self, om):
        assert om.is_kind_of(3, "Magnitude")
        assert not om.is_kind_of(3, "String")


class TestDispatch:
    def test_send_primitive(self, om):
        emp = om.define_class("Employee", "Object")
        emp.define_primitive("name", lambda m, r: m.value_at(r, "name"))
        e = om.instantiate("Employee", name="Ellen")
        assert om.send(e, "name") == "Ellen"

    def test_inherited_method(self, om):
        emp = om.define_class("Employee", "Object")
        om.define_class("Manager", "Employee")
        emp.define_primitive("kind", lambda m, r: "employee")
        m = om.instantiate("Manager")
        assert om.send(m, "kind") == "employee"

    def test_override_wins(self, om):
        emp = om.define_class("Employee", "Object")
        mgr = om.define_class("Manager", "Employee")
        emp.define_primitive("kind", lambda m, r: "employee")
        mgr.define_primitive("kind", lambda m, r: "manager")
        assert om.send(om.instantiate("Manager"), "kind") == "manager"
        assert om.send(om.instantiate("Employee"), "kind") == "employee"

    def test_does_not_understand(self, om):
        with pytest.raises(DoesNotUnderstand) as exc:
            om.send(3, "frobnicate")
        assert exc.value.selector == "frobnicate"

    def test_class_side_method(self, om):
        emp = om.define_class("Employee", "Object")
        emp.define_class_primitive("new", lambda m, r: m.instantiate(r))
        inst = om.send(emp, "new")
        assert om.class_of(inst) is emp

    def test_responds_to(self, om):
        emp = om.define_class("Employee", "Object")
        emp.define_primitive("name", lambda m, r: None)
        e = om.instantiate("Employee")
        assert om.responds_to(e, "name")
        assert not om.responds_to(e, "salary")


class TestAccessRecording:
    def test_observers_see_reads_and_writes(self, om):
        reads, writes = [], []
        om.observe(on_read=lambda o, n: reads.append((o, n)),
                   on_write=lambda o, n: writes.append((o, n)))
        obj = om.instantiate("Object")
        om.bind(obj, "x", 1)
        om.value_at(obj, "x")
        assert (obj.oid, "x") in writes
        assert (obj.oid, "x") in reads


class TestAliases:
    def test_aliases_are_unique_symbols(self, om):
        a, b = om.new_alias(), om.new_alias()
        assert isinstance(a, Symbol)
        assert a != b
