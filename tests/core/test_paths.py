"""Unit tests for path expressions, including the Figure 1 queries."""

import pytest

from repro.core import (
    MemoryObjectManager,
    Path,
    Step,
    TimeDial,
    assign,
    exists,
    parse_path,
    resolve,
)
from repro.errors import PathError


class TestParsing:
    def test_identifiers(self):
        path = parse_path("Departments!A16!Managers")
        assert path.names == ("Departments", "A16", "Managers")

    def test_quoted_components(self):
        path = parse_path("'Acme Corp'!'president'")
        assert path.names == ("Acme Corp", "president")

    def test_quote_escaping(self):
        path = parse_path("'O''Brien'")
        assert path.names == ("O'Brien",)

    def test_integer_components(self):
        path = parse_path("rows!2!1")
        assert path.names == ("rows", 2, 1)

    def test_time_pins(self):
        path = parse_path("'Acme Corp'!'president'@10")
        assert path.steps[-1] == Step("president", at=10)

    def test_time_pin_mid_path(self):
        path = parse_path("'Acme Corp'!'president'@7!city")
        assert path.steps[1] == Step("president", at=7)
        assert path.steps[2] == Step("city", at=None)

    def test_whitespace_tolerated(self):
        path = parse_path("a ! b @ 3 ! c")
        assert path.steps == (Step("a"), Step("b", 3), Step("c"))

    @pytest.mark.parametrize("bad", ["", "a!!b", "a!", "!a", "a@", "a@x", "'unterminated", "a?b"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(PathError):
            parse_path(bad)

    def test_round_trip_str(self):
        text = "'Acme Corp'!president@7!city"
        assert str(parse_path(text)) == text

    def test_extended(self):
        path = parse_path("a!b").extended("c", 5)
        assert path.steps[-1] == Step("c", 5)


@pytest.fixture
def figure1():
    """Build the Figure 1 database: Acme Corp with presidents and cities."""
    om = MemoryObjectManager()
    world = om.instantiate("Object")
    acme = om.instantiate("Object")
    ayn = om.instantiate("Object")
    milton = om.instantiate("Object")

    om.advance_to(2)
    om.bind(world, "Acme Corp", acme)
    om.bind(acme, 1821, ayn)          # Ayn hired as employee 1821
    om.bind(ayn, "name", "Ayn Rand")
    om.bind(ayn, "city", "Portland")

    om.advance_to(5)
    om.bind(acme, "president", ayn)
    om.bind(milton, "name", "Milton Friedman")
    om.bind(milton, "city", "Seattle")

    om.advance_to(8)
    om.bind(acme, "president", milton)   # new president
    om.bind(milton, "city", "Portland")  # move required by the appointment
    om.unbind(acme, 1821)                # Ayn leaves (value nil at time 8)

    om.advance_to(9)
    om.bind(ayn, "city", "San Diego")    # Ayn moves after leaving

    om.advance_to(11)
    return om, world


class TestFigure1Resolution:
    def test_current_president(self, figure1):
        om, world = figure1
        pres = resolve(om, world, "'Acme Corp'!president")
        assert om.value_at(pres, "name") == "Milton Friedman"

    def test_president_at_10(self, figure1):
        om, world = figure1
        pres = resolve(om, world, "'Acme Corp'!president@10")
        assert om.value_at(pres, "name") == "Milton Friedman"

    def test_president_at_7_is_previous(self, figure1):
        om, world = figure1
        pres = resolve(om, world, "'Acme Corp'!president@7")
        assert om.value_at(pres, "name") == "Ayn Rand"

    def test_previous_presidents_current_city(self, figure1):
        """World!'Acme Corp'!'president'@7!city == San Diego (paper text)."""
        om, world = figure1
        assert resolve(om, world, "'Acme Corp'!president@7!city") == "San Diego"

    def test_time_dial_applies_to_unpinned_components(self, figure1):
        om, world = figure1
        dial = TimeDial()
        dial.set(7)
        # dialled to 7, the president is Ayn and her city then was Portland
        assert resolve(om, world, "'Acme Corp'!president!city", dial=dial) == "Portland"

    def test_pin_overrides_dial(self, figure1):
        om, world = figure1
        dial = TimeDial()
        dial.set(10)
        pres = resolve(om, world, "'Acme Corp'!president@7", dial=dial)
        assert om.value_at(pres, "name") == "Ayn Rand"

    def test_departed_employee_reads_nil(self, figure1):
        om, world = figure1
        assert resolve(om, world, "'Acme Corp'!1821") is None
        past = resolve(om, world, "'Acme Corp'!1821@7")
        assert om.value_at(past, "name") == "Ayn Rand"


class TestResolutionErrors:
    def test_missing_component_raises(self):
        om = MemoryObjectManager()
        obj = om.instantiate("Object")
        with pytest.raises(PathError):
            resolve(om, obj, "nothing!here")

    def test_missing_component_with_default(self):
        om = MemoryObjectManager()
        obj = om.instantiate("Object")
        assert resolve(om, obj, "nothing!here", default="fallback") == "fallback"

    def test_navigating_through_simple_value_raises(self):
        om = MemoryObjectManager()
        obj = om.instantiate("Object", x=3)
        with pytest.raises(PathError):
            resolve(om, obj, "x!y")

    def test_navigating_through_nil_raises(self):
        om = MemoryObjectManager()
        obj = om.instantiate("Object", x=None)
        with pytest.raises(PathError):
            resolve(om, obj, "x!y")

    def test_exists(self):
        om = MemoryObjectManager()
        obj = om.instantiate("Object", x=3)
        assert exists(om, obj, "x")
        assert not exists(om, obj, "y")
        assert not exists(om, obj, "x!y")


class TestAssignment:
    def test_assign_leaf(self):
        om = MemoryObjectManager()
        root = om.instantiate("Object")
        dept = om.instantiate("Object")
        om.bind(root, "dept", dept)
        assign(om, root, "dept!budget", 142000)
        assert resolve(om, root, "dept!budget") == 142000

    def test_assign_single_component(self):
        om = MemoryObjectManager()
        root = om.instantiate("Object")
        assign(om, root, "name", "Acme")
        assert om.value_at(root, "name") == "Acme"

    def test_assign_object_coerced_to_ref(self):
        om = MemoryObjectManager()
        root = om.instantiate("Object")
        child = om.instantiate("Object")
        assign(om, root, "child", child)
        assert resolve(om, root, "child") is child

    def test_cannot_assign_into_past(self):
        om = MemoryObjectManager()
        root = om.instantiate("Object")
        with pytest.raises(PathError):
            assign(om, root, "x@3", 1)

    def test_assignment_bypasses_class_protocol(self):
        """Section 4.3: path assignment circumvents the message protocol."""
        om = MemoryObjectManager()
        emp = om.define_class("Employee", "Object", ("salary",))
        e = om.instantiate(emp, salary=10)
        assign(om, e, "salary", 20)  # no setter message involved
        assert om.value_at(e, "salary") == 20

    def test_assign_empty_path_rejected(self):
        om = MemoryObjectManager()
        root = om.instantiate("Object")
        with pytest.raises(PathError):
            assign(om, root, Path(()), 1)
