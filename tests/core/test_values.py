"""Unit tests for immediate values (repro.core.values)."""

import pytest

from repro.core import Char, Ref, Symbol, is_immediate, is_value
from repro.core.values import check_element_name, check_value


class TestSymbol:
    def test_interning(self):
        assert Symbol("abc") is Symbol("abc")

    def test_equal_to_plain_string(self):
        assert Symbol("abc") == "abc"

    def test_repr_has_hash_prefix(self):
        assert repr(Symbol("abc")) == "#abc"


class TestChar:
    def test_roundtrip(self):
        assert Char("a").char == "a"

    def test_equality_and_hash(self):
        assert Char("a") == Char("a")
        assert hash(Char("a")) == hash(Char("a"))
        assert Char("a") != Char("b")

    def test_ordering(self):
        assert Char("a") < Char("b")

    def test_single_character_required(self):
        with pytest.raises(ValueError):
            Char("ab")

    def test_repr(self):
        assert repr(Char("x")) == "$x"


class TestRef:
    def test_equality_by_oid(self):
        assert Ref(3) == Ref(3)
        assert Ref(3) != Ref(4)

    def test_hashable(self):
        assert len({Ref(1), Ref(1), Ref(2)}) == 2

    def test_not_equal_to_int(self):
        assert Ref(3) != 3


class TestPredicates:
    @pytest.mark.parametrize("v", [1, 1.5, "x", Symbol("x"), Char("x"), True, None])
    def test_immediates(self, v):
        assert is_immediate(v)
        assert is_value(v)

    def test_ref_is_value_not_immediate(self):
        assert not is_immediate(Ref(1))
        assert is_value(Ref(1))

    def test_arbitrary_python_objects_rejected(self):
        assert not is_value(object())
        with pytest.raises(TypeError):
            check_value(object())

    def test_check_value_passes_through(self):
        assert check_value(3) == 3

    @pytest.mark.parametrize("name", ["x", Symbol("x"), 3, Char("x")])
    def test_valid_element_names(self, name):
        assert check_element_name(name) == name

    @pytest.mark.parametrize("name", [True, 1.5, None, object()])
    def test_invalid_element_names(self, name):
        with pytest.raises(TypeError):
            check_element_name(name)
