"""``TimeDial.set_safe`` must never dial past the commit clock (§5.4).

SafeTime is "the most recent state for which no currently running
transaction can make changes" — by construction it cannot exceed the
latest *committed* transaction time.  A provider that answers something
newer (a skewed clock, a provider wired to the wrong counter) must be
clamped to the commit ceiling, counted, and reported to observability.
"""

import pytest

from repro import GemStone
from repro.core.timedial import TimeDial


def test_honest_provider_is_not_clamped():
    dial = TimeDial(
        safe_time_provider=lambda: 5, commit_time_provider=lambda: 9
    )
    assert dial.set_safe() == 5
    assert dial.time == 5
    assert dial.clamps == 0


def test_too_new_safetime_is_clamped_to_the_commit_ceiling():
    dial = TimeDial(
        safe_time_provider=lambda: 12, commit_time_provider=lambda: 9
    )
    assert dial.set_safe() == 9
    assert dial.time == 9
    assert dial.clamps == 1


def test_clamp_hook_fires_once_per_clamp():
    fired = []
    dial = TimeDial(
        safe_time_provider=lambda: 100, commit_time_provider=lambda: 3
    )
    dial.on_clamp = lambda: fired.append(True)
    dial.set_safe()
    dial.set_safe()
    assert dial.clamps == 2
    assert len(fired) == 2


def test_equal_times_do_not_count_as_clamps():
    dial = TimeDial(
        safe_time_provider=lambda: 7, commit_time_provider=lambda: 7
    )
    assert dial.set_safe() == 7
    assert dial.clamps == 0


def test_dial_without_ceiling_trusts_the_provider():
    dial = TimeDial(safe_time_provider=lambda: 42)
    assert dial.set_safe() == 42
    assert dial.clamps == 0


def test_dial_without_provider_raises():
    with pytest.raises(RuntimeError):
        TimeDial().set_safe()


def test_session_dials_carry_the_store_commit_ceiling():
    """A real session's dial clamps a lying provider and reports it."""
    db = GemStone.create()
    session = db.login()
    session.execute("World!x := 1")
    session.commit()
    dial = session.time_dial

    # the honest wiring: SafeTime == the commit clock, no clamp
    honest = dial.set_safe()
    assert honest == db.store.last_tx_time
    assert dial.clamps == 0

    # sabotage the provider: pretend a future time is already safe
    dial._safe_time_provider = lambda: db.store.last_tx_time + 1000
    clamped = dial.set_safe()
    assert clamped == db.store.last_tx_time
    assert dial.clamps == 1
    # the clamp reached the database's observability counters
    counters = db.observability()["counters"]["counters"]
    assert counters.get("safetime.clamps") == 1
    assert db.observability()["governance"]["safetime_clamps"] == 1
    session.close()
