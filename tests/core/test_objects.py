"""Unit tests for GemObject (repro.core.objects)."""

import pytest

from repro.core import MISSING, GemObject, Ref
from repro.errors import ElementNotFound


def make(oid=100, class_oid=1):
    return GemObject(oid=oid, class_oid=class_oid)


class TestBinding:
    def test_bind_and_read(self):
        obj = make()
        obj.bind("name", "Ellen", time=1)
        assert obj.value("name") == "Ellen"

    def test_unbound_element_is_missing(self):
        obj = make()
        assert obj.value_at("salary") is MISSING

    def test_value_raises_when_missing(self):
        obj = make()
        with pytest.raises(ElementNotFound):
            obj.value("salary")

    def test_optional_elements_cost_nothing(self):
        """Instances omit optional variables without any placeholder."""
        obj = make()
        obj.bind("name", "Ellen", time=1)
        assert len(obj.elements) == 1

    def test_new_elements_addable_to_existing_instances(self):
        obj = make()
        obj.bind("name", "Ellen", time=1)
        obj.bind("phones", Ref(42), time=5)
        assert obj.value("phones") == Ref(42)
        assert obj.value_at("phones", 4) is MISSING

    def test_integer_element_names(self):
        """Arrays are sets with numbers as element names (section 5.2)."""
        obj = make()
        obj.bind(1, "Anders", time=1)
        obj.bind(2, "Roberts", time=1)
        assert obj.value(1) == "Anders"
        assert obj.value(2) == "Roberts"

    def test_element_name_type_checked(self):
        obj = make()
        with pytest.raises(TypeError):
            obj.bind(object(), "x", time=1)
        with pytest.raises(TypeError):
            obj.bind(True, "x", time=1)

    def test_element_value_type_checked(self):
        obj = make()
        with pytest.raises(TypeError):
            obj.bind("x", object(), time=1)

    def test_unbind_records_nil(self):
        obj = make()
        obj.bind("car", Ref(7), time=3)
        obj.unbind("car", time=9)
        assert obj.value("car") is None
        assert obj.value_at("car", 8) == Ref(7)


class TestLiveness:
    def test_is_live_false_for_nil_binding(self):
        obj = make()
        obj.bind("x", None, time=1)
        assert obj.has_element("x")
        assert not obj.is_live("x")

    def test_live_names_excludes_departed(self):
        obj = make()
        obj.bind("a", 1, time=1)
        obj.bind("b", 2, time=1)
        obj.unbind("a", time=5)
        assert obj.live_names() == ["b"]
        assert obj.live_names(4) == ["a", "b"]

    def test_items_at_time(self):
        obj = make()
        obj.bind("a", 1, time=1)
        obj.bind("a", 10, time=5)
        assert dict(obj.items_at(3)) == {"a": 1}
        assert dict(obj.items_at()) == {"a": 10}


class TestIdentityAndEquivalence:
    def test_identity_is_the_oid(self):
        a = make(oid=1)
        b = make(oid=2)
        a.bind("x", 1, time=1)
        b.bind("x", 1, time=1)
        # structurally equivalent, but distinct entities
        assert a.equivalent_to(b)
        assert a.oid != b.oid

    def test_equivalence_respects_time(self):
        a = make(oid=1)
        b = make(oid=2)
        a.bind("x", 1, time=1)
        b.bind("x", 1, time=1)
        a.bind("x", 2, time=5)
        assert not a.equivalent_to(b)
        assert a.equivalent_to(b, time=3)

    def test_ref_property(self):
        obj = make(oid=77)
        assert obj.ref == Ref(77)


class TestReferences:
    def test_referenced_oids_current_state(self):
        obj = make()
        obj.bind("dept", Ref(5), time=1)
        obj.bind("dept", Ref(9), time=4)
        assert obj.referenced_oids() == {9}
        assert obj.referenced_oids(2) == {5}

    def test_all_referenced_oids_spans_history(self):
        obj = make()
        obj.bind("dept", Ref(5), time=1)
        obj.bind("dept", Ref(9), time=4)
        assert obj.all_referenced_oids() == {5, 9}

    def test_history_of(self):
        obj = make()
        obj.bind("salary", 10, time=1)
        obj.bind("salary", 20, time=3)
        assert list(obj.history_of("salary")) == [(1, 10), (3, 20)]
        with pytest.raises(ElementNotFound):
            obj.history_of("nope")


class TestMaintenance:
    def test_last_modified(self):
        obj = make()
        obj.created_at = 2
        assert obj.last_modified() == 2
        obj.bind("a", 1, time=4)
        obj.bind("b", 1, time=9)
        assert obj.last_modified() == 9

    def test_copy_shell_is_deep(self):
        obj = make()
        obj.bind("a", 1, time=1)
        clone = obj.copy_shell()
        clone.bind("a", 2, time=5)
        assert obj.value("a") == 1
        assert clone.value("a") == 2
        assert clone.oid == obj.oid
