"""AssociationTable boundary behavior: truncation and interval edges.

Recovery rolls cached objects back with ``truncate_to`` and directories
index past states with ``validity_interval``; both are bisect-driven,
so the exact-boundary cases (truncate at precisely the last safe time,
query at precisely the first binding time) are where an off-by-one
would corrupt history silently.
"""

import pytest

from repro.core.history import MISSING, AssociationTable
from repro.errors import TimeTravelError


def table(*pairs):
    t = AssociationTable()
    for time, value in pairs:
        t.record(time, value)
    return t


# -- truncate_to boundaries -------------------------------------------------

def test_truncate_exactly_at_last_time_drops_nothing():
    t = table((3, "a"), (7, "b"))
    assert t.truncate_to(7) == 0
    assert t.times() == (3, 7)
    assert t.value_at() == "b"


def test_truncate_between_times_drops_the_newer_binding():
    t = table((3, "a"), (7, "b"))
    assert t.truncate_to(6) == 1
    assert t.times() == (3,)
    assert t.value_at() == "a"


def test_truncate_exactly_at_first_time_keeps_the_first_binding():
    t = table((3, "a"), (7, "b"), (9, "c"))
    assert t.truncate_to(3) == 2
    assert t.times() == (3,)
    assert t.value_at() == "a"


def test_truncate_before_first_time_empties_the_table():
    t = table((3, "a"), (7, "b"))
    assert t.truncate_to(2) == 2
    assert t.times() == ()
    assert t.value_at() is MISSING
    assert t.first_time is None
    assert t.last_time is None


def test_record_after_truncate_continues_history():
    t = table((3, "a"), (7, "b"))
    t.truncate_to(5)
    t.record(6, "rewritten")
    assert t.times() == (3, 6)
    assert t.value_at(6) == "rewritten"
    assert t.value_at(5) == "a"
    # append-only still enforced relative to the new tip
    with pytest.raises(TimeTravelError):
        t.record(4, "backwards")


def test_truncate_empty_table_is_a_no_op():
    t = AssociationTable()
    assert t.truncate_to(10) == 0
    assert t.times() == ()


# -- validity_interval boundaries -------------------------------------------

def test_interval_exactly_at_first_binding_time():
    t = table((3, "a"), (7, "b"))
    assert t.validity_interval(3) == (3, 7)


def test_interval_just_before_first_binding_is_none():
    t = table((3, "a"), (7, "b"))
    assert t.validity_interval(2) is None


def test_interval_exactly_at_a_replacement_time():
    t = table((3, "a"), (7, "b"))
    assert t.validity_interval(7) == (7, None)


def test_interval_of_the_open_current_binding():
    t = table((3, "a"), (7, "b"))
    assert t.validity_interval(100) == (7, None)


def test_interval_between_bindings_is_half_open():
    t = table((3, "a"), (7, "b"))
    start, end = t.validity_interval(6)
    assert (start, end) == (3, 7)
    # half-open [start, end): the value changes exactly at `end`
    assert t.value_at(end - 1) == "a"
    assert t.value_at(end) == "b"


def test_interval_after_truncate_reopens_the_survivor():
    t = table((3, "a"), (7, "b"))
    t.truncate_to(5)
    assert t.validity_interval(4) == (3, None)


def test_value_at_exact_boundaries_matches_intervals():
    t = table((3, "a"), (7, "b"))
    assert t.value_at(2) is MISSING
    assert t.value_at(3) == "a"
    assert t.value_at(6) == "a"
    assert t.value_at(7) == "b"
