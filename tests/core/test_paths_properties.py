"""Property tests for path expressions: parse/print round trip and
resolution against a nested-dict reference model."""

from hypothesis import given, strategies as st

from repro.core import (
    MemoryObjectManager,
    Path,
    Step,
    parse_path,
    resolve,
)
from repro.core.history import MISSING

identifier_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True)
quoted_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    min_size=1, max_size=8,
).filter(lambda s: not s.isspace())
component_names = st.one_of(
    identifier_names, quoted_names, st.integers(min_value=0, max_value=10**6)
)
steps = st.builds(
    Step,
    name=component_names,
    at=st.one_of(st.none(), st.integers(min_value=0, max_value=1000)),
)
paths = st.builds(lambda s: Path(tuple(s)), st.lists(steps, min_size=1, max_size=5))


@given(paths)
def test_path_print_parse_round_trip(path):
    assert parse_path(str(path)) == path


@st.composite
def nested_structures(draw):
    """A random nested dict plus the list of (path, leaf) pairs in it."""
    leaves = st.one_of(st.integers(-100, 100), st.text(max_size=5),
                       st.booleans())
    names = st.one_of(identifier_names, st.integers(0, 20))

    def build(depth):
        if depth == 0 or draw(st.booleans()):
            return draw(leaves)
        result = {}
        for name in draw(st.lists(names, min_size=1, max_size=3, unique=True)):
            result[name] = build(depth - 1)
        return result

    return build(3)


def materialize_dict(om, data):
    if isinstance(data, dict):
        obj = om.instantiate("Object")
        for name, value in data.items():
            om.bind(obj, name, materialize_dict(om, value))
        return obj
    return data


def collect_paths(data, prefix=()):
    if isinstance(data, dict):
        for name, value in data.items():
            yield from collect_paths(value, prefix + (name,))
    else:
        yield prefix, data


@given(nested_structures())
def test_resolution_matches_dict_model(data):
    om = MemoryObjectManager()
    root = materialize_dict(om, data)
    if not isinstance(data, dict):
        return  # a bare leaf has no paths
    for names, leaf in collect_paths(data):
        path = Path(tuple(Step(name) for name in names))
        assert resolve(om, root, path) == leaf
        # and via the string form
        assert resolve(om, root, str(path)) == leaf


@given(nested_structures(), st.integers(0, 20))
def test_resolution_default_for_missing(data, extra):
    om = MemoryObjectManager()
    root = materialize_dict(om, data)
    if not isinstance(data, dict):
        return
    probe = Path((Step("definitely_not_there_xyz"),))
    sentinel = object()
    assert resolve(om, root, probe, default=sentinel) is sentinel
