"""Tests for the OPAL console."""

import io

import pytest

from repro import GemStone
from repro.tools import Repl


def run_console(lines, database=None):
    out = io.StringIO()
    repl = Repl(database=database or GemStone.create(track_count=2048,
                                                     track_size=1024),
                out=out)
    repl.run(lines)
    return out.getvalue(), repl


class TestRepl:
    def test_expression_block(self):
        output, _ = run_console(["3 + 4", ""])
        assert "=> 7" in output

    def test_multiline_block(self):
        output, _ = run_console([
            "| n |",
            "n := 0.",
            "1 to: 5 do: [:i | n := n + i].",
            "n",
            "",
        ])
        assert "=> 15" in output

    def test_two_blocks_share_a_session(self):
        output, _ = run_console([
            "World!x := 42", "",
            "World!x", "",
        ])
        assert output.count("=> 42") == 2

    def test_commit_and_time(self):
        output, repl = run_console([
            "World!v := 1", "",
            ":commit",
            ":time",
        ])
        assert "committed at transaction time" in output
        assert "dial: now" in output

    def test_abort(self):
        output, repl = run_console([
            "World!v := 1", "",
            ":abort",
            "World!v", "",
        ])
        assert "aborted" in output
        assert "=> nil" in output

    def test_dial(self):
        db = GemStone.create(track_count=2048, track_size=1024)
        seed = db.login()
        seed.execute("World!v := 'old'")
        t = seed.commit()
        seed.execute("World!v := 'new'")
        seed.commit()
        output, _ = run_console([
            f":dial {t}",
            "World!v", "",
            ":dial now",
            "World!v", "",
        ], database=db)
        assert "=> 'old'" in output
        assert "=> 'new'" in output

    def test_errors_do_not_kill_the_console(self):
        output, _ = run_console([
            "3 frobnicate", "",
            "1 + 1", "",
        ])
        assert "!!" in output
        assert "=> 2" in output

    def test_bad_directive(self):
        output, _ = run_console([":nonsense"])
        assert "unknown directive" in output

    def test_report(self):
        output, _ = run_console([":report"])
        assert "objects:" in output

    def test_quit_stops(self):
        output, repl = run_console([":quit", "3 + 4", ""])
        assert "bye." in output
        assert "=> 7" not in output
        assert not repl.running

    def test_trailing_block_flushes_at_eof(self):
        output, _ = run_console(["6 * 7"])  # no blank line, just EOF
        assert "=> 42" in output
