"""Integration tests: the GemStone facade across all subsystems."""

import pytest

from repro import GemStone, GemStoneError
from repro.concurrency import Privilege
from repro.errors import (
    ArchiveError,
    AuthorizationError,
    DiskCrashed,
    TransactionConflict,
)
from repro.storage import ArchiveMedia


@pytest.fixture
def db():
    return GemStone.create(track_count=2048, track_size=1024)


class TestLifecycle:
    def test_create_and_login(self, db):
        with db.login() as session:
            assert session.execute("3 + 4") == 7

    def test_world_is_shared_and_persistent(self, db):
        s1 = db.login()
        s1.execute("World!answer := 42")
        s1.commit()
        s2 = db.login()
        assert s2.execute("World!answer") == 42

    def test_python_level_api(self, db):
        session = db.login()
        dept = session.new("Object", Name="Sales", Budget=142000)
        session.assign("sales", dept)
        session.commit()
        assert session.resolve("sales!Budget") == 142000
        session.assign("sales!Budget", 150000)
        session.commit()
        assert session.resolve("sales!Budget") == 150000

    def test_full_reopen_cycle(self, db):
        session = db.login()
        session.execute("""
            Object subclass: #Employee instVarNames: #(name salary).
            Employee compile: 'salary ^salary'.
            Employee compile: 'salary: s salary := s'.
            | e | e := Employee new. e salary: 24650.
            World!ellen := e
        """)
        session.commit()
        reopened = GemStone.open(db.disk)
        s2 = reopened.login()
        assert s2.execute("World!ellen salary") == 24650
        # classes, methods and data all survived
        assert s2.execute("| e | e := Employee new. e salary: 1. e salary") == 1

    def test_crash_between_commits_recovers_last_commit(self, db):
        session = db.login()
        session.execute("World!v := 'first'")
        session.commit()
        db.disk.crash_after(2)
        session.execute("World!v := 'second'")
        with pytest.raises(DiskCrashed):
            session.commit()
        db.disk.restart()
        recovered = GemStone.open(db.disk)
        assert recovered.login().execute("World!v") == "first"


class TestTransactionsThroughOpal:
    def test_commit_from_opal(self, db):
        session = db.login()
        assert session.execute(
            "World!n := 1. System commitTransaction"
        ) is True
        other = db.login()
        assert other.execute("World!n") == 1

    def test_conflict_from_opal_returns_false(self, db):
        a, b = db.login(), db.login()
        a.execute("World!n := 0")
        a.commit()
        b.abort()
        a.execute("World!n := World!n + 1")
        b.execute("World!n := World!n + 1")
        assert a.execute("System commitTransaction") is True
        assert b.execute("System commitTransaction") is False

    def test_abort_from_opal(self, db):
        session = db.login()
        session.execute("World!x := 9. System abortTransaction")
        assert session.execute("World!x") is None


class TestHistoryEndToEnd:
    def test_time_dial_through_opal(self, db):
        session = db.login()
        session.execute("World!president := 'Ayn Rand'")
        t1 = session.commit()
        session.execute("World!president := 'Milton Friedman'")
        session.commit()
        assert session.execute("World!president") == "Milton Friedman"
        session.execute(f"System timeDial: {t1}")
        assert session.execute("World!president") == "Ayn Rand"
        session.execute("System timeDial: nil")
        assert session.execute("World!president") == "Milton Friedman"

    def test_safetime_from_opal(self, db):
        session = db.login()
        session.execute("World!x := 1")
        t = session.commit()
        assert session.execute("System safeTime") == t

    def test_history_survives_reopen(self, db):
        session = db.login()
        session.execute("World!city := 'Seattle'")
        t1 = session.commit()
        session.execute("World!city := 'Portland'")
        session.commit()
        reopened = GemStone.open(db.disk)
        s2 = reopened.login()
        assert s2.execute(f"World!city @ {t1}") == "Seattle"
        assert s2.execute("World!city") == "Portland"

    def test_collection_history_after_remove(self, db):
        session = db.login()
        session.execute("""
            | s | s := Set new. s add: 'kept'. s add: 'dropped'.
            World!things := s
        """)
        t1 = session.commit()
        session.execute("World!things remove: 'dropped'")
        session.commit()
        assert session.execute("World!things size") == 1
        session.execute(f"System timeDial: {t1}")
        assert session.execute("World!things size") == 2


class TestDirectoriesEndToEnd:
    def test_directory_used_by_opal_select_after_commit(self, db):
        session = db.login()
        emps = session.execute("""
            Object subclass: #Employee instVarNames: #(salary).
            Employee compile: 'salary: s salary := s'.
            | emps e |
            emps := Bag new.
            1 to: 50 do: [:i | e := Employee new. e salary: i. emps add: e].
            World!employees := emps.
            emps
        """)
        session.commit()
        directory = db.create_directory(emps, "salary")
        count = session.execute(
            "(World!employees select: [:e | e!salary > 45]) size"
        )
        assert count == 5
        assert directory.lookups >= 1

    def test_directory_maintained_across_commits(self, db):
        session = db.login()
        emps = session.execute("| s | s := Bag new. World!emps := s. s")
        session.commit()
        directory = db.create_directory(emps, "salary")
        session.execute("""
            Object subclass: #Worker instVarNames: #(salary).
            | w | w := Worker new. w at: 'salary' put: 777.
            World!emps add: w
        """)
        session.commit()
        assert len(directory.lookup(777)) == 1

    def test_directory_definitions_survive_reopen(self, db):
        session = db.login()
        emps = session.execute("| s | s := Bag new. World!emps := s. s")
        session.commit()
        db.create_directory(emps, "salary", name="bySalary")
        reopened = GemStone.open(db.disk)
        rebuilt = reopened.directory_manager.find_directory(emps.oid, "salary")
        assert rebuilt is not None
        assert rebuilt.name == "bySalary"

    def test_index_created_from_opal_hint(self, db):
        session = db.login()
        session.execute("| s | s := Bag new. World!emps := s")
        session.commit()
        directory = session.execute("System index: World!emps on: 'salary'")
        assert directory is db.directory_manager.find_directory(
            session.resolve("emps").oid, "salary"
        )


class TestAuthorizationEndToEnd:
    def test_users_and_segments_persist(self, db):
        dba = ("DataCurator", "swordfish")
        db.create_user(dba, "ellen", "pw")
        segment = db.create_segment(dba, "payroll")
        db.grant(dba, segment.segment_id, "ellen", Privilege.READ)
        reopened = GemStone.open(db.disk)
        ellen = reopened.authorizer.authenticate("ellen", "pw")
        reopened.authorizer.check_read(ellen, segment.segment_id)
        with pytest.raises(AuthorizationError):
            reopened.authorizer.check_write(ellen, segment.segment_id)

    def test_enforcement_through_login(self, db):
        dba = ("DataCurator", "swordfish")
        db.create_user(dba, "ellen", "pw")
        segment = db.create_segment(dba, "payroll")
        curator = db.login("DataCurator", "swordfish")
        secret = curator.new("Object", segment_id=segment.segment_id)
        curator.session.bind(secret.oid, "salary", 100)
        curator.commit()
        ellen = db.login("ellen", "pw")
        with pytest.raises(AuthorizationError):
            ellen.session.value_at(secret.oid, "salary")

    def test_non_dba_cannot_run_dba_ops(self, db):
        dba = ("DataCurator", "swordfish")
        db.create_user(dba, "ellen", "pw")
        with pytest.raises(AuthorizationError):
            db.create_user(("ellen", "pw"), "eve", "x")


class TestArchivalEndToEnd:
    def test_archive_and_restore_via_mount(self, db):
        session = db.login()
        old = session.new("Object", note="ancient")
        session.assign("ancient", old)
        session.commit()
        media = ArchiveMedia("tape-7")
        db.archive_object(old.oid, media)
        db.store.cache.flush()
        fresh = db.login()
        with pytest.raises(ArchiveError):
            fresh.resolve("ancient!note")
        db.store.archive_drive.mount(media)
        assert fresh.resolve("ancient!note") == "ancient"


class TestReplication:
    def test_database_on_replicated_disk_survives_corruption(self):
        db = GemStone.create(track_count=1024, track_size=1024, replicas=3)
        session = db.login()
        session.execute("World!v := 'precious'")
        session.commit()
        # corrupt many tracks on one replica; cold reads repair from peers
        replica = db.disk.replicas[0]
        for track in range(2, 40):
            if replica.is_written(track):
                replica.corrupt_track(track)
        reopened = GemStone.open(db.disk)
        assert reopened.login().execute("World!v") == "precious"
        assert db.disk.repairs > 0


class TestTemporaryObjects:
    def test_query_results_are_not_committed(self, db):
        session = db.login()
        session.execute("""
            | s | s := Bag new.
            1 to: 5 do: [:i | s add: i].
            World!numbers := s
        """)
        session.commit()
        objects_before = len(db.store.table)
        session.execute("(World!numbers select: [:x | x > 2]) size")
        session.commit()
        assert len(db.store.table) == objects_before

    def test_promoted_temporaries_do_commit(self, db):
        session = db.login()
        session.execute("""
            | s | s := Bag new.
            1 to: 5 do: [:i | s add: i].
            World!numbers := s.
            World!big := (s select: [:x | x > 3])
        """)
        session.commit()
        fresh = db.login()
        assert fresh.execute("World!big size") == 2
