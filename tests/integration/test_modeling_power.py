"""Modeling-power claims of section 2, demonstrated end to end."""

import pytest

from repro import GemStone
from repro.errors import TransactionConflict


@pytest.fixture
def db():
    return GemStone.create(track_count=4096, track_size=1024)


class TestBeyondNetworkModel:
    def test_record_in_two_instances_of_the_same_set_type(self, db):
        """§2D: CODASYL forbids membership in two instances of one set
        type; GSDM objects join any number of sets, same 'type' or not."""
        session = db.login()
        session.execute("""
            Object subclass: #Committee instVarNames: #().
            | ellen a b |
            ellen := Object new. ellen at: 'name' put: 'Ellen'.
            a := Set new.  b := Set new.   "two instances of one class"
            a add: ellen.  b add: ellen.
            World!budget := a.  World!safety := b
        """)
        session.commit()
        assert session.execute("World!budget size") == 1
        assert session.execute("World!safety size") == 1
        # same entity, by identity, in both
        assert session.execute("""
            | a b |
            a := World!budget detect: [:x | true].
            b := World!safety detect: [:x | true].
            a == b
        """) is True

    def test_heterogeneous_values_in_one_element(self, db):
        """§5.2: AssignedTo may hold an employee, a department, or a set
        of departments — no single-type restriction."""
        session = db.login()
        session.execute("""
            | car1 car2 car3 emp dept depts |
            emp := Object new. emp at: 'kind' put: 'employee'.
            dept := Object new. dept at: 'kind' put: 'department'.
            depts := Set new. depts add: dept.
            car1 := Object new. car1 at: 'AssignedTo' put: emp.
            car2 := Object new. car2 at: 'AssignedTo' put: dept.
            car3 := Object new. car3 at: 'AssignedTo' put: depts.
            World!cars := Bag new.
            World!cars add: car1; add: car2; add: car3
        """)
        session.commit()
        kinds = session.execute("""
            World!cars collect: [:c | (c at: 'AssignedTo') class name]
        """)
        names = sorted(session.session.members_of(kinds))
        assert names == ["Object", "Object", "Set"]


class TestRealWorldChanges:
    def test_one_message_many_database_updates(self, db):
        """§2D: 'changing the times a course meets could entail both
        insertions and deletions' — modeled as one method, one commit."""
        session = db.login()
        session.execute("""
            Object subclass: #Course instVarNames: #(slots).
            Course compile: 'moveFrom: old to: new
                slots remove: old.
                slots add: new'.
            | c slots |
            slots := Set new. slots add: 'Mon-9'; add: 'Wed-9'.
            c := Course new. c at: 'slots' put: slots.
            World!algebra := c
        """)
        session.commit()
        t_before = db.store.last_tx_time
        session.execute("World!algebra moveFrom: 'Mon-9' to: 'Fri-14'")
        session.commit()
        current = sorted(session.session.members_of(
            session.resolve("algebra!slots")
        ))
        assert current == ["Fri-14", "Wed-9"]
        # the deletion and the insertion share one transaction time, and
        # the old state is still one dial away
        session.time_dial.set(t_before)
        past = sorted(session.session.members_of(
            session.resolve("algebra!slots")
        ))
        assert past == ["Mon-9", "Wed-9"]
        session.time_dial.reset()

    def test_update_through_method_preserves_invariants(self, db):
        """Encodings hide in update operations (§2D): the method keeps
        the slot count constant; path assignment could break it, which
        is exactly the circumvention §4.3 describes."""
        session = db.login()
        session.execute("""
            Object subclass: #Roster instVarNames: #(count members).
            Roster compile: 'hire: name
                members add: name.
                count := (count ifNil: [0]) + 1'.
            | r | r := Roster new. r at: 'members' put: Set new.
            World!roster := r
        """)
        session.execute("World!roster hire: 'Ellen'. World!roster hire: 'Bob'")
        session.commit()
        assert session.resolve("roster!count") == 2
        assert session.execute("(World!roster at: 'members') size") == 2


class TestUpdateAnomalies:
    def test_renaming_shared_entity_breaks_nothing(self, db):
        """§2D: with name-as-logical-pointer, renaming a department
        breaks every employee row; with identity it is one write."""
        session = db.login()
        session.execute("""
            | sales e1 e2 |
            sales := Object new. sales at: 'name' put: 'Sales'.
            e1 := Object new. e1 at: 'dept' put: sales.
            e2 := Object new. e2 at: 'dept' put: sales.
            World!e1 := e1. World!e2 := e2
        """)
        session.commit()
        session.execute("(World!e1 at: 'dept') at: 'name' put: 'Revenue'")
        session.commit()
        # both employees see the rename; no key fixups anywhere
        assert session.resolve("e1!dept!name") == "Revenue"
        assert session.resolve("e2!dept!name") == "Revenue"
        assert session.execute(
            "(World!e1 at: 'dept') == (World!e2 at: 'dept')"
        ) is True


class TestDirectoriesUnderConflict:
    def test_aborted_transactions_never_touch_directories(self, db):
        session = db.login()
        emps = session.execute("| s | s := Bag new. World!emps := s. s")
        session.commit()
        directory = db.create_directory(emps, "salary")

        winner, loser = db.login(), db.login()
        # both read, then write the same element -> loser aborts
        seed = winner.execute("""
            | e | e := Object new. e at: 'salary' put: 100.
            World!emps add: e. World!seed := e. e
        """)
        winner.commit()
        loser.abort()
        assert directory.lookup(100) == [seed.oid]

        winner.session.value_at(seed.oid, "salary")
        loser.session.value_at(seed.oid, "salary")
        winner.session.bind(seed.oid, "salary", 200)
        loser.session.bind(seed.oid, "salary", 300)
        winner.commit()
        with pytest.raises(TransactionConflict):
            loser.commit()
        assert directory.lookup(200) == [seed.oid]
        assert directory.lookup(300) == []  # the loser left no trace
