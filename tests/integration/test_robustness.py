"""Robustness: fuzzing, resource exhaustion, encoding edges."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import GemStone, GemStoneError
from repro.errors import (
    CodecError,
    GemStoneError as BaseError,
    LexError,
    ParseError,
    StorageError,
)
from repro.opal import Lexer, parse_expression_code
from repro.storage import PAGE_SPAN, decode_object
from repro.storage.codec import Reader


class TestParserFuzz:
    @given(st.text(max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_lexer_never_crashes_unexpectedly(self, source):
        try:
            Lexer(source).tokens()
        except LexError:
            pass  # the only acceptable failure

    @given(st.text(max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, source):
        try:
            parse_expression_code(source)
        except (LexError, ParseError):
            pass

    @given(st.text(alphabet="()[]|.;:^!@#'$ abc123+-", max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_parser_on_token_soup(self, source):
        try:
            parse_expression_code(source)
        except (LexError, ParseError):
            pass


class TestCodecFuzz:
    @given(st.binary(max_size=64))
    @settings(max_examples=200)
    def test_decode_object_rejects_garbage_gracefully(self, data):
        try:
            decode_object(data)
        except (CodecError, Exception) as error:
            # never a hang or a segfault-style failure; CodecError preferred
            assert isinstance(error, BaseError) or isinstance(error, Exception)

    @given(st.binary(max_size=32))
    @settings(max_examples=200)
    def test_varint_reader_bounded(self, data):
        reader = Reader(data)
        try:
            reader.uvarint()
        except CodecError:
            pass


class TestDiskExhaustion:
    def test_disk_full_raises_and_reopen_recovers(self):
        db = GemStone.create(track_count=96, track_size=512)
        session = db.login()
        session.execute("World!v := 'stable'")
        session.commit()
        with pytest.raises((StorageError, GemStoneError)):
            for index in range(10_000):
                session.execute(
                    f"World!x{index} := '{'y' * 400}'"
                )
                session.commit()
        # the disk still holds a consistent prefix of commits
        recovered = GemStone.open(db.disk)
        assert recovered.login().execute("World!v") == "stable"

    def test_free_count_reporting(self):
        db = GemStone.create(track_count=256, track_size=512)
        report = db.storage_report()
        assert report["tracks_allocated"] + report["tracks_free"] == 256


class TestUnicode:
    def test_unicode_through_full_pipeline(self):
        db = GemStone.create(track_count=2048, track_size=1024)
        session = db.login()
        text = "héllo ∘ wörld — 日本語 🐍"
        session.execute("World!msg := s", {"s": text})
        session.commit()
        reopened = GemStone.open(db.disk)
        assert reopened.login().execute("World!msg") == text

    def test_unicode_in_opal_source(self):
        db = GemStone.create(track_count=2048, track_size=1024)
        session = db.login()
        assert session.execute("'ünïcode' size") == 7

    def test_unicode_element_names(self):
        db = GemStone.create(track_count=2048, track_size=1024)
        session = db.login()
        session.execute("World!'ключ' := 'значение'")
        session.commit()
        reopened = GemStone.open(db.disk)
        assert reopened.login().execute("World!'ключ'") == "значение"


class TestPageBoundaries:
    def test_oids_across_page_boundaries_survive_reopen(self):
        db = GemStone.create(track_count=16_384, track_size=2048)
        session = db.login()
        group = session.new("Bag")
        # enough objects to span several object-table pages
        count = PAGE_SPAN * 2 + 7
        oids = []
        for index in range(count):
            member = session.new("Object", i=index)
            session.session.bind(group, session.session.new_alias(), member)
            oids.append(member.oid)
        session.assign("crowd", group)
        session.commit()
        assert {oid // PAGE_SPAN for oid in oids} != {oids[0] // PAGE_SPAN}
        reopened = GemStone.open(db.disk)
        for index in (0, PAGE_SPAN - 1, PAGE_SPAN, count - 1):
            assert reopened.store.object(oids[index]).value("i") == index


class TestExecutorGarbage:
    def test_garbage_frame_returns_protocol_error(self):
        from repro.executor import Executor, make_link

        db = GemStone.create(track_count=1024, track_size=1024)
        host, gem = make_link()
        executor = Executor(db)
        host.send(b"\xff\xfe\xfd")
        executor.serve(gem)
        from repro.executor import decode_frame, FrameType

        response = decode_frame(host.receive())
        assert response.type is FrameType.ERROR

    def test_empty_frame_handled(self):
        from repro.executor import Executor, decode_frame, FrameType, make_link

        db = GemStone.create(track_count=1024, track_size=1024)
        host, gem = make_link()
        executor = Executor(db)
        host.send(b"")
        executor.serve(gem)
        response = decode_frame(host.receive())
        assert response.type is FrameType.ERROR
