"""Views defined by calculus expressions, over live sessions (section 5.4).

"We can construct an object that provides a view, and that object can
employ other objects, procedural statements and calculus expressions to
define the extension of the view."
"""

import pytest

from repro import GemStone
from repro.core import View
from repro.stdm import Const, QueryContext, SetQuery, variables


@pytest.fixture
def setup():
    db = GemStone.create(track_count=4096, track_size=1024)
    session = db.login()
    session.execute("""
        Object subclass: #Employee instVarNames: #(name salary).
        | emps e |
        emps := Bag new.
        1 to: 10 do: [:i |
            e := Employee new.
            e at: 'name' put: 'emp', i printString.
            e at: 'salary' put: i * 1000.
            emps add: e].
        World!employees := emps
    """)
    session.commit()
    emps = session.resolve("employees")
    return db, session, emps


def high_earner_view(session, emps, threshold=7000):
    e, = variables("e")
    query = SetQuery(
        result=e.path("name"),
        binders=[(e, Const(emps))],
        condition=(e.path("salary") > threshold),
    )

    def definition(store, time):
        return query.evaluate(QueryContext(store, time))

    return View(session.session, "highEarners", definition, sources=[emps])


class TestCalculusViews:
    def test_extension_from_calculus(self, setup):
        _db, session, emps = setup
        view = high_earner_view(session, emps)
        assert sorted(view.materialize()) == ["emp10", "emp8", "emp9"]

    def test_view_tracks_committed_updates(self, setup):
        _db, session, emps = setup
        view = high_earner_view(session, emps)
        session.execute("""
            | e | e := Employee new.
            e at: 'name' put: 'newcomer'. e at: 'salary' put: 50000.
            World!employees add: e
        """)
        session.commit()
        assert "newcomer" in view.materialize()

    def test_view_dialed_to_past_state(self, setup):
        db, session, emps = setup
        view = high_earner_view(session, emps)
        t0 = db.store.last_tx_time
        session.execute(
            "World!employees do: [:e | e at: 'salary' put: 99000]"
        )
        session.commit()
        assert len(view.materialize()) == 11 or len(view.materialize()) == 10
        assert sorted(view.materialize(time=t0)) == ["emp10", "emp8", "emp9"]

    def test_view_object_has_identity_and_is_persistable(self, setup):
        db, session, emps = setup
        view = high_earner_view(session, emps)
        session.assign("reports", view.object)
        session.commit()
        reopened = GemStone.open(db.disk)
        s2 = reopened.login()
        assert s2.execute("World!reports at: 'name'") == "highEarners"

    def test_updatable_view_writes_through(self, setup):
        _db, session, emps = setup

        def definition(store, time):
            return store.members_of(emps, time)

        def on_insert(store, view, member):
            store.bind(emps, store.new_alias(), member)

        view = View(session.session, "all", definition, sources=[emps],
                    on_insert=on_insert)
        extra = session.new("Employee", name="via-view", salary=1)
        view.insert(extra)
        session.commit()
        assert session.execute(
            "(World!employees select: [:e | e!name = 'via-view']) size"
        ) == 1

    def test_view_retains_source_connections(self, setup):
        _db, session, emps = setup
        view = high_earner_view(session, emps)
        assert [source.oid for source in view.sources()] == [emps.oid]
