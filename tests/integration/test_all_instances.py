"""The allInstances DBA scan, across memory stores and full databases."""

import pytest

from repro import GemStone
from repro.core import MemoryObjectManager
from repro.opal import OpalEngine
from repro.storage import ArchiveMedia


class TestAllInstancesMemory:
    def test_direct_and_subclass_instances(self):
        engine = OpalEngine(MemoryObjectManager())
        engine.execute("""
            Object subclass: #Employee instVarNames: #().
            Employee subclass: #Manager instVarNames: #().
            Employee new. Employee new. Manager new
        """)
        assert engine.execute("Employee allInstances size") == 3
        assert engine.execute("Manager allInstances size") == 1

    def test_composes_with_collection_protocol(self):
        engine = OpalEngine(MemoryObjectManager())
        engine.execute("""
            Object subclass: #Reading instVarNames: #().
            1 to: 5 do: [:i | Reading new at: 'v' put: i]
        """)
        total = engine.execute(
            "Reading allInstances inject: 0 into: [:a :r | a + (r at: 'v')]"
        )
        assert total == 15


class TestAllInstancesDatabase:
    @pytest.fixture
    def db(self):
        return GemStone.create(track_count=4096, track_size=1024)

    def test_committed_instances_found(self, db):
        session = db.login()
        session.execute("""
            Object subclass: #Doc instVarNames: #().
            World!a := Doc new. World!b := Doc new
        """)
        session.commit()
        assert session.execute("Doc allInstances size") == 2

    def test_uncommitted_creations_included_in_own_session(self, db):
        session = db.login()
        session.execute("Object subclass: #Doc instVarNames: #()")
        session.commit()
        session.execute("World!x := Doc new")  # uncommitted
        assert session.execute("Doc allInstances size") == 1
        other = db.login()
        assert other.execute("Doc allInstances size") == 0

    def test_archived_instances_skipped(self, db):
        session = db.login()
        session.execute("""
            Object subclass: #Doc instVarNames: #().
            World!kept := Doc new. World!old := Doc new
        """)
        session.commit()
        old_oid = session.resolve("old").oid
        session.execute("World removeKey: 'old'")
        session.commit()
        db.archive_history(ArchiveMedia())
        fresh = db.login()
        assert fresh.execute("Doc allInstances size") == 1

    def test_survives_reopen(self, db):
        session = db.login()
        session.execute("""
            Object subclass: #Doc instVarNames: #().
            World!a := Doc new
        """)
        session.commit()
        reopened = GemStone.open(db.disk)
        assert reopened.login().execute("Doc allInstances size") == 1
