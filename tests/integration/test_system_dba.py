"""DBA operations issued as OPAL system messages."""

import pytest

from repro import GemStone
from repro.errors import AuthorizationError, OpalRuntimeError


@pytest.fixture
def db():
    return GemStone.create(track_count=4096, track_size=1024)


def dba_session(db):
    return db.login("DataCurator", "swordfish")


class TestDbaFromOpal:
    def test_create_user(self, db):
        session = dba_session(db)
        assert session.execute(
            "System createUser: 'ellen' password: 'pw'"
        ) == "ellen"
        db.login("ellen", "pw")  # authenticates

    def test_create_segment_and_grant(self, db):
        session = dba_session(db)
        session.execute("System createUser: 'ellen' password: 'pw'")
        segment_id = session.execute("System createSegment: 'payroll'")
        assert isinstance(segment_id, int)
        assert session.execute(
            f"System grantOn: {segment_id} to: 'ellen' privilege: 'read'"
        ) is True
        ellen = db.authorizer.authenticate("ellen", "pw")
        db.authorizer.check_read(ellen, segment_id)
        with pytest.raises(AuthorizationError):
            db.authorizer.check_write(ellen, segment_id)

    def test_dba_ops_persist(self, db):
        session = dba_session(db)
        session.execute("System createUser: 'ellen' password: 'pw'")
        reopened = GemStone.open(db.disk)
        reopened.authorizer.authenticate("ellen", "pw")

    def test_non_dba_rejected(self, db):
        curator = dba_session(db)
        curator.execute("System createUser: 'ellen' password: 'pw'")
        ellen = db.login("ellen", "pw")
        with pytest.raises(OpalRuntimeError):
            ellen.execute("System createUser: 'eve' password: 'x'")
        with pytest.raises(OpalRuntimeError):
            ellen.execute("System compact")

    def test_embedded_session_rejected(self, db):
        embedded = db.login()  # no user at all
        with pytest.raises(OpalRuntimeError):
            embedded.execute("System createUser: 'x' password: 'y'")

    def test_compact_from_opal(self, db):
        session = dba_session(db)
        session.execute("World!o := Object new")
        session.commit()
        for index in range(5):
            session.execute(f"World!o at: 'v' put: {index}")
            session.commit()
        reclaimed = session.execute("System compact")
        assert isinstance(reclaimed, int)

    def test_storage_report(self, db):
        session = dba_session(db)
        report = dict(session.execute("System storageReport"))
        assert report["objects"] > 0
        assert "tracks_allocated" in report
