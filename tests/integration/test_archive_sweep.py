"""The DBA archival sweep: history moves to tape, identity survives."""

import pytest

from repro import GemStone
from repro.errors import ArchiveError
from repro.storage import ArchiveMedia


@pytest.fixture
def db():
    return GemStone.create(track_count=8192, track_size=1024)


def file_and_fire(db):
    """An employee is hired, then leaves: the object becomes historical."""
    session = db.login()
    session.execute("""
        | e |
        e := Object new. e at: 'name' put: 'Ayn Rand'.
        World!staff := Dictionary new.
        World!staff at: 1821 put: e
    """)
    t_hired = session.commit()
    employee_oid = session.resolve("staff!1821").oid
    session.execute("World!staff removeKey: 1821")
    session.commit()
    session.close()
    return employee_oid, t_hired


class TestArchiveSweep:
    def test_historical_only_objects_are_swept(self, db):
        employee_oid, _ = file_and_fire(db)
        media = ArchiveMedia("tape-hist")
        archived = db.archive_history(media)
        assert employee_oid in archived

    def test_current_objects_are_kept(self, db):
        employee_oid, _ = file_and_fire(db)
        session = db.login()
        keeper = session.new("Object", v=1)
        session.assign("keeper", keeper)
        session.commit()
        archived = db.archive_history(ArchiveMedia())
        assert keeper.oid not in archived
        assert db.store.object(keeper.oid).value("v") == 1

    def test_archived_history_inaccessible_until_mounted(self, db):
        employee_oid, t_hired = file_and_fire(db)
        media = ArchiveMedia()
        db.archive_history(media)
        db.store.flush_caches()
        session = db.login()
        with pytest.raises(ArchiveError):
            session.execute(f"World!staff!1821 @ {t_hired} at: 'name'")
        db.store.archive_drive.mount(media)
        assert session.execute(
            f"World!staff!1821 @ {t_hired} at: 'name'"
        ) == "Ayn Rand"

    def test_sweep_state_survives_reopen(self, db):
        employee_oid, t_hired = file_and_fire(db)
        media = ArchiveMedia()
        db.archive_history(media)
        reopened = GemStone.open(db.disk)
        with pytest.raises(ArchiveError):
            reopened.store.object(employee_oid)
        reopened.store.archive_drive.mount(media)
        assert reopened.store.object(employee_oid).value("name") == "Ayn Rand"

    def test_sweep_reclaims_tracks(self, db):
        session = db.login()
        session.execute("World!junk := Dictionary new")
        session.commit()
        for index in range(20):
            session.execute(
                f"World!junk at: {index} put: "
                f"(Object new at: 'blob' put: '{'x' * 200}'; yourself)"
            )
            session.commit()
            session.execute(f"World!junk removeKey: {index}")
            session.commit()
        before = len(db.store.tracks.allocated_tracks())
        db.archive_history(ArchiveMedia())
        db.compact()
        after = len(db.store.tracks.allocated_tracks())
        assert after < before

    def test_empty_sweep_is_a_noop(self, db):
        epoch = db.store.commit_manager.current_epoch
        assert db.archive_history(ArchiveMedia()) == []
        assert db.store.commit_manager.current_epoch == epoch
