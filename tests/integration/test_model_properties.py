"""Whole-system property test: the database vs a reference model.

A random sequence of operations (create, bind, unbind, commit, abort)
runs against both the real database and a plain-Python model that
tracks, per (object, element), the list of (commit time, value)
bindings.  Afterwards every (object, element, time) probe must agree —
through the live store, through a time-dialed session, and through a
full crash-free reopen from disk.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GemStone
from repro.core import MISSING, Ref


class Model:
    """Reference semantics: per-element binding lists by commit time."""

    def __init__(self):
        self.committed: dict[tuple[int, str], list[tuple[int, object]]] = {}
        self.pending: dict[tuple[int, str], object] = {}
        self.objects: set[int] = set()
        self.pending_objects: set[int] = set()

    def create(self, oid):
        self.pending_objects.add(oid)

    def bind(self, oid, name, value):
        self.pending[(oid, name)] = value

    def commit(self, time):
        self.objects |= self.pending_objects
        for key, value in self.pending.items():
            self.committed.setdefault(key, []).append((time, value))
        self.abort()

    def abort(self):
        self.pending.clear()
        self.pending_objects.clear()

    def value_at(self, oid, name, time):
        best = MISSING
        for t, value in self.committed.get((oid, name), []):
            if t <= time:
                best = value
        return best


operations = st.lists(
    st.one_of(
        st.tuples(st.just("create")),
        st.tuples(st.just("bind"), st.integers(0, 5), st.sampled_from("abc"),
                  st.one_of(st.integers(-100, 100), st.text(max_size=4),
                            st.none(), st.booleans())),
        st.tuples(st.just("link"), st.integers(0, 5), st.integers(0, 5),
                  st.sampled_from("xy")),
        st.tuples(st.just("commit")),
        st.tuples(st.just("abort")),
    ),
    min_size=1,
    max_size=40,
)


@given(operations, st.data())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_database_matches_reference_model(ops, data):
    db = GemStone.create(track_count=4096, track_size=1024)
    session = db.login()
    model = Model()
    created: list[int] = []          # committed oids
    created_pending: list[int] = []  # this transaction's creations

    def pick(index):
        visible = created + created_pending
        return visible[index % len(visible)] if visible else None

    for op in ops:
        kind = op[0]
        if kind == "create":
            obj = session.new("Object")
            created_pending.append(obj.oid)
            model.create(obj.oid)
        elif kind == "bind" and (created or created_pending):
            oid = pick(op[1])
            session.session.bind(oid, op[2], op[3])
            model.bind(oid, op[2], op[3])
        elif kind == "link" and (created or created_pending):
            source, target = pick(op[1]), pick(op[2])
            session.session.bind(source, op[3], Ref(target))
            model.bind(source, op[3], Ref(target))
        elif kind == "commit":
            t = session.commit()
            model.commit(t)
            created.extend(created_pending)
            created_pending.clear()
        elif kind == "abort":
            session.abort()
            model.abort()
            created_pending.clear()  # aborted creations are gone forever
    final_time = session.commit()
    model.commit(final_time)
    created.extend(created_pending)
    created_pending.clear()

    probes = [
        (oid, name, data.draw(st.integers(0, final_time), label="probe time"))
        for oid in model.objects
        for name in "abcxy"
    ]

    # 1. live store agrees element-by-element
    for oid, name, time in probes:
        expected = model.value_at(oid, name, time)
        actual = db.store.object(oid).value_at(name, time)
        assert actual == expected or (actual is MISSING and expected is MISSING)

    # 2. a time-dialed session agrees
    reader = db.login()
    for oid, name, time in probes:
        reader.time_dial.set(time)
        expected = model.value_at(oid, name, time)
        actual = reader.session.value_at(oid, name)
        assert actual == expected or (actual is MISSING and expected is MISSING)
    reader.time_dial.reset()

    # 3. a cold reopen from disk agrees
    reopened = GemStone.open(db.disk)
    for oid, name, time in probes:
        expected = model.value_at(oid, name, time)
        if not reopened.store.contains(oid):
            assert expected is MISSING
            continue
        actual = reopened.store.object(oid).value_at(name, time)
        assert actual == expected or (actual is MISSING and expected is MISSING)
